#!/usr/bin/env python3
"""Cut-layer selection study (the paper's §IV future-work item).

Profiles the DeepThin CNN, tabulates every candidate cut's client
compute / smashed payload / client-model size trade-off, then prices one
client's split-training round per cut against the wireless scenario and
reports the latency-minimizing cut.

Takes a few seconds — this is a pure latency-model study, no training.

Usage::

    python examples/cut_layer_study.py
"""

from __future__ import annotations

from repro import nn
from repro.core.cut_layer import analyze_cuts, best_cut
from repro.experiments import paper_scenario


def main() -> None:
    scenario = paper_scenario(with_wireless=True)
    built = scenario.build()
    profile, system = built.profile, built.system

    print("=== model profile ===")
    print(profile.summary())
    print()

    print("=== per-cut cost structure (per sample / per relay) ===")
    header = (
        f"{'cut':>4} {'client kFLOP':>13} {'server kFLOP':>13} "
        f"{'smashed B':>10} {'client model B':>15}"
    )
    print(header)
    for cut in analyze_cuts(profile):
        print(
            f"{cut.cut_layer:>4} {cut.client_forward_flops / 1e3:>13.1f} "
            f"{cut.server_forward_flops / 1e3:>13.1f} "
            f"{cut.smashed_bytes_per_sample:>10} {cut.client_model_bytes:>15}"
        )
    print()

    batch = scenario.scheme.batch_size
    bandwidth = system.allocator.total_bandwidth_hz / scenario.num_groups
    best, sweep = best_cut(
        profile, system, batch_size=batch, local_steps=scenario.scheme.local_steps,
        bandwidth_hz=bandwidth,
    )
    print(f"=== estimated local-round latency per cut "
          f"(batch={batch}, B/M={bandwidth / 1e6:.1f} MHz) ===")
    for cut, latency in sweep:
        marker = "  <== best" if cut == best else ""
        print(f"cut {cut:>2}: {latency * 1e3:8.2f} ms{marker}")
    print()
    print(f"latency-minimizing cut for one client's round: {best} "
          f"(paper scenario pins cut {scenario.resolved_cut_layer()})")
    print()
    print("Reading the table: cuts right after a pooling stage (4, 8) are "
          "the local minima — pooling shrinks the smashed payload 4x.  The "
          "estimator prices a single client's round, where the shallow "
          "pooled cut wins on these slow devices; the paper scenario pins "
          "the deeper pooled cut because, across the full GSFL-vs-SL "
          "comparison, the extra client compute it shifts off the shared "
          "server is parallelized M-ways while SL pays it serially.")


if __name__ == "__main__":
    main()
