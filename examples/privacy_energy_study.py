#!/usr/bin/env python3
"""Privacy and energy: the two costs the latency numbers hide.

**Privacy** — split learning ships activations instead of raw images,
but activations leak.  We run an inversion attack (decoder trained on a
shadow set) and distance correlation at every cut of the micro CNN:
deeper cuts leak less, which pulls *against* the shallow-cut preference
of pure compute-offloading.

**Energy** — the same latency traces the schemes already emit are priced
in joules per client (transmit / receive / compute / idle).  GSFL's
shorter rounds also mean less radio-on time per round for each device.

Runs in ~1 minute.

Usage::

    python examples/privacy_energy_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import sweep_cut_privacy
from repro.data.gtsrb import GtsrbConfig, SyntheticGTSRB
from repro.experiments import fast_scenario, make_scheme
from repro.wireless.energy import EnergyModel


def privacy_study() -> None:
    print("=== inversion attack vs cut layer (micro CNN) ===")
    cfg = GtsrbConfig(
        num_classes=10, image_size=16, train_per_class=30, test_per_class=8, seed=0
    )
    train, test = SyntheticGTSRB(cfg).train_test()
    scenario = fast_scenario(with_wireless=False)
    model = scenario.make_model()

    reports = sweep_cut_privacy(
        model,
        shadow_images=train.images[:200],
        test_images=test.images[:40],
        steps=150,
    )
    print(f"{'cut':>4} {'attack MSE':>11} {'baseline MSE':>13} "
          f"{'leakage':>8} {'dist. corr':>11}")
    for r in reports:
        print(f"{r.cut_layer:>4} {r.attack_mse:>11.4f} {r.baseline_mse:>13.4f} "
              f"{r.leakage:>8.2f} {r.distance_corr:>11.3f}")
    print("(leakage 1.0 = perfect reconstruction, 0.0 = attacker learned "
          "nothing)")
    print("Distance correlation falls monotonically with cut depth — the "
          "model-free leakage signal shrinks as more layers compress the "
          "input.  The decoder attack is noisier: pooled activations are "
          "lower-dimensional and thus *easier* for a small decoder to "
          "exploit, a known subtlety when measuring leakage with learned "
          "inversions.")
    print()


def energy_study() -> None:
    print("=== per-client energy, GSFL vs SL (3 rounds) ===")
    energy_model = EnergyModel()
    for name in ("SL", "GSFL"):
        built = fast_scenario(with_wireless=True).build()
        scheme = make_scheme(name, built)
        history = scheme.run(3)
        fleet = energy_model.fleet_energy(
            scheme.recorder, total_span_s=history.total_latency_s
        )
        per_round = energy_model.energy_by_round(scheme.recorder)
        print(f"--- {name} (total latency {history.total_latency_s:.2f} s) ---")
        print(f"fleet energy: tx {fleet.tx_j:.2f} J, rx {fleet.rx_j:.2f} J, "
              f"compute {fleet.compute_j:.2f} J, idle {fleet.idle_j:.2f} J "
              f"=> total {fleet.total_j:.2f} J")
        print("active energy per round:",
              {r: round(j, 2) for r, j in sorted(per_round.items())})
    print()
    print("Compute energy is identical (same training work), but GSFL's "
          "parallel groups finish the round sooner, cutting each client's "
          "idle radio-on drain; at paper scale the idle gap widens with "
          "the serial relay length N.")


def main() -> None:
    privacy_study()
    energy_study()


if __name__ == "__main__":
    main()
