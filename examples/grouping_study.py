#!/usr/bin/env python3
"""Client-grouping study (the paper's §IV future-work item).

Two questions the paper defers:

1. **How many groups?**  M interpolates GSFL between vanilla SL (M=1)
   and SplitFed (M=N).  We sweep M and report the simulated round
   latency — more groups parallelize compute but shrink each
   transmitter's bandwidth share.
2. **Which clients together?**  On a heterogeneous fleet, balanced
   grouping shortens the aggregation barrier.  We compare contiguous /
   random / compute-balanced grouping on a fleet with 10x compute spread.

Runs one training round per configuration (~1 minute).

Usage::

    python examples/grouping_study.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import fast_scenario, make_scheme


def sweep_group_count() -> None:
    print("=== round latency vs number of groups (M) ===")
    scenario = fast_scenario(with_wireless=True, num_clients=12, num_groups=2)
    print(f"{'M':>3} {'round latency (s)':>18} {'regime':<28}")
    for m in (1, 2, 3, 4, 6, 12):
        sc = fast_scenario(with_wireless=True, num_clients=12, num_groups=m)
        built = sc.build()
        scheme = make_scheme("GSFL", built)
        history = scheme.run(1)
        regime = {1: "= vanilla SL (+agg)", 12: "= SplitFed"}.get(m, "")
        print(f"{m:>3} {history.total_latency_s:>18.3f} {regime:<28}")
    print()


def compare_grouping_strategies() -> None:
    print("=== grouping strategy on a heterogeneous fleet (round latency) ===")
    sc = fast_scenario(with_wireless=True, num_clients=12, num_groups=3)
    # 10x log-normal compute spread across clients
    sc.wireless = replace(sc.wireless, heterogeneity=0.8)
    for strategy in ("contiguous", "random", "compute_balanced"):
        built = sc.build()
        scheme = make_scheme("GSFL", built, grouping=strategy)
        history = scheme.run(1)
        print(f"{strategy:>18}: {history.total_latency_s:8.3f} s")
    print()
    print("Compute-balanced grouping splits the slow devices across groups, "
          "so no single group drags the aggregation barrier.")


def main() -> None:
    sweep_group_count()
    compare_grouping_strategies()


if __name__ == "__main__":
    main()
