#!/usr/bin/env python3
"""Regenerate the paper's evaluation figures (Fig 2a and Fig 2b).

Fig 2(a): accuracy vs training rounds for CL / SL / GSFL / FL.
Fig 2(b): accuracy vs cumulative simulated latency for GSFL vs SL.

By default runs a scaled-down configuration (~3 minutes).  Set
``REPRO_FULL=1`` for the full paper-scale run (30 clients / 6 groups /
43 classes, ~15 minutes) used in EXPERIMENTS.md.

Usage::

    python examples/paper_figures.py
    REPRO_FULL=1 python examples/paper_figures.py
"""

from __future__ import annotations

import os

from repro.experiments import paper_scenario, run_fig2a, run_fig2b
from repro.metrics.report import convergence_speedup, latency_reduction


def main() -> None:
    full = os.environ.get("REPRO_FULL", "0") == "1"
    if full:
        rounds_2a, rounds_2b = 30, 40
        scenario_kwargs = {}
    else:
        rounds_2a, rounds_2b = 12, 16
        scenario_kwargs = {"train_per_class": 10}

    # ------------------------------------------------------------------
    # Fig 2(a): accuracy vs rounds (no latency needed)
    # ------------------------------------------------------------------
    print("== Fig 2(a): accuracy vs training rounds ==")
    scenario = paper_scenario(with_wireless=False, **scenario_kwargs)
    fig2a = run_fig2a(scenario, num_rounds=rounds_2a, target_accuracy=0.6, verbose=True)
    print()
    print(fig2a.table)
    print()
    for target in (0.4, 0.5, 0.6):
        s = convergence_speedup(
            fig2a.histories["GSFL"], fig2a.histories["FL"], target
        )
        print(f"GSFL-over-FL convergence speedup @ {target:.0%}: "
              f"{'unreached' if s is None else f'{s:.1f}x'}")
    print("(paper claims 'nearly 500% improvement' i.e. ~5x)")
    print()

    # ------------------------------------------------------------------
    # Fig 2(b): accuracy vs latency (GSFL vs SL)
    # ------------------------------------------------------------------
    print("== Fig 2(b): accuracy vs training latency ==")
    scenario = paper_scenario(with_wireless=True, **scenario_kwargs)
    fig2b = run_fig2b(scenario, num_rounds=rounds_2b, target_accuracy=0.6, verbose=True)
    print()
    print(fig2b.table)
    print()
    for target in (0.5, 0.6, 0.7, 0.8):
        r = latency_reduction(fig2b.histories["GSFL"], fig2b.histories["SL"], target)
        print(f"GSFL delay reduction vs SL @ {target:.0%}: "
              f"{'unreached' if r is None else f'{r:+.1%}'}")
    print("(paper claims 'about 31.45%')")


if __name__ == "__main__":
    main()
