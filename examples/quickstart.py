#!/usr/bin/env python3
"""Quickstart: train GSFL on a small synthetic traffic-sign scenario.

Runs the paper's scheme (group-based split federated learning) on a
down-scaled wireless scenario — 6 clients in 2 groups, 10 sign classes —
and prints the learning curve, the simulated latency axis, and a
per-phase latency breakdown from the trace recorder.

Takes ~15 seconds on a laptop CPU.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import fast_scenario, make_scheme


def main() -> None:
    scenario = fast_scenario(with_wireless=True)
    built = scenario.build()

    print("=== scenario ===")
    print(f"clients: {scenario.num_clients}, groups: {scenario.num_groups}")
    print(f"model: {scenario.model_name}, cut layer: {scenario.resolved_cut_layer()}")
    print(f"dataset: {scenario.dataset.num_classes} classes, "
          f"{sum(len(d) for d in built.client_datasets)} train samples")
    print(f"bandwidth: {built.system.config.total_bandwidth_hz / 1e6:.0f} MHz, "
          f"client compute: {built.system.config.client_flops / 1e6:.0f} MFLOPS")
    print()

    gsfl = make_scheme("GSFL", built)
    history = gsfl.run(num_rounds=10)

    print("=== learning curve ===")
    print(f"{'round':>6} {'latency_s':>10} {'loss':>8} {'accuracy':>9}")
    for p in history.points:
        print(f"{p.round_index:>6} {p.latency_s:>10.2f} {p.train_loss:>8.3f} "
              f"{p.test_accuracy:>9.3f}")
    print()

    print("=== latency breakdown (summed across actors) ===")
    for phase, seconds in sorted(
        gsfl.recorder.total_time_by_phase().items(), key=lambda kv: -kv[1]
    ):
        print(f"{phase:>20}: {seconds:8.3f} s")
    print()
    mb = gsfl.recorder.total_bytes() / 1e6
    print(f"total data moved over the air: {mb:.1f} MB")
    print(f"server-side replicas hosted at the edge: {gsfl.server_side_replicas()} "
          f"(SplitFed would need {len(built.client_datasets)})")
    print()
    print(history.summary())


if __name__ == "__main__":
    main()
