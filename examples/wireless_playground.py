#!/usr/bin/env python3
"""Tour of the wireless substrate.

Shows the pieces the training schemes are priced against:

* topology + channel: per-client distance, SNR, achievable rates;
* the bandwidth-narrowing effect GSFL exploits (rate(B/M) > rate(B)/M);
* bandwidth allocation policies over a concurrent transmitter set;
* the min-max inter-group bandwidth optimizer vs the equal split;
* the processor-sharing shared-link model from the DES substrate.

Pure simulation — runs in seconds.

Usage::

    python examples/wireless_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.core.resource import GroupWorkload, equal_bandwidth_split, minmax_bandwidth_split
from repro.sim import Environment, FairShareLink
from repro.wireless import WirelessConfig, WirelessSystem, make_allocator


def link_tour(system: WirelessSystem) -> None:
    print("=== per-client link report (20 MHz) ===")
    rows = system.link_report()
    print(f"{'client':>7} {'dist (m)':>9} {'SNR (dB)':>9} {'mean rate (Mbps)':>17}")
    for row in rows[:8]:
        print(f"{row['client']:>7} {row['distance_m']:>9.1f} "
              f"{row['snr_db']:>9.1f} {row['mean_uplink_mbps']:>17.1f}")
    print(f"... ({len(rows)} clients total)")
    print()


def narrowband_effect(system: WirelessSystem) -> None:
    print("=== the effect GSFL exploits: spectral efficiency vs bandwidth ===")
    chan = system.channel
    client = 0
    full = 20e6
    print(f"{'share':>10} {'mean rate (Mbps)':>17} {'x of full/M':>12}")
    base = chan.mean_uplink_rate_bps(client, full, num_draws=400)
    for m in (1, 2, 6, 10, 30):
        share = full / m
        rate = chan.mean_uplink_rate_bps(client, share, num_draws=400)
        print(f"B/{m:<8} {rate / 1e6:>17.1f} {rate / (base / m):>12.2f}")
    print("(fixed tx power over a narrower band -> higher SNR/Hz, so a 1/M "
          "share carries more than 1/M of the full-band rate)")
    print()


def allocator_comparison(system: WirelessSystem) -> None:
    print("=== bandwidth allocation policies over 4 concurrent clients ===")
    active = [0, 5, 10, 15]
    for name in ("equal", "proportional_rate", "inverse_rate"):
        alloc = make_allocator(name, 20e6)
        shares = alloc.shares(active, system.channel)
        pretty = ", ".join(f"c{c}: {b / 1e6:.1f} MHz" for c, b in shares.items())
        print(f"{name:>18}: {pretty}")
    print()


def minmax_demo() -> None:
    print("=== inter-group min-max bandwidth split (future-work §IV) ===")
    # Three groups with skewed transmission workloads (bits per round).
    bits = [4e6, 8e6, 20e6]
    workloads = [
        GroupWorkload(i, lambda b, load=load: 0.05 + load / (b * 4.0))
        for i, load in enumerate(bits)
    ]
    total = 20e6
    eq = equal_bandwidth_split(total, 3)
    t_eq = max(w.latency_fn(b) for w, b in zip(workloads, eq))
    shares, t_opt = minmax_bandwidth_split(workloads, total)
    print(f"equal split round time : {t_eq:.3f} s")
    print(f"min-max split          : {t_opt:.3f} s "
          f"({(t_eq - t_opt) / t_eq:+.0%} change)")
    print("shares:", ", ".join(f"{b / 1e6:.1f} MHz" for b in shares))
    print()


def fair_share_demo() -> None:
    print("=== processor-sharing link (DES substrate) ===")
    env = Environment()
    link = FairShareLink(env, capacity_bps=10e6)
    finished = {}

    def sender(name: str, bits: float, start: float):
        yield env.timeout(start)
        yield link.transfer(bits)
        finished[name] = env.now

    env.process(sender("long flow (40 Mbit)", 40e6, 0.0))
    env.process(sender("short flow (5 Mbit, arrives at t=1s)", 5e6, 1.0))
    env.run()
    for name, t in finished.items():
        print(f"{name}: finished at t={t:.2f} s")
    print("(the short flow steals half the link while active, delaying the long one)")


def main() -> None:
    system = WirelessSystem(WirelessConfig(num_clients=30, seed=0))
    link_tour(system)
    narrowband_effect(system)
    allocator_comparison(system)
    minmax_demo()
    fair_share_demo()


if __name__ == "__main__":
    main()
