"""Scheme ladder — one-round latency and storage across all six schemes.

A cross-cutting view the paper's Fig 1 implies but never tabulates: for
the same round of work, how do the schemes rank in wall-clock latency,
bytes over the air, and edge storage?

Asserts the structural ordering:

* serial SL is the slowest split scheme; parallel variants (SplitFed,
  PSL) are the fastest; GSFL sits in between;
* SL/PSL keep one server replica, GSFL M, SplitFed N.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.experiments import fast_scenario, make_scheme


def test_scheme_ladder(benchmark):
    names = ["CL", "FL", "SL", "PSL", "SplitFed", "GSFL"]

    def experiment():
        rows = {}
        for name in names:
            scenario = fast_scenario(with_wireless=True, num_clients=12, num_groups=3)
            scenario.wireless = replace(scenario.wireless, deterministic_rates=True)
            built = scenario.build()
            scheme = make_scheme(name, built)
            history = scheme.run(1)
            rows[name] = {
                "round_s": history.total_latency_s,
                "air_bytes": scheme.recorder.total_bytes(),
                "replicas": getattr(scheme, "server_side_replicas", lambda: 0)(),
            }
        return rows

    rows = run_once(benchmark, experiment)

    print()
    print("Scheme ladder (N=12, M=3, one round, deterministic rates)")
    print(f"{'scheme':>9} {'round (s)':>10} {'air kB':>9} {'replicas':>9}")
    for name in names:
        r = rows[name]
        print(f"{name:>9} {r['round_s']:>10.3f} {r['air_bytes'] / 1e3:>9.1f} "
              f"{r['replicas']:>9}")

    # latency ordering among the split family
    assert rows["SplitFed"]["round_s"] < rows["GSFL"]["round_s"] < rows["SL"]["round_s"]
    assert rows["PSL"]["round_s"] < rows["SL"]["round_s"]
    # storage ordering
    assert rows["SL"]["replicas"] == rows["PSL"]["replicas"] == 1
    assert rows["GSFL"]["replicas"] == 3
    assert rows["SplitFed"]["replicas"] == 12
    benchmark.extra_info["rows"] = {
        k: {kk: round(vv, 4) if isinstance(vv, float) else vv for kk, vv in v.items()}
        for k, v in rows.items()
    }
