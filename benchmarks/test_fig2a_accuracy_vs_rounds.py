"""Fig 2(a) — accuracy vs training rounds for CL / SL / GSFL / FL.

Paper claims reproduced here:

* CL, SL and GSFL converge to comparable accuracy; FL lags far behind
  at equal round counts;
* GSFL converges several times faster than FL in rounds-to-target
  (paper: "nearly 500% improvement in convergence speed").

The benchmark prints the same accuracy-vs-round series the paper plots.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import paper_scenario, run_fig2a
from repro.metrics.report import convergence_speedup


def test_fig2a_accuracy_vs_rounds(benchmark, scale):
    if scale == "paper":
        rounds, tpc, target = 30, 20, 0.6
    else:
        rounds, tpc, target = 26, 16, 0.5

    def experiment():
        scenario = paper_scenario(with_wireless=False, train_per_class=tpc)
        return run_fig2a(scenario, num_rounds=rounds, target_accuracy=target)

    result = run_once(benchmark, experiment)
    h = result.histories

    print()
    print("Fig 2(a): accuracy (%) vs training rounds")
    print(result.table)

    # --- paper-shape assertions ---------------------------------------
    # 1. CL / SL / GSFL all converge well above FL at equal rounds.
    assert h["CL"].final_accuracy > h["FL"].final_accuracy + 0.05
    assert h["SL"].final_accuracy > h["FL"].final_accuracy + 0.05
    assert h["GSFL"].final_accuracy > h["FL"].final_accuracy + 0.05
    # 2. GSFL accuracy is comparable to SL (within a modest gap).
    assert h["GSFL"].final_accuracy >= h["SL"].final_accuracy - 0.12
    # 3. GSFL reaches the target several times sooner than FL.
    speedup = convergence_speedup(h["GSFL"], h["FL"], target)
    assert speedup is not None and speedup >= 2.0

    benchmark.extra_info["gsfl_over_fl_speedup"] = speedup
    benchmark.extra_info["final_accuracy"] = {
        name: round(hist.final_accuracy, 4) for name, hist in h.items()
    }
    print(f"\nGSFL-over-FL convergence speedup @ {target:.0%}: {speedup:.1f}x "
          "(paper: ~5x)")
