"""Abl-2 — group count and grouping strategy (paper §IV future work).

Sweeps M from 1 (vanilla SL plus aggregation) to N (SplitFed) and runs
one real training round per configuration, reporting the simulated round
latency.  Asserts the interpolation shape: round latency decreases
monotonically as groups parallelize the round, with diminishing returns
set by the shared spectrum.

Also compares grouping strategies on a heterogeneous fleet: balanced
grouping must not lose to naive contiguous grouping.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.experiments import fast_scenario, make_scheme


def test_ablation_group_count(benchmark):
    num_clients = 12
    sweep_m = [1, 2, 3, 4, 6, 12]

    def experiment():
        latencies = {}
        for m in sweep_m:
            scenario = fast_scenario(
                with_wireless=True, num_clients=num_clients, num_groups=m
            )
            built = scenario.build()
            history = make_scheme("GSFL", built).run(1)
            latencies[m] = history.total_latency_s
        return latencies

    latencies = run_once(benchmark, experiment)

    print()
    print("Abl-2a: GSFL round latency vs group count (N=12)")
    print(f"{'M':>4} {'round latency (s)':>18}")
    for m in sweep_m:
        print(f"{m:>4} {latencies[m]:>18.3f}")

    values = [latencies[m] for m in sweep_m]
    # Monotone decreasing: more parallel groups -> cheaper rounds.
    assert all(a > b for a, b in zip(values, values[1:])), values
    # Diminishing returns: the 1->2 gain dwarfs the 6->12 gain.
    assert (values[0] - values[1]) > (values[4] - values[5])
    benchmark.extra_info["latency_by_m"] = {m: round(v, 4) for m, v in latencies.items()}


def test_ablation_grouping_strategy(benchmark):
    def experiment():
        results = {}
        for strategy in ("contiguous", "random", "compute_balanced"):
            scenario = fast_scenario(with_wireless=True, num_clients=12, num_groups=3)
            scenario.wireless = replace(scenario.wireless, heterogeneity=0.8)
            built = scenario.build()
            history = make_scheme("GSFL", built, grouping=strategy).run(1)
            results[strategy] = history.total_latency_s
        return results

    results = run_once(benchmark, experiment)

    print()
    print("Abl-2b: grouping strategy on a heterogeneous fleet (round latency)")
    for strategy, latency in results.items():
        print(f"{strategy:>18}: {latency:.3f} s")

    # Balanced grouping must not be worse than naive contiguous grouping
    # (small tolerance: the fleet draw decides how much there is to win).
    assert results["compute_balanced"] <= results["contiguous"] * 1.05
    benchmark.extra_info["latency_by_strategy"] = {
        k: round(v, 4) for k, v in results.items()
    }
