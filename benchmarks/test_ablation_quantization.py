"""Abl-4 (extension) — smashed-data quantization.

Split learning's per-batch activation exchange dominates GSFL/SL
traffic; quantizing it to k bits cuts the payload 32/k-fold.  This bench
runs GSFL at float32 / 8-bit / 4-bit and reports round latency and
accuracy after a fixed budget.

Asserts: payload and round latency drop monotonically with bit width,
and 8-bit training stays within a modest accuracy gap of float32.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.experiments import fast_scenario, make_scheme


def test_ablation_quantization(benchmark):
    rounds = 6

    def experiment():
        results = {}
        for bits in (None, 8, 4):
            scenario = fast_scenario(with_wireless=True)
            scenario.wireless = replace(scenario.wireless, deterministic_rates=True)
            scenario.scheme = replace(scenario.scheme, quantize_bits=bits)
            built = scenario.build()
            scheme = make_scheme("GSFL", built)
            history = scheme.run(rounds)
            uplinks = scheme.recorder.filter(phases=["uplink_smashed"])
            results[bits or 32] = {
                "latency_s": history.total_latency_s,
                "accuracy": history.final_accuracy,
                "payload_bytes": uplinks[0].nbytes,
            }
        return results

    results = run_once(benchmark, experiment)

    print()
    print("Abl-4: smashed-data quantization (GSFL, 6 rounds)")
    print(f"{'bits':>5} {'payload (B)':>12} {'latency (s)':>12} {'accuracy':>9}")
    for bits in (32, 8, 4):
        r = results[bits]
        print(f"{bits:>5} {r['payload_bytes']:>12} {r['latency_s']:>12.3f} "
              f"{r['accuracy']:>9.3f}")

    assert results[8]["payload_bytes"] < results[32]["payload_bytes"] / 3
    assert results[4]["payload_bytes"] < results[8]["payload_bytes"]
    assert results[8]["latency_s"] < results[32]["latency_s"]
    assert results[4]["latency_s"] < results[8]["latency_s"]
    # 8-bit quantization must not destroy learning.
    assert results[8]["accuracy"] >= results[32]["accuracy"] - 0.2
    benchmark.extra_info["results"] = {
        str(k): {kk: round(vv, 4) for kk, vv in v.items()} for k, v in results.items()
    }
