"""Abl-1 — cut-layer selection (paper §IV future work).

Sweeps every valid cut of the DeepThin CNN and prices one client's
split-training round against the wireless scenario.  Asserts the
structural facts the sweep must show:

* cuts immediately after pooling stages are local latency minima
  (pooling shrinks the smashed payload 4x);
* client compute grows monotonically with cut depth while the
  client+server total stays constant.
"""

from __future__ import annotations

from repro.core.cut_layer import analyze_cuts, best_cut
from repro.experiments import paper_scenario


def test_ablation_cut_layer(benchmark):
    scenario = paper_scenario(with_wireless=True)
    built = scenario.build()

    def sweep():
        return best_cut(
            built.profile,
            built.system,
            batch_size=scenario.scheme.batch_size,
            local_steps=scenario.scheme.local_steps,
            bandwidth_hz=built.system.allocator.total_bandwidth_hz / scenario.num_groups,
        )

    best, sweep_rows = benchmark(sweep)
    latency = dict(sweep_rows)

    print()
    print("Abl-1: estimated local-round latency per cut layer")
    print(f"{'cut':>4} {'latency (ms)':>13}")
    for cut, t in sweep_rows:
        print(f"{cut:>4} {t * 1e3:>13.2f}{'   <- best' if cut == best else ''}")

    # DeepThin pooling stages sit at layers 3 and 7 (0-indexed), so cuts 4
    # and 8 carry 4x smaller smashed payloads than the cut just before.
    assert latency[4] < latency[3]
    assert latency[8] < latency[7]
    # Best overall must be one of the pooled cuts.
    assert best in (4, 8)

    cuts = analyze_cuts(built.profile)
    fwd = [c.client_forward_flops for c in cuts]
    assert fwd == sorted(fwd), "client compute must grow with cut depth"
    totals = {c.client_forward_flops + c.server_forward_flops for c in cuts}
    assert len(totals) == 1, "cut must partition total compute exactly"
