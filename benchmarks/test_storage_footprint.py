"""Storage-footprint comparison (paper §I).

"When there are many clients, the number of server-side models is large,
consuming prohibitive storage resources" — the argument against naive
SplitFed that motivates GSFL's M ≪ N replicas.

Asserts the exact N/M replica-storage ratio between SplitFed and GSFL
and prints the byte accounting per scheme.
"""

from __future__ import annotations

from repro.experiments import paper_scenario, make_scheme


def test_storage_footprint(benchmark):
    scenario = paper_scenario(with_wireless=True)
    built = scenario.build()

    def accounting():
        gsfl = make_scheme("GSFL", built)
        splitfed = make_scheme("SplitFed", built)
        cut = scenario.resolved_cut_layer()
        return {
            "server_model_bytes": built.profile.server_model_bytes(cut),
            "gsfl_replicas": gsfl.server_side_replicas(),
            "gsfl_bytes": gsfl.server_storage_bytes(),
            "splitfed_replicas": splitfed.server_side_replicas(),
            "splitfed_bytes": splitfed.server_storage_bytes(),
        }

    result = benchmark(accounting)

    print()
    print("Storage at the edge server (server-side model replicas)")
    print(f"one server-side replica : {result['server_model_bytes'] / 1e3:.1f} kB")
    print(f"GSFL     (M={result['gsfl_replicas']:>2}) : {result['gsfl_bytes'] / 1e3:.1f} kB")
    print(f"SplitFed (N={result['splitfed_replicas']:>2}) : "
          f"{result['splitfed_bytes'] / 1e3:.1f} kB")

    n, m = result["splitfed_replicas"], result["gsfl_replicas"]
    assert n == scenario.num_clients and m == scenario.num_groups
    assert result["splitfed_bytes"] == n * result["server_model_bytes"]
    assert result["gsfl_bytes"] == m * result["server_model_bytes"]
    assert result["splitfed_bytes"] / result["gsfl_bytes"] == n / m
    benchmark.extra_info["storage_ratio"] = n / m
