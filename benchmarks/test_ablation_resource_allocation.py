"""Abl-3 — bandwidth/compute resource allocation (paper §IV future work).

Compares the equal inter-group bandwidth split (the paper's implicit
baseline) against the min-max optimizer from ``repro.core.resource``,
then replays a real GSFL round under each split.

The workload curves handed to the optimizer are priced by the *same*
:class:`~repro.schemes.pricing.LatencyModel` the scheme itself uses, on a
deterministic-rate channel, so the optimizer's min-max guarantee must
carry over to the simulated round.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.core.resource import GroupWorkload, equal_bandwidth_split, minmax_bandwidth_split
from repro.experiments import fast_scenario, make_scheme
from repro.schemes.pricing import LatencyModel


def _group_workloads(built, scenario, groups):
    """Per-group latency curves priced exactly like split_local_round."""
    pricing = LatencyModel(built.system, built.profile, scenario.scheme.batch_size)
    cut = scenario.resolved_cut_layer()
    steps = scenario.scheme.local_steps
    model_bytes = pricing.client_model_nbytes(cut)

    def latency_fn_for(members):
        def fn(bandwidth_hz: float) -> float:
            total = pricing.downlink_model_s(members[0], model_bytes, bandwidth_hz)
            for pos, client in enumerate(members):
                per_batch = (
                    pricing.client_forward_s(client, cut)
                    + pricing.uplink_smashed_s(client, cut, bandwidth_hz)
                    + pricing.server_split_step_s(cut)
                    + pricing.downlink_gradient_s(client, cut, bandwidth_hz)
                    + pricing.client_backward_s(client, cut)
                )
                total += steps * per_batch
                if pos < len(members) - 1:
                    total += pricing.uplink_model_s(client, model_bytes, bandwidth_hz)
                    total += pricing.downlink_model_s(
                        members[pos + 1], model_bytes, bandwidth_hz
                    )
                else:
                    total += pricing.uplink_model_s(client, model_bytes, bandwidth_hz)
            return total

        return fn

    return [GroupWorkload(g, latency_fn_for(m)) for g, m in enumerate(groups)]


def test_ablation_resource_allocation(benchmark):
    scenario = fast_scenario(with_wireless=True, num_clients=12, num_groups=3)
    # Deterministic rates make the analytic curves exact; channel-side
    # imbalance comes from the distance spread across groups.
    scenario.wireless = replace(scenario.wireless, deterministic_rates=True)
    built = scenario.build()
    total_bw = built.system.allocator.total_bandwidth_hz
    groups = make_scheme("GSFL", built).groups
    workloads = _group_workloads(built, scenario, groups)

    def experiment():
        eq = equal_bandwidth_split(total_bw, len(workloads))
        t_eq = max(w.latency_fn(b) for w, b in zip(workloads, eq))
        shares, t_opt = minmax_bandwidth_split(workloads, total_bw)
        round_eq = make_scheme("GSFL", built, bandwidth_shares=eq).run(1).total_latency_s
        round_opt = (
            make_scheme("GSFL", built, bandwidth_shares=shares).run(1).total_latency_s
        )
        return {
            "analytic_equal_s": t_eq,
            "analytic_minmax_s": t_opt,
            "round_equal_s": round_eq,
            "round_minmax_s": round_opt,
            "shares_mhz": [b / 1e6 for b in shares],
        }

    result = run_once(benchmark, experiment)

    print()
    print("Abl-3: inter-group bandwidth allocation")
    print(f"analytic round time  equal: {result['analytic_equal_s']:.3f} s, "
          f"min-max: {result['analytic_minmax_s']:.3f} s")
    print(f"simulated round      equal: {result['round_equal_s']:.3f} s, "
          f"min-max: {result['round_minmax_s']:.3f} s")
    print("min-max shares (MHz):", [round(b, 2) for b in result["shares_mhz"]])

    # The optimizer can never lose on its own objective...
    assert result["analytic_minmax_s"] <= result["analytic_equal_s"] * 1.001
    # ...and with exact pricing the simulated round must agree (only the
    # aggregation-stage constant separates them).
    assert result["round_minmax_s"] <= result["round_equal_s"] * 1.02
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in result.items() if isinstance(v, float)}
    )
