"""Benchmark-suite configuration.

Every benchmark regenerates one table/figure/ablation from DESIGN.md's
experiment index and *asserts the paper's qualitative shape* (who wins,
by roughly what factor).  Experiment benchmarks execute exactly once
(``pedantic(rounds=1, iterations=1)``) because each run is a full
training experiment; micro-benchmarks use normal timing loops.

``REPRO_BENCH_SCALE`` (default ``small``) selects the experiment scale:

* ``small`` — minutes; scaled-down data, same scheme structure;
* ``paper`` — the full §III configuration used for EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("small", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be small|paper, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


def run_once(benchmark, fn):
    """Run a whole-experiment benchmark exactly once under timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
