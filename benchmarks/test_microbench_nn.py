"""Micro-benchmarks for the hot substrate paths.

Times the numpy DNN framework's core kernels (conv forward/backward,
full split-training step), FedAvg aggregation and the DES replay loop —
the operations every experiment round is made of.  These are classic
pytest-benchmark timing loops (many iterations), useful for catching
performance regressions in the substrate.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.aggregation import fedavg
from repro.models import deepthin_cnn
from repro.nn.split import split_model
from repro.nn.tensor import Tensor
from repro.schemes.base import Activity, Stage, replay_stages


def test_conv_forward(benchmark):
    model = deepthin_cnn(num_classes=43, image_size=20, seed=0)
    x = np.random.default_rng(0).normal(size=(16, 3, 20, 20))
    model.eval()

    from repro.nn.tensor import no_grad

    def forward():
        with no_grad():
            return model(Tensor(x))

    out = benchmark(forward)
    assert out.shape == (16, 43)


def test_full_training_step(benchmark):
    model = deepthin_cnn(num_classes=43, image_size=20, seed=0)
    opt = nn.SGD(model.parameters(), lr=0.01)
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(16, 3, 20, 20))
    y = rng.integers(0, 43, size=16)

    def step():
        opt.zero_grad()
        loss = loss_fn(model(Tensor(x)), y)
        loss.backward()
        opt.step()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss.item())


def test_split_training_step(benchmark):
    model = deepthin_cnn(num_classes=43, image_size=20, seed=0)
    sm = split_model(model, 4)
    c_opt = nn.SGD(sm.client.parameters(), lr=0.01)
    s_opt = nn.SGD(sm.server.parameters(), lr=0.01)
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(16, 3, 20, 20))
    y = rng.integers(0, 43, size=16)

    def step():
        smashed = sm.client.forward_to_smashed(x)
        s_opt.zero_grad()
        loss, grad, _ = sm.server.forward_backward(smashed, y, loss_fn)
        s_opt.step()
        c_opt.zero_grad()
        sm.client.backward_from_gradient(grad)
        c_opt.step()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_fedavg_aggregation(benchmark):
    states = [deepthin_cnn(seed=s).state_dict() for s in range(6)]
    weights = [1.0, 2.0, 3.0, 1.0, 2.0, 3.0]

    avg = benchmark(lambda: fedavg(states, weights))
    assert set(avg) == set(states[0])


def test_fedavg_flat_many_participants(benchmark):
    """Flat-vector FedAvg at SplitFed scale: 30 participants, one
    ``weights @ matrix`` collapse instead of a per-key Python loop."""
    states = [deepthin_cnn(seed=s).state_dict() for s in range(30)]
    weights = [float(1 + s % 5) for s in range(30)]

    avg = benchmark(lambda: fedavg(states, weights))
    assert set(avg) == set(states[0])


def _gsfl_round(kind: str) -> float:
    from repro.exec import make_executor
    from repro.experiments.runner import make_scheme
    from repro.experiments.scenario import fast_scenario

    built = fast_scenario(with_wireless=True, num_clients=6, num_groups=6).build()
    with make_executor(kind, None if kind == "serial" else 2) as ex:
        scheme = make_scheme("GSFL", built, executor=ex)
        history = scheme.run(1)
    return history.final_accuracy


def test_parallel_round_serial(benchmark):
    """One GSFL round (M=6) on the serial backend — the reference cost."""
    acc = benchmark.pedantic(lambda: _gsfl_round("serial"), rounds=3, iterations=1)
    assert 0.0 <= acc <= 1.0


def test_parallel_round_thread(benchmark):
    """Same round on the thread backend; speedup scales with free cores
    (BLAS releases the GIL), parity tests guarantee identical results."""
    acc = benchmark.pedantic(lambda: _gsfl_round("thread"), rounds=3, iterations=1)
    assert 0.0 <= acc <= 1.0


def test_des_replay_throughput(benchmark):
    """Replay a 6-track, 600-activity round through the event kernel."""

    def build_and_replay():
        stage = Stage("training")
        for g in range(6):
            stage.extend(
                f"group-{g}",
                [Activity(0.01 * (i % 7 + 1), "client_compute", f"g{g}") for i in range(100)],
            )
        return replay_stages([stage])

    total = benchmark(build_and_replay)
    assert total > 0
