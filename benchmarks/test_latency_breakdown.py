"""Latency decomposition — per-phase breakdown of one training round.

Audits the simulator: for SL the round duration must equal the sum of
its (serial) trace events; for GSFL the round is gated by the slowest
group's track plus the aggregation stage.  Prints the per-phase
time/byte budget for both schemes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import paper_scenario, make_scheme


def test_latency_breakdown(benchmark):
    scenario = paper_scenario(with_wireless=True, train_per_class=5)

    def experiment():
        out = {}
        for name in ("SL", "GSFL"):
            built = paper_scenario(with_wireless=True, train_per_class=5).build()
            scheme = make_scheme(name, built)
            history = scheme.run(1)
            out[name] = {
                "round_s": history.total_latency_s,
                "phases_s": scheme.recorder.total_time_by_phase(),
                "phases_b": scheme.recorder.total_bytes_by_phase(),
                "events": list(scheme.recorder.events),
            }
        return out

    result = run_once(benchmark, experiment)

    print()
    for name in ("SL", "GSFL"):
        data = result[name]
        print(f"--- {name}: one round = {data['round_s']:.3f} s ---")
        print(f"{'phase':>20} {'time (s)':>10} {'bytes':>12}")
        for phase, seconds in sorted(data["phases_s"].items(), key=lambda kv: -kv[1]):
            nbytes = data["phases_b"].get(phase, 0)
            print(f"{phase:>20} {seconds:>10.3f} {nbytes:>12}")
        print()

    # --- audit: SL's serial trace must tile the round exactly -----------
    sl = result["SL"]
    serial_total = sum(sl["phases_s"].values())
    assert serial_total == pytest.approx(sl["round_s"], rel=1e-9)

    # --- audit: GSFL's round equals its longest critical path -----------
    gsfl = result["GSFL"]
    span_start = min(e.start for e in gsfl["events"])
    span_end = max(e.end for e in gsfl["events"])
    assert span_end - span_start == pytest.approx(gsfl["round_s"], rel=1e-9)
    # Parallelism: summed busy time strictly exceeds the wall-clock round.
    assert sum(gsfl["phases_s"].values()) > gsfl["round_s"] * 1.5

    # --- shape: both schemes move identical smashed bytes per round -----
    assert gsfl["phases_b"]["uplink_smashed"] == sl["phases_b"]["uplink_smashed"]
    benchmark.extra_info["sl_round_s"] = round(sl["round_s"], 3)
    benchmark.extra_info["gsfl_round_s"] = round(gsfl["round_s"], 3)
