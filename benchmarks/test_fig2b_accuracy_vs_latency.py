"""Fig 2(b) — accuracy vs cumulative training latency, GSFL vs SL.

Paper claims reproduced here:

* GSFL's accuracy-vs-latency curve dominates SL's past the early
  transient (faster convergence in wall-clock);
* double-digit relative delay reduction at the target accuracy
  (paper: "about 31.45%").

The benchmark prints the same (latency, accuracy) series the paper plots.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import paper_scenario, run_fig2b
from repro.metrics.report import latency_reduction


def test_fig2b_accuracy_vs_latency(benchmark, scale):
    if scale == "paper":
        rounds, tpc, target = 40, 20, 0.8
    else:
        rounds, tpc, target = 26, 16, 0.75

    def experiment():
        scenario = paper_scenario(with_wireless=True, train_per_class=tpc)
        return run_fig2b(scenario, num_rounds=rounds, target_accuracy=target)

    result = run_once(benchmark, experiment)
    sl, gsfl = result.histories["SL"], result.histories["GSFL"]

    print()
    print("Fig 2(b): accuracy (%) vs latency (s)")
    print(result.table)

    # --- paper-shape assertions ---------------------------------------
    # 1. GSFL rounds are substantially cheaper in wall clock than SL's.
    sl_round = sl.total_latency_s / sl.points[-1].round_index
    gsfl_round = gsfl.total_latency_s / gsfl.points[-1].round_index
    assert gsfl_round < 0.6 * sl_round, (gsfl_round, sl_round)
    # 2. GSFL reaches the target accuracy with less cumulative delay.
    reduction = latency_reduction(gsfl, sl, target)
    assert reduction is not None, "one scheme never reached the target"
    assert reduction > 0.05, f"delay reduction {reduction:.1%} too small"

    benchmark.extra_info["delay_reduction"] = round(reduction, 4)
    benchmark.extra_info["per_round_latency_s"] = {
        "SL": round(sl_round, 3),
        "GSFL": round(gsfl_round, 3),
    }
    print(f"\nGSFL delay reduction vs SL @ {target:.0%}: {reduction:.1%} "
          "(paper: ~31.45%)")
