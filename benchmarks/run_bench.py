"""Substrate + runtime performance tracker: dump op → median seconds as JSON.

Runs the hot-path micro-operations (the same bodies as
``test_microbench_nn.py``) under the current substrate settings and
writes ``BENCH_substrate.json``, so the perf trajectory is tracked in-repo
from PR to PR; also runs the event-driven runtime scenarios (static vs
contended medium, homogeneous vs heterogeneous fleets) and writes
``BENCH_runtime.json`` with the measured latency divergence::

    PYTHONPATH=src python benchmarks/run_bench.py                 # float32
    PYTHONPATH=src python benchmarks/run_bench.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --dtype float64
    PYTHONPATH=src python benchmarks/run_bench.py --compare old.json

``--compare`` embeds per-op speedups against a previously dumped file
(e.g. one generated from the seed commit) into the output; ``--quick``
shrinks timing budgets for the non-gating CI smoke step.

``BENCH_runtime.json`` also carries a ``scale`` section — DES events/sec
and peak event-queue depth at 100 / 1k / 10k concurrent flows, for the
incremental fair-share engines against the retained dense reference —
and ``--profile`` re-runs the largest scale workload under ``cProfile``
and prints the top-20 cumulative entries.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time

import numpy as np

from repro import nn
from repro.core.aggregation import fedavg
from repro.models import deepthin_cnn
from repro.nn.split import split_model
from repro.nn.tensor import Tensor
from repro.schemes.base import Activity, Stage, replay_stages


def _timeit(fn, *, min_rounds: int = 5, min_time_s: float = 0.5) -> dict:
    """Median + p95 wall-clock seconds of ``fn()`` (warmup excluded)."""
    fn()  # warmup / JIT caches / BLAS thread spin-up
    samples: list[float] = []
    budget_start = time.perf_counter()
    while len(samples) < min_rounds or time.perf_counter() - budget_start < min_time_s:
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
        if len(samples) >= 200:
            break
    ordered = sorted(samples)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    return {
        "median_s": statistics.median(samples),
        "p95_s": p95,
        "rounds": len(samples),
    }


def bench_conv_forward() -> "callable":
    model = deepthin_cnn(num_classes=43, image_size=20, seed=0)
    model.eval()
    x = np.random.default_rng(0).normal(size=(16, 3, 20, 20))

    def op():
        from repro.nn.tensor import no_grad

        with no_grad():
            return model(Tensor(x))

    return op


def bench_full_training_step() -> "callable":
    model = deepthin_cnn(num_classes=43, image_size=20, seed=0)
    opt = nn.SGD(model.parameters(), lr=0.01)
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(16, 3, 20, 20))
    y = rng.integers(0, 43, size=16)

    def op():
        opt.zero_grad()
        loss = loss_fn(model(Tensor(x)), y)
        loss.backward()
        opt.step()
        return loss

    return op


def bench_split_training_step() -> "callable":
    model = deepthin_cnn(num_classes=43, image_size=20, seed=0)
    sm = split_model(model, 4)
    c_opt = nn.SGD(sm.client.parameters(), lr=0.01)
    s_opt = nn.SGD(sm.server.parameters(), lr=0.01)
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(16, 3, 20, 20))
    y = rng.integers(0, 43, size=16)

    def op():
        smashed = sm.client.forward_to_smashed(x)
        s_opt.zero_grad()
        _, grad, _ = sm.server.forward_backward(smashed, y, loss_fn)
        s_opt.step()
        c_opt.zero_grad()
        sm.client.backward_from_gradient(grad)
        c_opt.step()

    return op


def bench_fedavg_aggregation() -> "callable":
    states = [deepthin_cnn(seed=s).state_dict() for s in range(6)]
    weights = [1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
    return lambda: fedavg(states, weights)


def bench_fedavg_flat_30() -> "callable":
    states = [deepthin_cnn(seed=s).state_dict() for s in range(30)]
    weights = [float(1 + s % 5) for s in range(30)]
    return lambda: fedavg(states, weights)


def bench_des_replay() -> "callable":
    def op():
        stage = Stage("training")
        for g in range(6):
            stage.extend(
                f"group-{g}",
                [
                    Activity(0.01 * (i % 7 + 1), "client_compute", f"g{g}")
                    for i in range(100)
                ],
            )
        return replay_stages([stage])

    return op


def bench_fair_share_link(n_flows: int = 60) -> "callable":
    """Shared-medium churn: ``n_flows`` staggered flows joining and leaving.

    Arrivals are staggered tightly relative to transfer times so nearly
    all flows are concurrently active — the worst case for the
    fair-share reallocation kernel.  The returned op records the DES
    event count on ``op.events`` so the driver can report median and p95
    *per-event* cost alongside the whole-run timing.
    """
    from repro.sim.engine import Environment
    from repro.sim.resources import FairShareLink

    def op():
        env = Environment()
        link = FairShareLink(env, capacity_bps=1e6)

        def sender(start, bits):
            yield env.timeout(start)
            yield link.transfer(bits)

        for i in range(n_flows):
            env.process(sender(0.01 * i, 1e4 + 100.0 * i))
        env.run()
        op.events = env.events_fired
        return env.now

    return op


def _gsfl_round_op(kind: str) -> "callable":
    from repro.exec import make_executor
    from repro.experiments.runner import make_scheme
    from repro.experiments.scenario import fast_scenario

    def op():
        built = fast_scenario(with_wireless=True, num_clients=6, num_groups=6).build()
        with make_executor(kind, None if kind == "serial" else 2) as ex:
            make_scheme("GSFL", built, executor=ex).run(1)

    return op


OPS: dict[str, "callable"] = {
    "conv_forward": bench_conv_forward,
    "full_training_step": bench_full_training_step,
    "split_training_step": bench_split_training_step,
    "fedavg_aggregation": bench_fedavg_aggregation,
    "fedavg_flat_30": bench_fedavg_flat_30,
    "des_replay": bench_des_replay,
    "fair_share_link_8": lambda: bench_fair_share_link(8),
    "fair_share_link_64": lambda: bench_fair_share_link(64),
    "fair_share_link_512": lambda: bench_fair_share_link(512),
}


def _churn_run(
    n_flows: int, incremental: bool, policy=None, budget_s: float | None = None
) -> dict:
    """One fleet-scale churn run; returns events/sec + queue high-water.

    ``n_flows`` senders arrive microseconds apart with megabit payloads on
    a gigabit link, so essentially the whole fleet is concurrently active
    before the first completion — the regime where the dense kernel's
    O(active) reallocation per membership change goes quadratic and the
    incremental engines stay O(log active).

    ``budget_s`` truncates the run after that much host wall-clock (the
    dense reference at 10k flows would otherwise take tens of minutes);
    throughput is then the steady-state rate over the budget window and
    the row is marked ``truncated``.
    """
    from repro.sim.engine import Environment
    from repro.sim.resources import FairShareLink

    env = Environment()
    link = FairShareLink(env, 1e9, policy=policy, incremental=incremental)

    def sender(i):
        yield env.timeout(1e-6 * i)
        yield link.transfer(1e6 + i, client=i % 32 if policy is not None else None)

    for i in range(n_flows):
        env.process(sender(i))
    t0 = time.perf_counter()
    truncated = False
    if budget_s is None:
        env.run()
    else:
        deadline = t0 + budget_s
        while time.perf_counter() < deadline:
            if not env.pending:
                break
            env.step()
        else:
            truncated = True
    wall = time.perf_counter() - t0
    row = {
        "events": env.events_fired,
        "wall_s": round(wall, 4),
        "events_per_s": round(env.events_fired / wall, 1),
        "peak_pending": env.peak_pending,
    }
    if truncated:
        row["truncated"] = True
    return row


def scale_report(quick: bool, profile: bool = False) -> dict:
    """Events/sec and peak queue depth vs fleet size → the ``scale`` section.

    Runs the churn workload at 100 / 1 000 / 10 000 concurrent flows
    (``--quick`` stops at 1 000) with the incremental EqualShare engine
    and the retained dense reference, reporting the events/sec ratio —
    the number the fleet-scale acceptance bar (≥10x at 10k flows) reads.
    The contended allocator policy is membership-coupled and keeps the
    dense engine by design, so it is capped at 1 000 flows and reported
    for queue-hygiene (peak pending) rather than speedup.

    With ``profile=True`` the largest incremental run is re-executed
    under :mod:`cProfile` and the top-20 cumulative entries are printed,
    pointing at the next hot path (currently the allocator share-cache
    frozenset hashing once the kernel itself is out of the way).
    """
    from repro.wireless.bandwidth import ProportionalRateAllocation, as_share_policy
    from repro.wireless.channel import WirelessChannel

    sizes = (100, 1000) if quick else (100, 1000, 10000)
    contended_cap = 1000
    report: dict = {
        "workload": "staggered arrivals, ~all flows concurrently active",
        "contended_note": (
            "allocator-backed policies are membership-coupled (dense engine "
            f"by design); capped at {contended_cap} flows"
        ),
        "fleets": {},
    }

    def contended_policy():
        channel = WirelessChannel(
            distances_m=np.linspace(50.0, 500.0, 32),
            rng=np.random.default_rng(7),
        )
        return as_share_policy(ProportionalRateAllocation(1e9), channel)

    for n in sizes:
        # The dense reference is quadratic: run it to completion only
        # where that is affordable, else sample steady-state throughput
        # over a fixed host-time window.
        dense_budget = None
        if n >= 10000:
            dense_budget = 10.0
        elif quick and n >= 1000:
            dense_budget = 3.0
        row = {"equal_incremental": _churn_run(n, True)}
        row["equal_dense"] = _churn_run(n, False, budget_s=dense_budget)
        row["incremental_speedup"] = round(
            row["equal_incremental"]["events_per_s"]
            / row["equal_dense"]["events_per_s"],
            2,
        )
        if n <= contended_cap:
            row["contended_dense"] = _churn_run(n, True, policy=contended_policy())
        report["fleets"][str(n)] = row
        inc, dense = row["equal_incremental"], row["equal_dense"]
        print(f"{f'scale fleet={n}':>24}: incremental {inc['events_per_s']:>12,.0f} ev/s "
              f"(peak {inc['peak_pending']}) | dense {dense['events_per_s']:>12,.0f} ev/s "
              f"(peak {dense['peak_pending']}) | {row['incremental_speedup']:.1f}x")

    if profile:
        import cProfile
        import pstats

        prof = cProfile.Profile()
        prof.enable()
        _churn_run(max(sizes), True)
        prof.disable()
        print(f"\n--- cProfile: incremental churn at {max(sizes)} flows "
              "(top 20, cumulative) ---")
        pstats.Stats(prof).sort_stats("cumulative").print_stats(20)
    return report


def runtime_report(quick: bool, profile: bool = False) -> dict:
    """Event-driven runtime scenarios → the BENCH_runtime.json payload.

    Measures the contention-aware medium against the static-subchannel
    model: with homogeneous devices the group pipelines stay in near
    lockstep and the two agree closely; with a heterogeneous fleet the
    pipelines drift, idle subchannels get re-allocated, and the
    DES-resolved latency measurably diverges from the static analytic
    numbers.
    """
    import time
    from dataclasses import replace

    from repro.experiments.runner import make_scheme
    from repro.experiments.scenario import fast_scenario

    rounds = 1 if quick else 3
    report: dict = {"rounds": rounds, "scheme": "GSFL", "scenarios": {}}

    def run(medium: str, het: float):
        scenario = fast_scenario(with_wireless=True)
        scenario.wireless = replace(scenario.wireless, heterogeneity=het)
        scenario.scheme = replace(scenario.scheme, medium=medium)
        scheme = make_scheme("GSFL", scenario.build())
        t0 = time.perf_counter()
        history = scheme.run(rounds)
        wall = time.perf_counter() - t0
        return scheme, history, wall

    for het in (0.0, 1.0):
        static_scheme, static_hist, static_wall = run("static", het)
        cont_scheme, cont_hist, cont_wall = run("contended", het)
        static_lat = static_hist.total_latency_s
        cont_lat = cont_hist.total_latency_s
        report["scenarios"][f"heterogeneity_{het:g}"] = {
            "static_latency_s": static_lat,
            "contended_latency_s": cont_lat,
            "divergence": cont_lat / static_lat - 1.0,
            "analytic_latency_s": sum(t.analytic_s for t in static_scheme.round_timings),
            "lower_bound_s": sum(t.lower_bound_s for t in static_scheme.round_timings),
            "host_wall_static_s": round(static_wall, 4),
            "host_wall_contended_s": round(cont_wall, 4),
        }
        label = f"gsfl het={het:g}"
        print(f"{label:>24}: static {static_lat:8.3f} s | contended {cont_lat:8.3f} s "
              f"({(cont_lat / static_lat - 1.0) * 100:+.2f}%)")
    report["async"] = async_round_latency_report(quick)
    report["failures"] = failure_model_report(quick)
    report["grouping"] = grouping_report(quick)
    report["transport"] = transport_report(quick)
    report["catalog"] = catalog_report(quick)
    report["scale"] = scale_report(quick, profile=profile)
    return report


def catalog_report(quick: bool) -> dict:
    """One pinned bench row per catalog scenario, plus a replay check.

    Every registered fast-scale world (the paper-scale preset is skipped
    for cost) runs GSFL and FL for the same round budget, so scheme
    comparisons across scenarios become one table: total DES latency,
    accuracy, and the abort/retry fault ledger per world.  The section
    closes with a record→replay round trip — a churn run is exported via
    the JSONL trace format and re-driven through
    ``--scenario replay:<path>`` — asserting the per-round availability
    and participant sets reproduce exactly.
    """
    import os
    import tempfile

    from repro.cli import _export_trace
    from repro.experiments.catalog import get_scenario, list_scenarios
    from repro.experiments.runner import make_scheme

    rounds = 1 if quick else 2
    schemes = ("GSFL", "FL")
    report: dict = {"rounds": rounds, "schemes": list(schemes), "worlds": {}}
    for entry in list_scenarios():
        if entry.name == "paper":
            continue  # paper-scale fleet: too costly for the smoke table
        row: dict = {"tags": list(entry.tags)}
        for scheme_name in schemes:
            scheme = make_scheme(scheme_name, get_scenario(entry.name).build())
            history = scheme.run(rounds)
            row[scheme_name] = {
                "total_latency_s": history.total_latency_s,
                "final_accuracy": history.final_accuracy,
                "aborts": len(scheme.recorder.aborts),
                "retries": len(scheme.recorder.retries),
            }
            label = f"{scheme_name} @ {entry.name}"
            print(f"{label:>24}: total {history.total_latency_s:8.3f} s, "
                  f"acc {history.final_accuracy:.3f}, "
                  f"aborts {row[scheme_name]['aborts']}")
        report["worlds"][entry.name] = row

    # Record→replay round trip on the churn world.
    recorded = make_scheme("GSFL", get_scenario("churn").build())
    recorded.run(rounds)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.jsonl")
        _export_trace(path, recorded, scenario_name="churn")
        replayed = make_scheme("GSFL", get_scenario(f"replay:{path}").build())
        replayed.run(rounds)
    conditions = lambda scheme: [  # noqa: E731
        (rc.round_index, rc.available, rc.participants)
        for rc in scheme.dynamics.round_log
    ]
    exact = conditions(recorded) == conditions(replayed)
    report["replay_roundtrip_exact"] = bool(exact)
    print(f"{'replay roundtrip':>24}: {'exact' if exact else 'DIVERGED'}")
    return report


def async_round_latency_report(quick: bool) -> dict:
    """Async-vs-sync GSFL round latency under straggler injection.

    Per-round stragglers hit random groups, so the barrier pays the
    slowest group's penalty every round (sum of per-round maxima) while
    the barrier-free policies only pay each group's own penalties (max of
    per-group sums) — the wall-clock argument for dropping the barrier.
    One row per aggregation mode, plus the per-update staleness profile.

    The fleet is heterogeneous (log-normal compute spread) so the group
    pipelines genuinely drift apart and the barrier-free policies bank
    *observable* staleness; ``updates``/``max_staleness``/``mean_staleness``
    come straight from the server's ``UpdateRecord`` commit log.  The sync
    barrier never routes through the server, so its row reports the
    barrier's own ledger: every group commits every round at staleness 0
    by construction.
    """
    from dataclasses import replace

    from repro.experiments.dynamics import DynamicsConfig
    from repro.experiments.runner import make_scheme
    from repro.experiments.scenario import fast_scenario

    rounds = 2 if quick else 4
    straggler_rate = 0.4
    heterogeneity = 1.0
    report: dict = {
        "scheme": "GSFL",
        "rounds": rounds,
        "straggler_rate": straggler_rate,
        "straggler_slowdown": 5.0,
        "heterogeneity": heterogeneity,
        "modes": {},
    }
    for mode in ("sync", "bounded:1", "bounded:2", "async"):
        scenario = fast_scenario(with_wireless=True)
        scenario.wireless = replace(scenario.wireless, heterogeneity=heterogeneity)
        scenario.dynamics = DynamicsConfig(
            straggler_rate=straggler_rate, straggler_slowdown=5.0, seed=0
        )
        scenario.scheme = replace(scenario.scheme, aggregation=mode)
        scheme = make_scheme("GSFL", scenario.build())
        history = scheme.run(rounds)
        total = history.total_latency_s
        if scheme.aggregation_policy.synchronous:
            # Barrier ledger: one commit per group per round, never stale.
            staleness = [0] * (scheme.num_groups * rounds)
        else:
            staleness = [u.staleness for u in scheme.aggregation_updates]
        report["modes"][mode] = {
            "total_latency_s": total,
            "mean_round_latency_s": total / rounds,
            "final_accuracy": history.final_accuracy,
            "updates": len(staleness),
            "max_staleness": max(staleness) if staleness else 0,
            "mean_staleness": (
                sum(staleness) / len(staleness) if staleness else 0.0
            ),
        }
        label = f"gsfl {mode} strag={straggler_rate:g}"
        print(f"{label:>24}: total {total:8.3f} s "
              f"({total / rounds:.3f} s/round), "
              f"max staleness {report['modes'][mode]['max_staleness']}")
    sync_total = report["modes"]["sync"]["total_latency_s"]
    for mode, row in report["modes"].items():
        row["speedup_vs_sync"] = sync_total / row["total_latency_s"]
    return report


def failure_model_report(quick: bool) -> dict:
    """Mid-activity failure injection: per-scheme latency at churn on/off.

    Each scheme runs the same churn trace twice — ``failure_model="none"``
    (clients never fail: the no-churn baseline) and ``"mid-activity"``
    (in-flight preemption with retry/reroute/surrender recovery) — so the
    latency delta is exactly the cost of failures plus recovery.  Abort
    accounting comes from the trace recorder (every preemption resolves
    to a retry row, a reroute, or a surrender).
    """
    from repro.experiments.dynamics import DynamicsConfig
    from repro.experiments.runner import make_scheme
    from repro.experiments.scenario import fast_scenario

    rounds = 2 if quick else 4
    churn = {"churn_uptime_s": 0.15, "churn_downtime_s": 0.05}
    report: dict = {
        "rounds": rounds,
        "max_retries": 2,
        **churn,
        "schemes": {},
    }
    for name in ("GSFL", "SplitFed", "FL"):
        row: dict = {}
        for model in ("none", "mid-activity"):
            scenario = fast_scenario(with_wireless=True)
            scenario.dynamics = DynamicsConfig(
                failure_model=model, max_retries=2, seed=0, **churn
            )
            scheme = make_scheme(name, scenario.build())
            history = scheme.run(rounds)
            aborts = scheme.recorder.aborts
            key = "churn_off" if model == "none" else "churn_on"
            row[key] = {
                "failure_model": model,
                "total_latency_s": history.total_latency_s,
                "final_accuracy": history.final_accuracy,
                "aborts": len(aborts),
                "retries": len(scheme.recorder.retries),
                "reroutes": sum(a.resolution == "reroute" for a in aborts),
                "surrenders": sum(a.resolution == "surrender" for a in aborts),
            }
        off, on = row["churn_off"], row["churn_on"]
        row["latency_overhead"] = on["total_latency_s"] / off["total_latency_s"] - 1.0
        report["schemes"][name] = row
        print(f"{name + ' failures':>24}: off {off['total_latency_s']:8.3f} s | "
              f"on {on['total_latency_s']:8.3f} s "
              f"({row['latency_overhead'] * 100:+.1f}%, {on['aborts']} aborts, "
              f"{on['retries']} retries, {on['surrenders']} surrenders)")
    return report

#: trace phases whose rows carry payloads that actually hit the air
TRANSMIT_PHASES = (
    "model_distribution",
    "uplink_smashed",
    "downlink_gradient",
    "model_relay",
    "model_upload",
    "model_download",
)


def transport_report(quick: bool) -> dict:
    """Accuracy-vs-latency frontier across transport codecs → ``transport``.

    GSFL and SplitFed each run the same scenario under every named codec:
    ``float32`` (identity wire, the bitwise-pinned baseline), ``int8`` /
    ``intk:4`` (uniform-affine quantization), and ``topk:0.1`` (magnitude
    sparsification).  Wire bytes are measured off the trace recorder (sum
    of payload bytes over the transmit phases), so the reduction column
    is what the DES actually shipped — encode/decode compute is priced on
    the owning devices and therefore included in the latency column.  A
    second pass replays each codec under the mid-activity churn trace of
    the failure benchmark and reports the abort/retry counts: smaller
    payloads spend less airtime inside the preemption window.
    """
    from dataclasses import replace

    from repro.experiments.dynamics import DynamicsConfig
    from repro.experiments.runner import make_scheme
    from repro.experiments.scenario import fast_scenario

    rounds = 1 if quick else 3
    codecs = ("float32", "int8", "intk:4", "topk:0.1")
    churn = {"churn_uptime_s": 0.15, "churn_downtime_s": 0.05}
    report: dict = {
        "rounds": rounds,
        "codecs": list(codecs),
        "churn": {**churn, "failure_model": "mid-activity", "max_retries": 2},
        "schemes": {},
    }

    def wire_bytes(scheme) -> int:
        totals = scheme.recorder.total_bytes_by_phase()
        return sum(totals.get(phase, 0) for phase in TRANSMIT_PHASES)

    for name in ("GSFL", "SplitFed"):
        rows: dict = {}
        for codec in codecs:
            scenario = fast_scenario(with_wireless=True)
            scenario.scheme = replace(scenario.scheme, transport=codec)
            scheme = make_scheme(name, scenario.build())
            history = scheme.run(rounds)

            churn_scenario = fast_scenario(with_wireless=True)
            churn_scenario.scheme = replace(churn_scenario.scheme, transport=codec)
            churn_scenario.dynamics = DynamicsConfig(
                failure_model="mid-activity", max_retries=2, seed=0, **churn
            )
            churn_scheme = make_scheme(name, churn_scenario.build())
            churn_scheme.run(rounds)

            rows[codec] = {
                "total_latency_s": history.total_latency_s,
                "final_accuracy": history.final_accuracy,
                "wire_bytes": wire_bytes(scheme),
                "churn_aborts": len(churn_scheme.recorder.aborts),
                "churn_retries": len(churn_scheme.recorder.retries),
                "churn_surrenders": sum(
                    a.resolution == "surrender"
                    for a in churn_scheme.recorder.aborts
                ),
            }
        base = rows["float32"]
        for codec, row in rows.items():
            row["wire_reduction_vs_float32"] = (
                base["wire_bytes"] / row["wire_bytes"]
            )
            row["latency_speedup_vs_float32"] = (
                base["total_latency_s"] / row["total_latency_s"]
            )
            print(f"{name + ' ' + codec:>24}: "
                  f"latency {row['total_latency_s']:8.3f} s "
                  f"({row['latency_speedup_vs_float32']:.2f}x), "
                  f"wire {row['wire_bytes'] / 1e6:7.3f} MB "
                  f"({row['wire_reduction_vs_float32']:.2f}x), "
                  f"acc {row['final_accuracy']:.3f}, "
                  f"{row['churn_aborts']} aborts under churn")
        report["schemes"][name] = rows
    return report


def grouping_report(quick: bool) -> dict:
    """Static vs churn-aware regrouping under the PR-4 churn benchmark.

    GSFL runs the same mid-activity churn trace (uptime 0.15 s / downtime
    0.05 s, the failure-report setting) once per regroup policy:
    ``static`` keeps the contiguous construction-time partition,
    ``availability_aware`` re-deals every round by expected remaining
    up-time from the churn trace, ``abort_history`` by the EWMA of the
    per-client abort/retry telemetry.  The fleet is 12 clients in 4
    groups (3-hop relay chains) so a regroup has real routing freedom.
    Abort/retry/surrender accounting comes from the trace recorder; the
    churn-aware policies' value is exactly the abort+surrender count they
    shave off the static baseline.
    """
    from dataclasses import replace

    from repro.experiments.dynamics import DynamicsConfig
    from repro.experiments.runner import make_scheme
    from repro.experiments.scenario import fast_scenario

    rounds = 2 if quick else 4
    churn = {"churn_uptime_s": 0.15, "churn_downtime_s": 0.05}
    report: dict = {
        "scheme": "GSFL",
        "num_clients": 12,
        "num_groups": 4,
        "rounds": rounds,
        "max_retries": 2,
        "regroup_every": 1,
        "grouping": "contiguous",
        **churn,
        "policies": {},
    }
    for policy in ("static", "availability_aware", "abort_history"):
        scenario = fast_scenario(with_wireless=True, num_clients=12, num_groups=4)
        scenario.dynamics = DynamicsConfig(
            failure_model="mid-activity", max_retries=2, seed=0, **churn
        )
        scenario.scheme = replace(
            scenario.scheme, regroup=policy, regroup_every=1
        )
        scheme = make_scheme("GSFL", scenario.build())
        history = scheme.run(rounds)
        aborts = scheme.recorder.aborts
        surrenders = sum(a.resolution == "surrender" for a in aborts)
        report["policies"][policy] = {
            "total_latency_s": history.total_latency_s,
            "final_accuracy": history.final_accuracy,
            "aborts": len(aborts),
            "retries": len(scheme.recorder.retries),
            "reroutes": sum(a.resolution == "reroute" for a in aborts),
            "surrenders": surrenders,
            "aborts_plus_surrenders": len(aborts) + surrenders,
            "regroups": len(scheme.recorder.regroups),
        }
    baseline = report["policies"]["static"]["aborts_plus_surrenders"]
    for policy, row in report["policies"].items():
        row["abort_surrender_reduction_vs_static"] = (
            1.0 - row["aborts_plus_surrenders"] / baseline if baseline else 0.0
        )
        print(f"{'gsfl regroup ' + policy:>36}: "
              f"{row['aborts']} aborts + {row['surrenders']} surrenders = "
              f"{row['aborts_plus_surrenders']} "
              f"({row['abort_surrender_reduction_vs_static'] * 100:+.1f}% vs static), "
              f"latency {row['total_latency_s']:.3f} s")
    return report


# Whole-round ops need the executor subsystem; skipped gracefully when the
# script is pointed at an older checkout for baseline comparison.
ROUND_OPS = {
    "gsfl_round_serial": lambda: _gsfl_round_op("serial"),
    "gsfl_round_thread": lambda: _gsfl_round_op("thread"),
    "gsfl_round_process": lambda: _gsfl_round_op("process"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dtype", choices=("float32", "float64"), default="float32")
    parser.add_argument("-o", "--output", default="BENCH_substrate.json")
    parser.add_argument("--runtime-output", default="BENCH_runtime.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink timing budgets (CI smoke step)",
    )
    parser.add_argument(
        "--compare", default=None,
        help="previous run_bench JSON; speedups vs it are embedded",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile the largest scale-bench run; print top-20 cumulative",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.compare:
        # Validate up front — don't burn minutes of timing first.
        with open(args.compare) as fh:
            baseline = json.load(fh)

    try:
        nn.set_default_dtype(args.dtype)
        dtype = args.dtype
    except AttributeError:  # pre-dtype substrate (seed baseline runs)
        dtype = "float64"

    micro_time = 0.1 if args.quick else 0.5
    round_time = 0.2 if args.quick else 1.0
    results: dict[str, dict] = {}
    for name, make_op in OPS.items():
        op = make_op()
        results[name] = _timeit(op, min_time_s=micro_time)
        events = getattr(op, "events", None)
        if events:  # DES ops report per-event cost (median + tail)
            results[name]["events"] = events
            results[name]["median_per_event_us"] = round(
                results[name]["median_s"] / events * 1e6, 3
            )
            results[name]["p95_per_event_us"] = round(
                results[name]["p95_s"] / events * 1e6, 3
            )
        print(f"{name:>24}: {results[name]['median_s'] * 1e3:9.3f} ms "
              f"({results[name]['rounds']} rounds)"
              + (f", {results[name]['median_per_event_us']:.2f} us/event med, "
                 f"{results[name]['p95_per_event_us']:.2f} us/event p95"
                 if events else ""))
    for name, make_op in ROUND_OPS.items():
        if args.quick and name != "gsfl_round_serial":
            continue
        try:
            op = make_op()
        except ImportError:
            print(f"{name:>24}: skipped (no repro.exec in this checkout)")
            continue
        results[name] = _timeit(op, min_rounds=2 if args.quick else 3,
                                min_time_s=round_time)
        print(f"{name:>24}: {results[name]['median_s'] * 1e3:9.3f} ms "
              f"({results[name]['rounds']} rounds)")

    out = {
        "meta": {
            "dtype": dtype,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "ops": results,
    }
    if baseline is not None:
        speedups = {}
        for name, entry in results.items():
            base = baseline.get("ops", {}).get(name)
            if base:
                speedups[name] = round(base["median_s"] / entry["median_s"], 3)
        out["speedup_vs_baseline"] = {
            "baseline_dtype": baseline.get("meta", {}).get("dtype"),
            "ops": speedups,
        }
        for name, factor in speedups.items():
            print(f"{name:>24}: {factor:5.2f}x vs baseline")

    with open(args.output, "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    runtime_out = {"meta": out["meta"], **runtime_report(args.quick, args.profile)}
    with open(args.runtime_output, "w") as fh:
        json.dump(runtime_out, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.runtime_output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
