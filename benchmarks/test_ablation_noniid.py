"""Abl-5 (extension) — label-skewed (non-IID) client data.

The paper evaluates IID partitions; the natural robustness question is
how GSFL's intra-group sequential training handles Dirichlet label skew.
Each group's replica visits several clients' (skewed) distributions
sequentially before aggregation, so GSFL should degrade more gracefully
than FL, whose per-client models drift apart in one local burst.

Asserts: all schemes still learn under skew, and GSFL retains its
advantage over FL.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fast_scenario, run_schemes


def test_ablation_noniid(benchmark):
    rounds = 8

    def experiment():
        out = {}
        for partition, alpha in (("iid", None), ("dirichlet", 0.5), ("dirichlet", 0.1)):
            scenario = fast_scenario(
                with_wireless=False, num_clients=8, num_groups=2
            )
            scenario.partition = partition
            if alpha is not None:
                scenario.dirichlet_alpha = alpha
            built = scenario.build()
            histories = run_schemes(built, ["SL", "GSFL", "FL"], rounds)
            label = partition if alpha is None else f"dirichlet(a={alpha})"
            out[label] = {
                name: h.final_accuracy for name, h in histories.items()
            }
        return out

    results = run_once(benchmark, experiment)

    print()
    print(f"Abl-5: final accuracy after {rounds} rounds under label skew")
    print(f"{'partition':>18} {'SL':>7} {'GSFL':>7} {'FL':>7}")
    for label, accs in results.items():
        print(f"{label:>18} {accs['SL']:>7.3f} {accs['GSFL']:>7.3f} {accs['FL']:>7.3f}")

    for label, accs in results.items():
        # everyone beats chance (10 classes)
        assert min(accs.values()) > 0.12, (label, accs)
        # GSFL keeps its per-round edge over FL even under skew
        assert accs["GSFL"] > accs["FL"], (label, accs)
    benchmark.extra_info["results"] = {
        k: {kk: round(vv, 4) for kk, vv in v.items()} for k, v in results.items()
    }
