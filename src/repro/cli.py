"""Command-line interface for running experiments.

Usage::

    python -m repro.cli fig2a --rounds 20 --train-per-class 12
    python -m repro.cli fig2b --rounds 26 --target 0.75
    python -m repro.cli run --scheme GSFL --rounds 10 --groups 6
    python -m repro.cli run --scheme GSFL --medium contended --heterogeneity 0.8
    python -m repro.cli run --scheme FL --participation 0.5 --straggler-rate 0.2
    python -m repro.cli run --scheme GSFL --rounds 3 --trace-out trace.jsonl
    python -m repro.cli run --scheme GSFL --churn-uptime 0.5 --churn-downtime 0.1 \\
        --failure-model mid-activity --max-retries 2
    python -m repro.cli run --scheme GSFL --grouping compute_balanced
    python -m repro.cli run --scheme GSFL --churn-uptime 0.15 --churn-downtime 0.05 \\
        --failure-model mid-activity --regroup availability_aware --regroup-every 1
    python -m repro.cli scenarios
    python -m repro.cli scenarios diurnal
    python -m repro.cli run --scenario cell-outage --scheme GSFL --rounds 5
    python -m repro.cli run --scenario churn --scheme GSFL --trace-out trace.jsonl
    python -m repro.cli run --scenario replay:trace.jsonl --scheme GSFL
    python -m repro.cli cuts
    python -m repro.cli info

Every subcommand prints plain-text tables (no plotting dependencies); the
same harness functions back the benchmark suite, so CLI runs and bench
runs are directly comparable.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.grouping import GROUPING_STRATEGIES
from repro.core.regroup import REGROUP_POLICIES
from repro.exec import EXECUTOR_KINDS, Executor, make_executor
from repro.experiments.catalog import describe_scenario, get_scenario, list_scenarios
from repro.experiments.dynamics import FAILURE_MODELS, DynamicsConfig
from repro.experiments.figures import run_fig2a, run_fig2b
from repro.experiments.runner import SCHEME_REGISTRY, make_scheme
from repro.devtools.trace_schema import validate_row
from repro.experiments.scenario import ExperimentScenario, fast_scenario, paper_scenario
from repro.nn.dtype import set_default_dtype
from repro.schemes.base import MEDIUM_POLICIES
from repro.sim.server import parse_aggregation

__all__ = ["main", "build_parser"]


def _aggregation_spec(value: str) -> str:
    """argparse type-validator for ``--aggregation`` (keeps the raw spec)."""
    try:
        parse_aggregation(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GSFL reproduction experiments (ICDCS 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0, help="scenario seed")
    common.add_argument(
        "--scale",
        choices=("fast", "paper"),
        default="paper",
        help="scenario preset (fast: 6 clients/10 classes; paper: 30/43)",
    )
    common.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="catalog scenario (takes precedence over --scale): a name "
        "from `repro.cli scenarios`, or replay:<trace.jsonl> to re-drive "
        "availability from a recorded --trace-out file",
    )
    common.add_argument(
        "--train-per-class", type=int, default=None,
        help="override training samples per class",
    )
    common.add_argument(
        "--executor",
        choices=sorted(EXECUTOR_KINDS),
        default="serial",
        help="round-execution backend for parallel pipelines "
        "(GSFL groups, SplitFed/PSL clients)",
    )
    common.add_argument(
        "--workers", type=int, default=None,
        help="worker count for thread/process executors (default: CPU count)",
    )
    common.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default="float32",
        help="compute dtype for models and training (float32 is the "
        "fast default; float64 reproduces legacy double-precision runs)",
    )
    common.add_argument(
        "--medium",
        choices=MEDIUM_POLICIES,
        default="static",
        help="wireless medium share policy: 'static' resolves every "
        "transmission at its nominal subchannel, 'contended' re-allocates "
        "bandwidth among instantaneously active transmitters",
    )
    common.add_argument(
        "--heterogeneity", type=float, default=None,
        help="log-normal sigma of the client compute-speed spread "
        "(0 = identical devices)",
    )

    p2a = sub.add_parser("fig2a", parents=[common], help="accuracy vs rounds (Fig 2a)")
    p2a.add_argument("--rounds", type=int, default=20)
    p2a.add_argument("--target", type=float, default=0.6)

    p2b = sub.add_parser("fig2b", parents=[common], help="accuracy vs latency (Fig 2b)")
    p2b.add_argument("--rounds", type=int, default=26)
    p2b.add_argument("--target", type=float, default=0.75)

    prun = sub.add_parser("run", parents=[common], help="run one scheme")
    prun.add_argument("--scheme", choices=sorted(SCHEME_REGISTRY), default="GSFL")
    prun.add_argument("--rounds", type=int, default=10)
    prun.add_argument("--groups", type=int, default=None, help="GSFL group count")
    prun.add_argument(
        "--grouping", choices=GROUPING_STRATEGIES, default=None,
        help="GSFL client-partition strategy: 'contiguous' (default) splits "
        "0..N-1 into consecutive runs, 'random' shuffles per seed, "
        "'compute_balanced' evens summed compute time per group, "
        "'channel_aware' evens summed per-bit airtime per group",
    )
    prun.add_argument(
        "--regroup", choices=REGROUP_POLICIES, default=None,
        help="between-round re-partitioning: 'static' (default) freezes the "
        "construction-time groups, 'availability_aware' re-deals by expected "
        "remaining up-time from the churn trace (short-lived clients to the "
        "relay-chain tails), 'abort_history' routes chains around clients "
        "with a flaky abort/retry record (EWMA over the fault telemetry)",
    )
    prun.add_argument(
        "--regroup-every", type=int, default=1, metavar="N",
        help="re-partition every N rounds (with --regroup; default 1)",
    )
    prun.add_argument("--cut-layer", type=int, default=None)
    prun.add_argument(
        "--quantize-bits", type=int, default=None,
        help="shorthand for --transport intk:K (K-bit uniform-affine codes)",
    )
    prun.add_argument(
        "--transport", default=None, metavar="CODEC",
        help="wire codec for model/smashed/gradient payloads: 'float32' "
        "(identity, default), 'int8', 'intk:K' (K-bit uniform-affine), or "
        "'topk:F' (keep the top F fraction of entries by magnitude); "
        "encode/decode compute is priced on the owning device and wire "
        "bytes shrink to what the codec actually ships",
    )
    prun.add_argument("--failure-rate", type=float, default=0.0)
    prun.add_argument(
        "--participation", type=float, default=1.0,
        help="fraction of available clients sampled each round",
    )
    prun.add_argument(
        "--straggler-rate", type=float, default=0.0,
        help="per-round probability a participating client straggles",
    )
    prun.add_argument(
        "--straggler-slowdown", type=float, default=4.0,
        help="multiplicative compute slowdown of a straggler",
    )
    prun.add_argument(
        "--churn-uptime", type=float, default=None,
        help="mean client up-window in seconds (enables availability churn; "
        "requires --churn-downtime)",
    )
    prun.add_argument(
        "--churn-downtime", type=float, default=None,
        help="mean client down-window in seconds",
    )
    prun.add_argument(
        "--failure-model", choices=FAILURE_MODELS, default="round",
        help="granularity at which churn bites: 'none' ignores churn "
        "entirely, 'round' (default) resolves it at round boundaries, "
        "'mid-activity' preempts in-flight transfers/compute the instant "
        "a client's up-window closes (protocol-level retry/reroute/"
        "surrender recovery applies)",
    )
    prun.add_argument(
        "--max-retries", type=int, default=2,
        help="per-round retry budget after a mid-activity preemption "
        "(exhausted budget reroutes the relay chain or surrenders the round)",
    )
    prun.add_argument(
        "--aggregation", type=_aggregation_spec, default="sync",
        metavar="{sync,async,bounded:K}",
        help="server aggregation mode: 'sync' is the paper's per-round "
        "barrier, 'async' FedAsync-style barrier-free merging with "
        "polynomial staleness decay, 'bounded:K' barrier-free with an "
        "SSP-style max-lag gate (bounded:0 == sync)",
    )
    prun.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the full per-activity trace plus per-client energy "
        "summary (and per-update staleness under async aggregation) as JSONL",
    )

    pscen = sub.add_parser(
        "scenarios", parents=[common],
        help="list the scenario catalog (or describe one world)",
    )
    pscen.add_argument(
        "name", nargs="?", default=None,
        help="scenario to describe (omit to list the whole catalog)",
    )

    sub.add_parser("cuts", parents=[common], help="cut-layer latency sweep")
    sub.add_parser("info", parents=[common], help="print the scenario summary")
    return parser


def _scenario(args: argparse.Namespace) -> ExperimentScenario:
    from dataclasses import replace

    if getattr(args, "scenario", None):
        scenario = get_scenario(args.scenario, seed=args.seed)
    elif args.scale == "fast":
        scenario = fast_scenario(with_wireless=True, seed=args.seed)
    else:
        scenario = paper_scenario(with_wireless=True, seed=args.seed)
    if args.train_per_class is not None:
        scenario.dataset = replace(scenario.dataset, train_per_class=args.train_per_class)
    if args.medium != "static":
        scenario.scheme = replace(scenario.scheme, medium=args.medium)
    if args.heterogeneity is not None and scenario.wireless is not None:
        scenario.wireless = replace(scenario.wireless, heterogeneity=args.heterogeneity)
    return scenario


def _dynamics_config(args: argparse.Namespace) -> DynamicsConfig | None:
    """Build a DynamicsConfig from `run` flags; None when all defaults.

    Any flag that deviates from its default reaches DynamicsConfig so its
    validation fires (out-of-range participation, partial churn windows)
    instead of being silently dropped.
    """
    if (
        args.participation == 1.0
        and args.straggler_rate == 0.0
        and args.straggler_slowdown == 4.0
        and args.churn_uptime is None
        and args.churn_downtime is None
        and args.failure_model == "round"
        and args.max_retries == 2
    ):
        return None
    return DynamicsConfig(
        participation=args.participation,
        churn_uptime_s=args.churn_uptime,
        churn_downtime_s=args.churn_downtime,
        straggler_rate=args.straggler_rate,
        straggler_slowdown=args.straggler_slowdown,
        failure_model=args.failure_model,
        max_retries=args.max_retries,
        seed=args.seed,
    )


def _export_trace(path: str, scheme: "object", scenario_name: "str | None" = None) -> None:
    """Write the run's per-activity trace + energy summary as JSONL.

    The export doubles as a trace-*in* format: the ``meta`` row carries
    the full dynamics config (and scenario name/seed), and per-client
    ``availability`` rows record the realized churn toggle streams, so
    ``--scenario replay:<path>`` can re-drive the same fleet history.
    """
    from dataclasses import asdict

    from repro.wireless.energy import EnergyModel, EnergyReport

    recorder = scheme.recorder
    dynamics = scheme.dynamics
    total_span = scheme.runtime.now
    energy = EnergyModel()
    with open(path, "w") as fh:
        def emit(row: "dict[str, object]") -> None:
            # Every exported row must match the canonical schema registry
            # (repro.devtools.trace_schema) — the runtime half of TRC001.
            validate_row(row)
            fh.write(json.dumps(row) + "\n")

        emit(
            {
                "type": "meta",
                "scheme": scheme.name,
                "scenario": scenario_name,
                "seed": scheme.config.seed,
                "rounds": len(scheme.round_timings),
                "medium": scheme.config.medium,
                "transport": scheme.config.transport,
                "aggregation": scheme.config.aggregation,
                "failure_model": getattr(scheme, "failure_model", "none"),
                "grouping": getattr(scheme, "grouping", None),
                "regroup": scheme.config.regroup,
                "regroup_every": scheme.config.regroup_every,
                "num_clients": scheme.num_clients,
                "num_groups": getattr(scheme, "num_groups", None),
                "dynamics": asdict(dynamics.config) if dynamics is not None else None,
                "total_latency_s": total_span,
                "events": len(recorder),
                "aborts": len(recorder.aborts),
                "retries": len(recorder.retries),
                "regroups": len(recorder.regroups),
            }
        )
        if dynamics is not None and dynamics.config.has_churn:
            for c in range(dynamics.num_clients):
                emit(
                    {
                        "type": "availability",
                        "client": c,
                        "toggles": dynamics.availability_toggles(c, total_span),
                    }
                )
        if dynamics is not None:
            for rc in dynamics.round_log:
                emit(
                    {
                        "type": "round_conditions",
                        "round": rc.round_index,
                        "time_s": rc.now_s,
                        "available": list(rc.available),
                        "participants": list(rc.participants),
                        "slowdowns": {str(k): v for k, v in rc.slowdowns.items()},
                    }
                )
        for row in recorder.to_rows():
            emit(row)
        for row in recorder.abort_rows():
            emit(row)
        for row in recorder.retry_rows():
            emit(row)
        for row in recorder.regroup_rows():
            emit(row)
        for t in scheme.round_timings:
            emit(
                {
                    "type": "round_timing",
                    "round": t.round_index,
                    "des_s": t.des_s,
                    "analytic_s": t.analytic_s,
                    "lower_bound_s": t.lower_bound_s,
                }
            )
        for u in scheme.aggregation_updates:
            emit(
                {
                    "type": "aggregation_update",
                    "unit": u.unit,
                    "unit_round": u.round_index,
                    "time_s": u.time_s,
                    "staleness": u.staleness,
                    "alpha": u.alpha,
                    "weight": u.weight,
                }
            )
        reports = energy.per_client_energy(recorder, total_span)
        fleet = sum(reports.values(), EnergyReport.zero())
        for actor, report in sorted(reports.items()):
            emit(
                {
                    "type": "energy",
                    "actor": actor,
                    "tx_j": report.tx_j,
                    "rx_j": report.rx_j,
                    "compute_j": report.compute_j,
                    "idle_j": report.idle_j,
                    "total_j": report.total_j,
                }
            )
        emit(
            {
                "type": "energy_summary",
                "tx_j": fleet.tx_j,
                "rx_j": fleet.rx_j,
                "compute_j": fleet.compute_j,
                "idle_j": fleet.idle_j,
                "total_j": fleet.total_j,
            }
        )
    print(f"wrote trace: {path}")


def _executor(args: argparse.Namespace) -> Executor:
    return make_executor(args.executor, args.workers)


def _cmd_fig2a(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    scenario.wireless = None  # accuracy axis only
    with _executor(args) as ex:
        result = run_fig2a(scenario, num_rounds=args.rounds,
                           target_accuracy=args.target, verbose=True, executor=ex)
    print()
    print(result.table)
    speedup = result.gsfl_over_fl_speedup
    print(f"\nGSFL-over-FL speedup @ {args.target:.0%}: "
          f"{'unreached' if speedup is None else f'{speedup:.1f}x'} (paper ~5x)")
    return 0


def _cmd_fig2b(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    with _executor(args) as ex:
        result = run_fig2b(scenario, num_rounds=args.rounds,
                           target_accuracy=args.target, verbose=True, executor=ex)
    print()
    print(result.table)
    reduction = result.delay_reduction
    print(f"\nGSFL delay reduction vs SL @ {args.target:.0%}: "
          f"{'unreached' if reduction is None else f'{reduction:.1%}'} (paper ~31.45%)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    # Configuration phase: ValueErrors raised while assembling the
    # scenario/dynamics are user errors (bad flag combinations such as
    # --churn-uptime 0) and exit cleanly; anything raised later, during
    # the actual run, is a real bug and must keep its traceback.
    try:
        scenario = _scenario(args)
        if args.cut_layer is not None:
            scenario.cut_layer = args.cut_layer
        if args.groups is not None:
            scenario.num_groups = args.groups
        if args.aggregation != "sync" and not SCHEME_REGISTRY[args.scheme].supports_async:
            raise ValueError(
                f"scheme {args.scheme!r} does not support "
                f"--aggregation {args.aggregation} (only 'sync')"
            )
        if (
            args.regroup not in (None, "static")
            and not parse_aggregation(args.aggregation).synchronous
        ):
            raise ValueError(
                f"--regroup {args.regroup} requires synchronous aggregation "
                f"(sync / bounded:0); got --aggregation {args.aggregation}"
            )
        if args.grouping is not None:
            scenario.grouping = args.grouping
        if (
            args.quantize_bits is not None
            or args.transport is not None
            or args.aggregation != "sync"
            or args.regroup is not None
            or args.regroup_every != 1
        ):
            from dataclasses import replace

            overrides = {}
            if args.quantize_bits is not None:
                overrides["quantize_bits"] = args.quantize_bits
            if args.transport is not None:
                overrides["transport"] = args.transport
            if args.aggregation != "sync":
                overrides["aggregation"] = args.aggregation
            if args.regroup is not None:
                overrides["regroup"] = args.regroup
            if args.regroup is not None or args.regroup_every != 1:
                overrides["regroup_every"] = args.regroup_every
            scenario.scheme = replace(scenario.scheme, **overrides)
        # Explicit dynamics flags override the scenario; all-default
        # flags leave a catalog world's own dynamics in place.
        dynamics = _dynamics_config(args)
        if dynamics is not None:
            scenario.dynamics = dynamics
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    built = scenario.build()
    with _executor(args) as ex:
        overrides: dict = {"executor": ex}
        if args.scheme == "GSFL" and args.failure_rate > 0:
            overrides["failure_rate"] = args.failure_rate
        scheme = make_scheme(args.scheme, built, **overrides)
        history = scheme.run(args.rounds)
    print(f"{'round':>6} {'latency_s':>10} {'loss':>8} {'accuracy':>9}")
    for p in history.points:
        print(f"{p.round_index:>6} {p.latency_s:>10.2f} {p.train_loss:>8.3f} "
              f"{p.test_accuracy:>9.3f}")
    print()
    print(history.summary())
    if args.trace_out:
        _export_trace(args.trace_out, scheme, scenario_name=args.scenario or args.scale)
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.name:
        try:
            print(describe_scenario(args.name, seed=args.seed))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    entries = list_scenarios()
    width = max(len(e.name) for e in entries)
    print(f"{'name':<{width}}  {'tags':<26} summary")
    for e in entries:
        print(f"{e.name:<{width}}  {', '.join(e.tags):<26} {e.summary}")
    print(f"\nreplay:<trace.jsonl>  re-drive availability from a recorded "
          f"--trace-out file")
    return 0


def _cmd_cuts(args: argparse.Namespace) -> int:
    from repro.core.cut_layer import best_cut

    scenario = _scenario(args)
    built = scenario.build()
    best, sweep = best_cut(
        built.profile,
        built.system,
        batch_size=scenario.scheme.batch_size,
        local_steps=scenario.scheme.local_steps,
        bandwidth_hz=built.system.allocator.total_bandwidth_hz / scenario.num_groups,
    )
    print(f"{'cut':>4} {'latency (ms)':>13}")
    for cut, latency in sweep:
        print(f"{cut:>4} {latency * 1e3:>13.2f}{'   <- best' if cut == best else ''}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    scenario = _scenario(args)
    built = scenario.build()
    print(f"scheme presets : N={scenario.num_clients}, M={scenario.num_groups}, "
          f"model={scenario.model_name}, cut={scenario.resolved_cut_layer()}")
    print(f"dataset        : {scenario.dataset.num_classes} classes, "
          f"{sum(len(d) for d in built.client_datasets)} train / "
          f"{len(built.test_dataset)} test samples, "
          f"{scenario.dataset.image_size}x{scenario.dataset.image_size}")
    if built.profile is not None:
        print()
        print(built.profile.summary())
    return 0


_COMMANDS = {
    "fig2a": _cmd_fig2a,
    "fig2b": _cmd_fig2b,
    "run": _cmd_run,
    "scenarios": _cmd_scenarios,
    "cuts": _cmd_cuts,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    # Dtype must be pinned before any model/scenario construction; restore
    # afterwards so in-process callers (tests) see no global side effect.
    previous = set_default_dtype(args.dtype)
    try:
        return _COMMANDS[args.command](args)
    finally:
        set_default_dtype(previous)


if __name__ == "__main__":
    sys.exit(main())
