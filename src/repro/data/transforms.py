"""Composable image transforms and an augmenting dataset wrapper.

The synthetic generator already bakes augmentation into sample
synthesis; these transforms provide *runtime* augmentation for
experiments that reuse a fixed generated set (larger effective data
without regenerating), plus standard normalization.

All transforms map ``(C, H, W)`` float arrays to the same shape/kind and
take an explicit generator where stochastic.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import new_rng

__all__ = [
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "GaussianNoise",
    "TransformedDataset",
]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]) -> None:
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image)
        return image

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose([{inner}])"


class Normalize:
    """Channel-wise ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float64).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float64).reshape(-1, 1, 1)
        if np.any(self.std <= 0):
            raise ValueError("std entries must be positive")

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if image.shape[0] != self.mean.shape[0]:
            raise ValueError(
                f"image has {image.shape[0]} channels, normalize expects "
                f"{self.mean.shape[0]}"
            )
        return (image - self.mean) / self.std

    def __repr__(self) -> str:
        return f"Normalize(mean={self.mean.ravel().tolist()}, std={self.std.ravel().tolist()})"


class RandomHorizontalFlip:
    """Mirror the image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, seed: int | np.random.Generator | None = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = p
        self._rng = new_rng(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image

    def __repr__(self) -> str:
        return f"RandomHorizontalFlip(p={self.p})"


class RandomCrop:
    """Pad by ``padding`` then crop back to the original size at a random
    offset (the standard CIFAR-style augmentation)."""

    def __init__(self, padding: int = 2, seed: int | np.random.Generator | None = None) -> None:
        if padding <= 0:
            raise ValueError(f"padding must be positive, got {padding}")
        self.padding = padding
        self._rng = new_rng(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        c, h, w = image.shape
        p = self.padding
        padded = np.pad(image, ((0, 0), (p, p), (p, p)))
        dy = int(self._rng.integers(0, 2 * p + 1))
        dx = int(self._rng.integers(0, 2 * p + 1))
        return padded[:, dy : dy + h, dx : dx + w].copy()

    def __repr__(self) -> str:
        return f"RandomCrop(padding={self.padding})"


class GaussianNoise:
    """Additive zero-mean Gaussian noise, clipped to [0, 1]."""

    def __init__(self, std: float = 0.05, seed: int | np.random.Generator | None = None) -> None:
        if std < 0:
            raise ValueError(f"std must be >= 0, got {std}")
        self.std = std
        self._rng = new_rng(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self.std == 0:
            return image
        noisy = image + self._rng.normal(0.0, self.std, size=image.shape)
        return np.clip(noisy, 0.0, 1.0)

    def __repr__(self) -> str:
        return f"GaussianNoise(std={self.std})"


class TransformedDataset(Dataset):
    """Dataset view applying a transform on access (fresh draw each time)."""

    def __init__(self, dataset: Dataset, transform: Callable[[np.ndarray], np.ndarray]) -> None:
        self.dataset = dataset
        self.transform = transform

    def __len__(self) -> int:
        return len(self.dataset)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        image, label = self.dataset[index]
        return self.transform(image), label
