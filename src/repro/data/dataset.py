"""Dataset containers and mini-batch loading.

``Dataset`` is a minimal map-style protocol (``__len__`` + ``__getitem__``
returning ``(x, y)``), with array-backed and subset implementations and a
``DataLoader`` that yields ``(images, labels)`` numpy batches.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.utils.rng import new_rng

__all__ = ["Dataset", "ArrayDataset", "Subset", "DataLoader"]


class Dataset:
    """Map-style dataset protocol."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:  # pragma: no cover
        raise NotImplementedError

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize the whole dataset as ``(images, labels)`` arrays."""
        xs, ys = zip(*(self[i] for i in range(len(self))))
        return np.stack(xs), np.asarray(ys)


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays.

    Parameters
    ----------
    images:
        Array of shape ``(N, ...)``.
    labels:
        Integer array of shape ``(N,)``.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images)
        labels = np.asarray(labels)
        if len(images) != len(labels):
            raise ValueError(
                f"images ({len(images)}) and labels ({len(labels)}) length mismatch"
            )
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self.images, self.labels

    def class_counts(self, num_classes: int | None = None) -> np.ndarray:
        """Histogram of labels (length ``num_classes``)."""
        if num_classes is None:
            num_classes = int(self.labels.max()) + 1 if len(self.labels) else 0
        return np.bincount(self.labels, minlength=num_classes)


class Subset(Dataset):
    """View of another dataset restricted to ``indices``."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = np.asarray(indices, dtype=np.int64)
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= len(dataset)
        ):
            raise IndexError("subset indices out of range")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.dataset[int(self.indices[index])]


class DataLoader:
    """Iterate a dataset in mini-batches of numpy arrays.

    Reshuffles every epoch when ``shuffle=True`` using a private generator,
    so two loaders with the same seed replay identical batch streams —
    required for scheme-vs-scheme comparisons from identical conditions.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = new_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                return
            xs, ys = zip(*(self.dataset[int(i)] for i in batch_idx))
            yield np.stack(xs), np.asarray(ys)

    def sample_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Draw one random mini-batch (with reshuffle), for single steps."""
        n = len(self.dataset)
        take = min(self.batch_size, n)
        idx = self._rng.choice(n, size=take, replace=False)
        xs, ys = zip(*(self.dataset[int(i)] for i in idx))
        return np.stack(xs), np.asarray(ys)
