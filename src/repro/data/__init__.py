"""``repro.data`` — dataset substrate.

Synthetic GTSRB-like traffic-sign generator (the paper's GTSRB workload,
rebuilt parametrically since the sandbox is offline), array datasets,
mini-batch loaders and federated partitioning (IID / Dirichlet / shards).
"""

from repro.data.dataset import ArrayDataset, DataLoader, Dataset, Subset
from repro.data.gtsrb import (
    NUM_CLASSES,
    GtsrbConfig,
    SyntheticGTSRB,
    class_spec,
    render_sign,
)
from repro.data.partition import (
    make_client_datasets,
    partition_dirichlet,
    partition_iid,
    partition_label_histogram,
    partition_shards,
)
from repro.data.transforms import (
    Compose,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    TransformedDataset,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "GtsrbConfig",
    "SyntheticGTSRB",
    "NUM_CLASSES",
    "render_sign",
    "class_spec",
    "partition_iid",
    "partition_dirichlet",
    "partition_shards",
    "make_client_datasets",
    "partition_label_histogram",
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "GaussianNoise",
    "TransformedDataset",
]
