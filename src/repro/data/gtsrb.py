"""Synthetic GTSRB-like traffic-sign dataset.

The paper evaluates on GTSRB (German Traffic Sign Recognition Benchmark,
43 classes).  The sandbox has no network access, so this module generates
a *parametric* 43-class stand-in: every class is a distinct combination of
sign silhouette (circle / triangle / inverted triangle / octagon /
diamond / square), rim colour (red / blue / yellow / white) and an inner
glyph (bars, arrows, crosses, dots at class-specific positions), rendered
analytically on a coordinate grid — no image libraries needed.

Per-sample augmentation reproduces the nuisances that make GTSRB
non-trivial: brightness/contrast jitter, additive Gaussian noise, random
translation, box blur and rectangular occlusion.  Difficulty is
controlled by :class:`GtsrbConfig` so tests can use an easy/fast setting
while paper-figure runs use a harder one.

Why the substitution is faithful for this paper: Fig. 2 compares training
*protocols* (CL/SL/FL/GSFL) on the same dataset; the scheme ordering and
latency results depend on the protocol structure and payload sizes, not
on the specific pixel statistics of German roads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import new_rng
from repro.utils.validation import check_positive, check_probability

__all__ = ["GtsrbConfig", "SyntheticGTSRB", "NUM_CLASSES", "render_sign", "class_spec"]

NUM_CLASSES = 43

#: rim colours (RGB in [0,1])
_COLORS = {
    "red": (0.85, 0.10, 0.10),
    "blue": (0.10, 0.25, 0.85),
    "yellow": (0.90, 0.80, 0.10),
    "white": (0.92, 0.92, 0.92),
}

_SHAPES = ("circle", "triangle", "inv_triangle", "octagon", "diamond", "square")

_GLYPHS = (
    "none",
    "hbar",
    "vbar",
    "dbar",
    "cross",
    "dot",
    "two_dots",
    "arrow_up",
    "arrow_right",
    "chevron",
)


@dataclass(frozen=True)
class SignSpec:
    """Deterministic appearance recipe for one class."""

    shape: str
    color: str
    glyph: str
    glyph_scale: float


def class_spec(label: int) -> SignSpec:
    """Map a class label in [0, 43) to its deterministic appearance.

    The mapping enumerates (shape, colour, glyph) combinations in a fixed
    order, with a per-class glyph scale so even classes sharing a glyph
    family remain separable.
    """
    if not 0 <= label < NUM_CLASSES:
        raise ValueError(f"label must be in [0, {NUM_CLASSES}), got {label}")
    shape = _SHAPES[label % len(_SHAPES)]
    color = list(_COLORS)[(label // len(_SHAPES)) % len(_COLORS)]
    glyph = _GLYPHS[label % len(_GLYPHS)]
    glyph_scale = 0.35 + 0.3 * ((label * 7) % 5) / 4.0
    return SignSpec(shape=shape, color=color, glyph=glyph, glyph_scale=glyph_scale)


def _shape_mask(shape: str, yy: np.ndarray, xx: np.ndarray) -> np.ndarray:
    """Boolean silhouette mask on centred coordinates in [-1, 1]."""
    if shape == "circle":
        return yy**2 + xx**2 <= 0.81
    if shape == "triangle":
        return (yy <= 0.75) & (yy >= 1.9 * np.abs(xx) - 0.85)
    if shape == "inv_triangle":
        return (yy >= -0.75) & (yy <= 0.85 - 1.9 * np.abs(xx))
    if shape == "octagon":
        return (np.abs(xx) <= 0.85) & (np.abs(yy) <= 0.85) & (np.abs(xx) + np.abs(yy) <= 1.2)
    if shape == "diamond":
        return np.abs(xx) + np.abs(yy) <= 0.9
    if shape == "square":
        return (np.abs(xx) <= 0.8) & (np.abs(yy) <= 0.8)
    raise ValueError(f"unknown shape {shape!r}")


def _glyph_mask(glyph: str, scale: float, yy: np.ndarray, xx: np.ndarray) -> np.ndarray:
    """Boolean inner-glyph mask on centred coordinates."""
    s = scale
    if glyph == "none":
        return np.zeros_like(xx, dtype=bool)
    if glyph == "hbar":
        return (np.abs(yy) <= 0.18 * s * 2) & (np.abs(xx) <= 0.55 * s * 2)
    if glyph == "vbar":
        return (np.abs(xx) <= 0.18 * s * 2) & (np.abs(yy) <= 0.55 * s * 2)
    if glyph == "dbar":
        return (np.abs(yy - xx) <= 0.22 * s * 2) & (np.abs(xx) <= 0.55) & (np.abs(yy) <= 0.55)
    if glyph == "cross":
        return ((np.abs(xx) <= 0.15 * s * 2) | (np.abs(yy) <= 0.15 * s * 2)) & (
            np.maximum(np.abs(xx), np.abs(yy)) <= 0.55
        )
    if glyph == "dot":
        return yy**2 + xx**2 <= (0.3 * s) ** 2 * 4
    if glyph == "two_dots":
        left = (yy**2 + (xx + 0.3) ** 2) <= (0.22 * s) ** 2 * 4
        right = (yy**2 + (xx - 0.3) ** 2) <= (0.22 * s) ** 2 * 4
        return left | right
    if glyph == "arrow_up":
        head = (yy <= -0.05) & (yy >= 1.8 * np.abs(xx) - 0.62 * s - 0.25)
        tail = (np.abs(xx) <= 0.12 * s * 2) & (yy > -0.1) & (yy <= 0.5)
        return head | tail
    if glyph == "arrow_right":
        head = (xx >= 0.05) & (xx <= 0.62 * s + 0.25 - 1.8 * np.abs(yy))
        tail = (np.abs(yy) <= 0.12 * s * 2) & (xx < 0.1) & (xx >= -0.5)
        return head | tail
    if glyph == "chevron":
        return (np.abs(yy - 0.8 * np.abs(xx)) <= 0.16 * s * 2) & (np.abs(xx) <= 0.5)
    raise ValueError(f"unknown glyph {glyph!r}")


def render_sign(
    label: int,
    size: int,
    rng: np.random.Generator,
    noise_std: float = 0.08,
    jitter: float = 0.25,
    max_shift: int = 2,
    blur_prob: float = 0.3,
    occlusion_prob: float = 0.15,
) -> np.ndarray:
    """Render one augmented sample of class ``label``.

    Returns a float64 RGB image of shape ``(3, size, size)`` in [0, 1].
    """
    spec = class_spec(label)
    # Random sub-pixel centre shift implemented as coordinate offset.
    dy = rng.integers(-max_shift, max_shift + 1) * (2.0 / size)
    dx = rng.integers(-max_shift, max_shift + 1) * (2.0 / size)
    coords = np.linspace(-1.0, 1.0, size)
    yy, xx = np.meshgrid(coords + dy, coords + dx, indexing="ij")

    sign = _shape_mask(spec.shape, yy, xx)
    glyph = _glyph_mask(spec.glyph, spec.glyph_scale, yy, xx) & sign
    rim = sign & ~_shape_mask(spec.shape, yy * 1.35, xx * 1.35)

    img = np.empty((3, size, size))
    background = 0.25 + 0.2 * rng.random(3)
    face = np.array(_COLORS["white"]) if spec.color != "white" else np.array(
        (0.75, 0.75, 0.75)
    )
    rim_color = np.array(_COLORS[spec.color])
    glyph_color = np.array((0.05, 0.05, 0.05))
    for c in range(3):
        img[c] = background[c]
        img[c][sign] = face[c]
        img[c][rim] = rim_color[c]
        img[c][glyph] = glyph_color[c]

    # Photometric jitter: brightness offset + contrast scale.
    brightness = 1.0 + jitter * (rng.random() - 0.5) * 2.0
    offset = jitter * 0.3 * (rng.random() - 0.5) * 2.0
    img = img * brightness + offset

    if noise_std > 0:
        img = img + rng.normal(0.0, noise_std, size=img.shape)

    if rng.random() < blur_prob:
        img = _box_blur(img)

    if rng.random() < occlusion_prob:
        oh = rng.integers(size // 6, size // 3 + 1)
        ow = rng.integers(size // 6, size // 3 + 1)
        oy = rng.integers(0, size - oh + 1)
        ox = rng.integers(0, size - ow + 1)
        img[:, oy : oy + oh, ox : ox + ow] = rng.random()

    return np.clip(img, 0.0, 1.0)


def _box_blur(img: np.ndarray) -> np.ndarray:
    """3x3 box blur per channel (edges handled by same-size accumulation)."""
    out = np.zeros_like(img)
    count = np.zeros_like(img)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            src_y = slice(max(0, -dy), img.shape[1] - max(0, dy))
            src_x = slice(max(0, -dx), img.shape[2] - max(0, dx))
            dst_y = slice(max(0, dy), img.shape[1] - max(0, -dy))
            dst_x = slice(max(0, dx), img.shape[2] - max(0, -dx))
            out[:, dst_y, dst_x] += img[:, src_y, src_x]
            count[:, dst_y, dst_x] += 1.0
    return out / count


@dataclass
class GtsrbConfig:
    """Generation parameters for the synthetic GTSRB stand-in.

    ``imbalance`` reproduces GTSRB's long-tailed class frequencies: class
    sample counts follow a geometric profile with the given ratio between
    the most and least frequent class (1.0 = balanced).
    """

    num_classes: int = NUM_CLASSES
    image_size: int = 20
    train_per_class: int = 40
    test_per_class: int = 10
    noise_std: float = 0.08
    jitter: float = 0.25
    max_shift: int = 2
    blur_prob: float = 0.3
    occlusion_prob: float = 0.15
    imbalance: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.num_classes <= NUM_CLASSES:
            raise ValueError(
                f"num_classes must be in [1, {NUM_CLASSES}], got {self.num_classes}"
            )
        check_positive("image_size", self.image_size)
        check_positive("train_per_class", self.train_per_class)
        check_positive("test_per_class", self.test_per_class)
        check_probability("blur_prob", self.blur_prob)
        check_probability("occlusion_prob", self.occlusion_prob)
        if self.imbalance < 1.0:
            raise ValueError(f"imbalance ratio must be >= 1, got {self.imbalance}")

    def class_counts(self, per_class: int) -> np.ndarray:
        """Per-class sample counts under the configured imbalance."""
        if self.imbalance == 1.0:
            return np.full(self.num_classes, per_class, dtype=np.int64)
        # geometric profile: count_k = per_class * ratio^(-k/(K-1)) scaled
        # so the max class keeps ``per_class`` samples
        k = np.arange(self.num_classes)
        decay = self.imbalance ** (-k / max(self.num_classes - 1, 1))
        counts = np.maximum(1, np.round(per_class * decay)).astype(np.int64)
        return counts


class SyntheticGTSRB:
    """Factory for train/test splits of the synthetic sign dataset."""

    def __init__(self, config: GtsrbConfig | None = None) -> None:
        self.config = config or GtsrbConfig()

    def _generate(self, per_class: int, rng: np.random.Generator) -> ArrayDataset:
        cfg = self.config
        counts = cfg.class_counts(per_class)
        images: list[np.ndarray] = []
        labels: list[int] = []
        for label in range(cfg.num_classes):
            for _ in range(int(counts[label])):
                images.append(
                    render_sign(
                        label,
                        cfg.image_size,
                        rng,
                        noise_std=cfg.noise_std,
                        jitter=cfg.jitter,
                        max_shift=cfg.max_shift,
                        blur_prob=cfg.blur_prob,
                        occlusion_prob=cfg.occlusion_prob,
                    )
                )
                labels.append(label)
        x = np.stack(images)
        y = np.asarray(labels, dtype=np.int64)
        order = rng.permutation(len(y))
        return ArrayDataset(x[order], y[order])

    def train_test(self) -> tuple[ArrayDataset, ArrayDataset]:
        """Generate the (train, test) pair deterministically from the seed."""
        rng = new_rng(self.config.seed)
        train = self._generate(self.config.train_per_class, rng)
        test = self._generate(self.config.test_per_class, rng)
        return train, test

    @property
    def input_shape(self) -> tuple[int, int, int]:
        """Per-sample image shape ``(3, H, W)``."""
        return (3, self.config.image_size, self.config.image_size)
