"""Client data partitioning for federated/split experiments.

The paper's setting has 30 clients with private local datasets.  This
module produces per-client index sets from a pooled dataset under three
standard regimes:

* **IID** — uniform random equal split (the paper's implicit setting);
* **Dirichlet non-IID** — per-client class proportions drawn from
  ``Dir(alpha)``, the standard label-skew benchmark;
* **Shard non-IID** — sort-by-label sharding (McMahan et al., 2017),
  giving each client a few label shards.

All functions return ``list[np.ndarray]`` of sample indices, one per
client, partitioning the dataset (every index appears exactly once).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset, Subset
from repro.utils.rng import new_rng

__all__ = [
    "partition_iid",
    "partition_dirichlet",
    "partition_shards",
    "make_client_datasets",
    "partition_label_histogram",
]


def _check_args(num_samples: int, num_clients: int) -> None:
    if num_clients <= 0:
        raise ValueError(f"num_clients must be positive, got {num_clients}")
    if num_samples < num_clients:
        raise ValueError(
            f"cannot split {num_samples} samples across {num_clients} clients"
        )


def partition_iid(
    num_samples: int, num_clients: int, seed: int | np.random.Generator | None = None
) -> list[np.ndarray]:
    """Uniform random split into near-equal shares."""
    _check_args(num_samples, num_clients)
    rng = new_rng(seed)
    order = rng.permutation(num_samples)
    return [np.sort(part) for part in np.array_split(order, num_clients)]


def partition_dirichlet(
    labels: np.ndarray,
    num_clients: int,
    alpha: float = 0.5,
    seed: int | np.random.Generator | None = None,
    min_per_client: int = 1,
) -> list[np.ndarray]:
    """Label-skewed split with per-client class mix drawn from Dir(alpha).

    Smaller ``alpha`` → more skew.  Re-draws until every client holds at
    least ``min_per_client`` samples (guards degenerate empty clients).
    """
    labels = np.asarray(labels)
    _check_args(len(labels), num_clients)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = new_rng(seed)
    num_classes = int(labels.max()) + 1

    for _ in range(100):
        shares = [list() for _ in range(num_clients)]
        for cls in range(num_classes):
            cls_idx = np.flatnonzero(labels == cls)
            rng.shuffle(cls_idx)
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            cuts = (np.cumsum(proportions)[:-1] * len(cls_idx)).astype(int)
            for client, part in enumerate(np.split(cls_idx, cuts)):
                shares[client].extend(part.tolist())
        if min(len(s) for s in shares) >= min_per_client:
            return [np.sort(np.asarray(s, dtype=np.int64)) for s in shares]
    raise RuntimeError(
        "could not satisfy min_per_client after 100 draws; "
        "lower min_per_client or raise alpha"
    )


def partition_shards(
    labels: np.ndarray,
    num_clients: int,
    shards_per_client: int = 2,
    seed: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Sort-by-label sharding: each client gets ``shards_per_client`` shards."""
    labels = np.asarray(labels)
    _check_args(len(labels), num_clients)
    if shards_per_client <= 0:
        raise ValueError(f"shards_per_client must be positive, got {shards_per_client}")
    rng = new_rng(seed)
    num_shards = num_clients * shards_per_client
    if num_shards > len(labels):
        raise ValueError(
            f"{num_shards} shards requested but only {len(labels)} samples available"
        )
    order = np.argsort(labels, kind="stable")
    shards = np.array_split(order, num_shards)
    shard_ids = rng.permutation(num_shards)
    out = []
    for client in range(num_clients):
        ids = shard_ids[client * shards_per_client : (client + 1) * shards_per_client]
        out.append(np.sort(np.concatenate([shards[i] for i in ids])))
    return out


def make_client_datasets(dataset: Dataset, parts: list[np.ndarray]) -> list[Subset]:
    """Wrap per-client index sets as dataset views."""
    return [Subset(dataset, idx) for idx in parts]


def partition_label_histogram(
    labels: np.ndarray, parts: list[np.ndarray], num_classes: int | None = None
) -> np.ndarray:
    """Per-client label histograms, shape ``(num_clients, num_classes)``."""
    labels = np.asarray(labels)
    if num_classes is None:
        num_classes = int(labels.max()) + 1
    return np.stack([np.bincount(labels[idx], minlength=num_classes) for idx in parts])
