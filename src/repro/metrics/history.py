"""Training histories: the (round, latency, loss, accuracy) series behind
both paper figures.

Fig. 2(a) plots accuracy against training rounds; Fig. 2(b) plots accuracy
against cumulative simulated latency.  :class:`TrainingHistory` records
both axes for every evaluation point plus the convergence queries
(`rounds_to_accuracy`, `latency_to_accuracy`) used in the paper's claims
("500% improvement in convergence speed", "reduces the delay by about
31.45%").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HistoryPoint", "TrainingHistory"]


@dataclass(frozen=True)
class HistoryPoint:
    """One evaluation snapshot during training."""

    round_index: int
    latency_s: float
    train_loss: float
    test_accuracy: float


@dataclass
class TrainingHistory:
    """Chronological evaluation snapshots for one scheme run."""

    scheme: str
    points: list[HistoryPoint] = field(default_factory=list)

    def add(
        self, round_index: int, latency_s: float, train_loss: float, test_accuracy: float
    ) -> None:
        """Append a snapshot (rounds and latency must be non-decreasing)."""
        if self.points:
            last = self.points[-1]
            if round_index < last.round_index:
                raise ValueError(
                    f"round index went backwards: {round_index} < {last.round_index}"
                )
            if latency_s < last.latency_s - 1e-9:
                raise ValueError(
                    f"latency went backwards: {latency_s} < {last.latency_s}"
                )
        self.points.append(HistoryPoint(round_index, latency_s, train_loss, test_accuracy))

    def __len__(self) -> int:
        return len(self.points)

    # ------------------------------------------------------------------
    # series accessors
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> np.ndarray:
        return np.array([p.round_index for p in self.points])

    @property
    def latencies(self) -> np.ndarray:
        return np.array([p.latency_s for p in self.points])

    @property
    def accuracies(self) -> np.ndarray:
        return np.array([p.test_accuracy for p in self.points])

    @property
    def losses(self) -> np.ndarray:
        return np.array([p.train_loss for p in self.points])

    @property
    def final_accuracy(self) -> float:
        if not self.points:
            raise ValueError("history is empty")
        return self.points[-1].test_accuracy

    @property
    def best_accuracy(self) -> float:
        if not self.points:
            raise ValueError("history is empty")
        return float(self.accuracies.max())

    @property
    def total_latency_s(self) -> float:
        if not self.points:
            return 0.0
        return self.points[-1].latency_s

    # ------------------------------------------------------------------
    # convergence queries
    # ------------------------------------------------------------------
    def rounds_to_accuracy(self, target: float) -> int | None:
        """First round at which test accuracy reaches ``target`` (None if never)."""
        for p in self.points:
            if p.test_accuracy >= target:
                return p.round_index
        return None

    def latency_to_accuracy(self, target: float) -> float | None:
        """Cumulative latency at which accuracy first reaches ``target``."""
        for p in self.points:
            if p.test_accuracy >= target:
                return p.latency_s
        return None

    def smoothed_accuracies(self, window: int = 3) -> np.ndarray:
        """Trailing moving average of the accuracy series."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        acc = self.accuracies
        if len(acc) == 0:
            return acc
        out = np.empty_like(acc)
        for i in range(len(acc)):
            out[i] = acc[max(0, i - window + 1) : i + 1].mean()
        return out

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def to_rows(self) -> list[dict[str, float]]:
        """Plain-dict rows (for printing / CSV-ish dumps)."""
        return [
            {
                "scheme": self.scheme,
                "round": p.round_index,
                "latency_s": p.latency_s,
                "train_loss": p.train_loss,
                "test_accuracy": p.test_accuracy,
            }
            for p in self.points
        ]

    def summary(self) -> str:
        """One-line run summary."""
        if not self.points:
            return f"{self.scheme}: (empty)"
        return (
            f"{self.scheme}: {len(self.points)} evals, "
            f"final acc {self.final_accuracy:.3f}, best {self.best_accuracy:.3f}, "
            f"total latency {self.total_latency_s:.1f}s"
        )
