"""``repro.metrics`` — histories, evaluation, and comparison reports."""

from repro.metrics.evaluate import evaluate_model, evaluate_split, predict_labels
from repro.metrics.history import HistoryPoint, TrainingHistory
from repro.metrics.multiseed import (
    SeedSummary,
    aggregate_metric,
    mean_curve,
    run_multiseed,
)
from repro.metrics.report import (
    accuracy_vs_latency_table,
    accuracy_vs_rounds_table,
    convergence_speedup,
    latency_reduction,
)

__all__ = [
    "HistoryPoint",
    "TrainingHistory",
    "evaluate_model",
    "evaluate_split",
    "predict_labels",
    "accuracy_vs_rounds_table",
    "accuracy_vs_latency_table",
    "convergence_speedup",
    "latency_reduction",
    "SeedSummary",
    "aggregate_metric",
    "run_multiseed",
    "mean_curve",
]
