"""Model evaluation helpers (loss/accuracy over a dataset, no-grad)."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data.dataset import DataLoader, Dataset
from repro.nn.tensor import Tensor, no_grad

__all__ = ["evaluate_model", "evaluate_split", "predict_labels"]


def evaluate_model(
    model: nn.Module,
    dataset: Dataset,
    batch_size: int = 256,
    loss_fn: object | None = None,
) -> tuple[float, float]:
    """Return ``(mean_loss, accuracy)`` of ``model`` over ``dataset``.

    Runs in eval mode under ``no_grad`` and restores the previous mode.
    """
    loss_fn = loss_fn or nn.CrossEntropyLoss(reduction="sum")
    was_training = model.training
    model.eval()
    total_loss = 0.0
    correct = 0
    count = 0
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        for xb, yb in loader:
            logits = model(Tensor(xb))
            total_loss += float(loss_fn(logits, yb).item())
            correct += int((logits.data.argmax(axis=1) == yb).sum())
            count += len(yb)
    if was_training:
        model.train()
    if count == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    return total_loss / count, correct / count


def evaluate_split(
    split: "nn.SplitModel",
    dataset: Dataset,
    batch_size: int = 256,
) -> tuple[float, float]:
    """Evaluate a split model end-to-end (client half → server half)."""
    loss_fn = nn.CrossEntropyLoss(reduction="sum")
    split.eval()
    total_loss = 0.0
    correct = 0
    count = 0
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        for xb, yb in loader:
            logits = split.full_forward(xb)
            total_loss += float(loss_fn(logits, yb).item())
            correct += int((logits.data.argmax(axis=1) == yb).sum())
            count += len(yb)
    split.train()
    if count == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    return total_loss / count, correct / count


def predict_labels(model: nn.Module, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Argmax predictions for a raw image array."""
    was_training = model.training
    model.eval()
    preds = []
    with no_grad():
        for start in range(0, len(images), batch_size):
            logits = model(Tensor(images[start : start + batch_size]))
            preds.append(logits.data.argmax(axis=1))
    if was_training:
        model.train()
    return np.concatenate(preds) if preds else np.zeros(0, dtype=np.int64)
