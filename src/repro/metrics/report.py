"""Cross-scheme comparison reports matching the paper's claims.

The two headline numbers in §III are computed here:

* ``convergence_speedup(gsfl, fl, target)`` — the "nearly 500% improvement
  in convergence speed" of GSFL over FL (ratio of rounds-to-target);
* ``latency_reduction(gsfl, sl, target)`` — the "about 31.45%" delay
  reduction of GSFL vs vanilla SL (relative latency-to-target).
"""

from __future__ import annotations

from repro.metrics.history import TrainingHistory

__all__ = [
    "accuracy_vs_rounds_table",
    "accuracy_vs_latency_table",
    "convergence_speedup",
    "latency_reduction",
]


def accuracy_vs_rounds_table(histories: list[TrainingHistory]) -> str:
    """Render the Fig 2(a) series as an aligned text table."""
    header = f"{'round':>7} " + " ".join(f"{h.scheme:>10}" for h in histories)
    rounds = sorted({int(r) for h in histories for r in h.rounds})
    lines = [header]
    for r in rounds:
        cells = []
        for h in histories:
            match = [p.test_accuracy for p in h.points if p.round_index == r]
            cells.append(f"{match[0] * 100:10.2f}" if match else f"{'-':>10}")
        lines.append(f"{r:>7} " + " ".join(cells))
    return "\n".join(lines)


def accuracy_vs_latency_table(histories: list[TrainingHistory]) -> str:
    """Render the Fig 2(b) series (latency, accuracy) per scheme."""
    lines = []
    for h in histories:
        lines.append(f"--- {h.scheme} ---")
        lines.append(f"{'latency_s':>12} {'accuracy_%':>11}")
        for p in h.points:
            lines.append(f"{p.latency_s:>12.2f} {p.test_accuracy * 100:>11.2f}")
    return "\n".join(lines)


def convergence_speedup(
    fast: TrainingHistory, slow: TrainingHistory, target_accuracy: float
) -> float | None:
    """Ratio of rounds-to-target, slow/fast (≥1 means ``fast`` wins).

    Returns None when either scheme never reaches the target.
    """
    fast_rounds = fast.rounds_to_accuracy(target_accuracy)
    slow_rounds = slow.rounds_to_accuracy(target_accuracy)
    if fast_rounds is None or slow_rounds is None or fast_rounds == 0:
        return None
    return slow_rounds / fast_rounds


def latency_reduction(
    fast: TrainingHistory, slow: TrainingHistory, target_accuracy: float
) -> float | None:
    """Relative delay saving of ``fast`` vs ``slow`` to reach the target.

    ``(slow_latency - fast_latency) / slow_latency`` in [0, 1); the paper
    reports 0.3145 for GSFL vs SL.  None when either never reaches target.
    """
    fast_latency = fast.latency_to_accuracy(target_accuracy)
    slow_latency = slow.latency_to_accuracy(target_accuracy)
    if fast_latency is None or slow_latency is None or slow_latency == 0:
        return None
    return (slow_latency - fast_latency) / slow_latency
