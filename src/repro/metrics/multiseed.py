"""Multi-seed experiment aggregation.

Single runs lie; the paper's figures (like most) are single-seed.  This
module runs the same experiment across seeds and reports mean ± spread
for the headline quantities, with a Student-t confidence interval —
cheap experimental rigor for any claim in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats

from repro.exec import Executor
from repro.metrics.history import TrainingHistory

__all__ = ["SeedSummary", "aggregate_metric", "run_multiseed", "mean_curve"]


@dataclass(frozen=True)
class SeedSummary:
    """Mean/spread summary of one scalar metric across seeds."""

    metric: str
    values: tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def num_seeds(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        return (
            f"{self.metric}: {self.mean:.4f} ± {self.std:.4f} "
            f"(95% CI [{self.ci_low:.4f}, {self.ci_high:.4f}], n={self.num_seeds})"
        )


def aggregate_metric(
    metric: str, values: list[float], confidence: float = 0.95
) -> SeedSummary:
    """Summarize per-seed scalar values with a t-interval.

    Degenerate cases (n=1 or zero variance) collapse the interval to the
    mean.
    """
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=np.float64)
    if arr.size == 0:
        raise ValueError(f"no finite values for metric {metric!r}")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    if arr.size > 1 and std > 0:
        sem = std / np.sqrt(arr.size)
        t = stats.t.ppf(0.5 + confidence / 2, df=arr.size - 1)
        lo, hi = mean - t * sem, mean + t * sem
    else:
        lo = hi = mean
    return SeedSummary(
        metric=metric,
        values=tuple(float(v) for v in arr),
        mean=mean,
        std=std,
        ci_low=float(lo),
        ci_high=float(hi),
    )


def run_multiseed(
    experiment: Callable[[int], TrainingHistory],
    seeds: list[int],
    target_accuracy: float | None = None,
    executor: Executor | None = None,
) -> dict[str, SeedSummary]:
    """Run ``experiment(seed)`` per seed and summarize headline metrics.

    Always reports ``final_accuracy``, ``best_accuracy`` and
    ``total_latency_s``; adds ``rounds_to_target`` / ``latency_to_target``
    when ``target_accuracy`` is given (seeds that never reach the target
    are dropped from those two summaries).

    ``executor`` fans the seeds out as one task each — seeds are fully
    independent runs, the canonical embarrassingly parallel workload.
    The process backend requires a picklable ``experiment`` callable.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if executor is None:
        histories = [experiment(seed) for seed in seeds]
    else:
        histories = executor.map_groups(experiment, seeds)

    out: dict[str, SeedSummary] = {
        "final_accuracy": aggregate_metric(
            "final_accuracy", [h.final_accuracy for h in histories]
        ),
        "best_accuracy": aggregate_metric(
            "best_accuracy", [h.best_accuracy for h in histories]
        ),
        "total_latency_s": aggregate_metric(
            "total_latency_s", [h.total_latency_s for h in histories]
        ),
    }
    if target_accuracy is not None:
        rounds = [h.rounds_to_accuracy(target_accuracy) for h in histories]
        rounds = [float(r) for r in rounds if r is not None]
        if rounds:
            out["rounds_to_target"] = aggregate_metric("rounds_to_target", rounds)
        latencies = [h.latency_to_accuracy(target_accuracy) for h in histories]
        latencies = [float(l) for l in latencies if l is not None]
        if latencies:
            out["latency_to_target"] = aggregate_metric("latency_to_target", latencies)
    return out


def mean_curve(
    histories: list[TrainingHistory],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pointwise mean ± std accuracy curve across same-schedule runs.

    All histories must share the same evaluation rounds.
    """
    if not histories:
        raise ValueError("need at least one history")
    rounds = histories[0].rounds
    for h in histories[1:]:
        if not np.array_equal(h.rounds, rounds):
            raise ValueError("histories have mismatched evaluation schedules")
    acc = np.stack([h.accuracies for h in histories])
    return rounds, acc.mean(axis=0), acc.std(axis=0)
