"""repro — reproduction of "Split Federated Learning: Speed up Model
Training in Resource-Limited Wireless Networks" (GSFL, ICDCS 2023).

Subpackages
-----------
``repro.nn``
    From-scratch numpy deep-learning framework (autograd, CNN layers,
    optimizers, model splitting, profiling).
``repro.data``
    Synthetic GTSRB-like dataset, loaders, federated partitioning.
``repro.wireless``
    Topology, channel (path loss / fading / Shannon rate), devices,
    bandwidth allocation.
``repro.sim``
    Deterministic discrete-event simulation kernel + latency traces.
``repro.schemes``
    CL / FL / SL / SplitFed baselines.
``repro.core``
    GSFL and its design knobs (grouping, aggregation, cut-layer
    selection, inter-group resource allocation).
``repro.metrics``
    Histories, evaluation, paper-claim reports.
``repro.experiments``
    Scenario presets and the Fig 2(a)/2(b) regeneration harnesses.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
