"""Regeneration harnesses for the paper's figures.

* :func:`run_fig2a` — accuracy vs training rounds for CL / SL / GSFL / FL
  (paper Fig 2(a)); the headline check is the scheme ordering and the
  GSFL-over-FL convergence-speed factor (paper: "nearly 500%").
* :func:`run_fig2b` — accuracy vs cumulative latency for GSFL vs SL
  (paper Fig 2(b)); headline check is the relative delay reduction at a
  target accuracy (paper: "about 31.45%").

Both return the histories plus a small result record used by the
benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec import Executor
from repro.experiments.runner import run_schemes
from repro.experiments.scenario import ExperimentScenario
from repro.metrics.history import TrainingHistory
from repro.metrics.report import (
    accuracy_vs_latency_table,
    accuracy_vs_rounds_table,
    convergence_speedup,
    latency_reduction,
)

__all__ = ["Fig2aResult", "Fig2bResult", "run_fig2a", "run_fig2b"]


@dataclass
class Fig2aResult:
    """Fig 2(a) reproduction output."""

    histories: dict[str, TrainingHistory]
    target_accuracy: float
    gsfl_over_fl_speedup: float | None
    table: str

    def scheme_final_accuracy(self, name: str) -> float:
        return self.histories[name].final_accuracy


@dataclass
class Fig2bResult:
    """Fig 2(b) reproduction output."""

    histories: dict[str, TrainingHistory]
    target_accuracy: float
    delay_reduction: float | None
    table: str


def run_fig2a(
    scenario: ExperimentScenario,
    num_rounds: int,
    target_accuracy: float = 0.6,
    schemes: tuple[str, ...] = ("CL", "SL", "GSFL", "FL"),
    verbose: bool = False,
    executor: Executor | None = None,
) -> Fig2aResult:
    """Reproduce Fig 2(a): accuracy vs rounds across the four schemes.

    Runs without the wireless pricer (accuracy axis only) for speed when
    the scenario was declared with ``wireless=None``; otherwise latency is
    tracked too (harmless).
    """
    built = scenario.build()
    histories = run_schemes(
        built, list(schemes), num_rounds, verbose=verbose, executor=executor
    )
    speedup = None
    if "GSFL" in histories and "FL" in histories:
        speedup = convergence_speedup(
            histories["GSFL"], histories["FL"], target_accuracy
        )
    return Fig2aResult(
        histories=histories,
        target_accuracy=target_accuracy,
        gsfl_over_fl_speedup=speedup,
        table=accuracy_vs_rounds_table(list(histories.values())),
    )


def run_fig2b(
    scenario: ExperimentScenario,
    num_rounds: int,
    target_accuracy: float = 0.6,
    verbose: bool = False,
    executor: Executor | None = None,
) -> Fig2bResult:
    """Reproduce Fig 2(b): accuracy vs latency, GSFL vs SL.

    Requires a scenario with a wireless system (latency axis).
    """
    if scenario.wireless is None:
        raise ValueError("Fig 2(b) needs a wireless system; scenario has none")
    built = scenario.build()
    histories = run_schemes(
        built, ["SL", "GSFL"], num_rounds, verbose=verbose, executor=executor
    )
    reduction = latency_reduction(histories["GSFL"], histories["SL"], target_accuracy)
    return Fig2bResult(
        histories=histories,
        target_accuracy=target_accuracy,
        delay_reduction=reduction,
        table=accuracy_vs_latency_table(list(histories.values())),
    )
