"""Scheme construction and multi-scheme experiment execution."""

from __future__ import annotations

from repro.core.gsfl import GroupSplitFederatedLearning
from repro.exec import Executor
from repro.experiments.scenario import BuiltScenario
from repro.metrics.history import TrainingHistory
from repro.schemes.base import Scheme
from repro.schemes.centralized import CentralizedLearning
from repro.schemes.federated import FederatedLearning
from repro.schemes.parallel_split import ParallelSplitLearning
from repro.schemes.split import SplitLearning
from repro.schemes.splitfed import SplitFedLearning

__all__ = ["SCHEME_REGISTRY", "make_scheme", "run_schemes"]

SCHEME_REGISTRY = {
    "CL": CentralizedLearning,
    "FL": FederatedLearning,
    "SL": SplitLearning,
    "SplitFed": SplitFedLearning,
    "PSL": ParallelSplitLearning,
    "GSFL": GroupSplitFederatedLearning,
}


def make_scheme(name: str, built: BuiltScenario, **overrides: object) -> Scheme:
    """Construct a scheme over a built scenario.

    Every scheme gets a fresh model initialized from the scenario's fixed
    seed, so cross-scheme comparisons start from identical weights.
    Split-based schemes receive the scenario's cut layer; GSFL receives
    the group count.  ``overrides`` pass extra constructor arguments
    (e.g. ``groups=...`` or ``bandwidth_shares=...``).
    """
    if name not in SCHEME_REGISTRY:
        raise ValueError(f"unknown scheme {name!r}; available: {sorted(SCHEME_REGISTRY)}")
    cls = SCHEME_REGISTRY[name]
    kwargs: dict = {"model": built.scenario.make_model(), **built.scheme_kwargs()}
    if name in ("SL", "SplitFed", "PSL", "GSFL"):
        kwargs["cut_layer"] = built.scenario.resolved_cut_layer()
    if name == "GSFL":
        kwargs["num_groups"] = built.scenario.num_groups
        kwargs["grouping"] = built.scenario.grouping
    kwargs.update(overrides)
    return cls(**kwargs)


def run_schemes(
    built: BuiltScenario,
    scheme_names: list[str],
    num_rounds: int,
    verbose: bool = False,
    executor: Executor | None = None,
    **per_scheme_overrides: dict,
) -> dict[str, TrainingHistory]:
    """Run several schemes on one scenario; returns name → history.

    ``per_scheme_overrides`` maps a scheme name to extra constructor
    kwargs, e.g. ``GSFL={"grouping": "random"}``.  ``executor`` selects
    the round-execution backend for schemes with parallel pipelines.
    """
    histories: dict[str, TrainingHistory] = {}
    for name in scheme_names:
        overrides = per_scheme_overrides.get(name, {})
        if executor is not None:
            overrides = {"executor": executor, **overrides}
        scheme = make_scheme(name, built, **overrides)
        history = scheme.run(num_rounds)
        histories[name] = history
        if verbose:
            print(history.summary())
    return histories
