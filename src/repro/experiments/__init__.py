"""``repro.experiments`` — scenario presets, the scenario catalog,
population dynamics and figure-regeneration harnesses."""

from repro.experiments.availability import (
    AVAILABILITY_KINDS,
    AvailabilityProcess,
    AvailabilitySpec,
    parse_availability,
)
from repro.experiments.catalog import (
    SCENARIO_REGISTRY,
    ScenarioEntry,
    describe_scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.experiments.dynamics import ClientDynamics, DynamicsConfig, RoundConditions
from repro.experiments.figures import Fig2aResult, Fig2bResult, run_fig2a, run_fig2b
from repro.experiments.runner import SCHEME_REGISTRY, make_scheme, run_schemes
from repro.experiments.scenario import (
    BuiltScenario,
    ExperimentScenario,
    fast_scenario,
    paper_scenario,
)
from repro.experiments.sweep import ParameterSweep, SweepAxis, SweepRow

__all__ = [
    "ExperimentScenario",
    "BuiltScenario",
    "DynamicsConfig",
    "ClientDynamics",
    "RoundConditions",
    "AVAILABILITY_KINDS",
    "AvailabilityProcess",
    "AvailabilitySpec",
    "parse_availability",
    "ScenarioEntry",
    "SCENARIO_REGISTRY",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "describe_scenario",
    "paper_scenario",
    "fast_scenario",
    "SCHEME_REGISTRY",
    "make_scheme",
    "run_schemes",
    "run_fig2a",
    "run_fig2b",
    "Fig2aResult",
    "Fig2bResult",
    "ParameterSweep",
    "SweepAxis",
    "SweepRow",
]
