"""``repro.experiments`` — scenario presets, population dynamics and
figure-regeneration harnesses."""

from repro.experiments.dynamics import ClientDynamics, DynamicsConfig, RoundConditions
from repro.experiments.figures import Fig2aResult, Fig2bResult, run_fig2a, run_fig2b
from repro.experiments.runner import SCHEME_REGISTRY, make_scheme, run_schemes
from repro.experiments.scenario import (
    BuiltScenario,
    ExperimentScenario,
    fast_scenario,
    paper_scenario,
)
from repro.experiments.sweep import ParameterSweep, SweepAxis, SweepRow

__all__ = [
    "ExperimentScenario",
    "BuiltScenario",
    "DynamicsConfig",
    "ClientDynamics",
    "RoundConditions",
    "paper_scenario",
    "fast_scenario",
    "SCHEME_REGISTRY",
    "make_scheme",
    "run_schemes",
    "run_fig2a",
    "run_fig2b",
    "Fig2aResult",
    "Fig2bResult",
    "ParameterSweep",
    "SweepAxis",
    "SweepRow",
]
