"""Client-population dynamics: churn, partial participation, stragglers.

The paper evaluates a static fleet; real edge deployments are anything
but.  This layer injects three orthogonal disturbances into any scheme,
resolved against the runtime's *absolute* clock so a long round genuinely
sees more churn than a short one:

* **availability churn** — each client alternates between up and down
  windows, driven by a pluggable
  :class:`~repro.experiments.availability.AvailabilityProcess` (the
  default is the historical per-client exponential on/off renewal
  process; diurnal waves, correlated cell outages, handoff gaps and
  trace replay are selected by ``DynamicsConfig.availability``); clients
  that are down when a round starts sit the round out;
* **partial participation** — of the available clients, only a sampled
  fraction joins each round (the classic cross-device FL setting);
* **straggler injection** — participating clients are slowed by a
  multiplicative factor on their *compute* demands with some
  probability.  Stragglers change timing only — the trained weights are
  bitwise unaffected, which keeps the learning/timing decoupling honest
  and testable.

The **failure model** selects the granularity at which churn bites:

* ``"none"`` — clients never fail: churn windows are ignored entirely
  (participation sampling and stragglers still apply);
* ``"round"`` — the default, and the historical behaviour: a client
  inside a down-window when a round (or async unit-round) starts sits
  that round out, but work in flight is never interrupted;
* ``"mid-activity"`` — churn preempts *running* activities: the instant
  a transmitting or computing client's up-window closes, its in-flight
  flow/job is aborted by the runtime and the scheme's protocol-level
  recovery (retry after the client recovers, re-route the relay chain,
  or surrender the round) kicks in, bounded by ``max_retries``.

All draws flow through spawned per-purpose generators, so a scenario's
dynamics replay identically for a fixed seed regardless of scheme.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.availability import (
    make_availability_process,
    parse_availability,
)
from repro.utils.validation import check_in_choices, check_non_negative, check_positive

__all__ = ["FAILURE_MODELS", "DynamicsConfig", "RoundConditions", "ClientDynamics"]

#: supported failure models (granularity of churn resolution)
FAILURE_MODELS = ("none", "round", "mid-activity")


@dataclass
class DynamicsConfig:
    """Declarative description of client-population dynamics.

    Defaults are the identity: everyone always available, everyone
    participates, nobody straggles.  ``availability`` selects the churn
    process shape (see :mod:`repro.experiments.availability`):
    ``"exponential"`` (default), ``"diurnal[:PERIOD[:AMP]]"``,
    ``"cells[:K]"``, ``"handoff"``, or ``"trace:<trace.jsonl>"``.
    """

    participation: float = 1.0
    churn_uptime_s: float | None = None
    churn_downtime_s: float | None = None
    straggler_rate: float = 0.0
    straggler_slowdown: float = 4.0
    min_participants: int = 1
    failure_model: str = "round"
    max_retries: int = 2
    seed: int = 0
    availability: str = "exponential"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "DynamicsConfig":
        """Re-check every invariant; returns self.

        Called from ``__post_init__`` *and* again by
        :class:`ClientDynamics`: the dataclass is mutable, and a zero (or
        negative) churn window smuggled in after construction would make
        ``rng.exponential(0)`` emit zero-length windows — the availability
        trace then never advances past ``t`` and
        :meth:`ClientDynamics.available_at` loops forever.  Degenerate
        windows must fail loudly, wherever they come from.
        """
        if not 0.0 < self.participation <= 1.0:
            raise ValueError(
                f"participation must be in (0, 1], got {self.participation}"
            )
        if (self.churn_uptime_s is None) != (self.churn_downtime_s is None):
            raise ValueError("churn uptime and downtime must be given together")
        if self.churn_uptime_s is not None:
            check_positive("churn_uptime_s", self.churn_uptime_s)
            check_positive("churn_downtime_s", self.churn_downtime_s)
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise ValueError(
                f"straggler_rate must be in [0, 1], got {self.straggler_rate}"
            )
        if self.straggler_slowdown < 1.0:
            raise ValueError(
                f"straggler_slowdown must be >= 1, got {self.straggler_slowdown}"
            )
        check_non_negative("min_participants", self.min_participants)
        check_in_choices("failure_model", self.failure_model, FAILURE_MODELS)
        check_non_negative("max_retries", self.max_retries)
        spec = parse_availability(self.availability)
        if spec.needs_windows and self.churn_uptime_s is None:
            raise ValueError(
                f"availability {self.availability!r} requires churn windows "
                f"(churn_uptime_s / churn_downtime_s)"
            )
        return self

    @property
    def has_churn(self) -> bool:
        """Whether churn windows shape availability at all.

        ``failure_model="none"`` switches the churn trace off wholesale —
        clients are treated as always up — so the one knob cleanly covers
        every query path (round membership, recovery scans, preemption
        deadlines).  A trace-replay spec carries its own toggle streams
        and needs no windows.
        """
        if self.failure_model == "none":
            return False
        if self.availability.startswith("trace:"):
            return True
        return self.churn_uptime_s is not None


@dataclass(frozen=True)
class RoundConditions:
    """One round's resolved disturbances."""

    round_index: int
    available: tuple[int, ...]
    participants: tuple[int, ...]
    slowdowns: dict[int, float] = field(default_factory=dict)
    #: absolute simulated time the round's conditions were resolved at
    now_s: float = 0.0


class ClientDynamics:
    """Stateful per-run realization of a :class:`DynamicsConfig`.

    :meth:`begin_round` must be called per round, in order — the base
    scheme loop owns that contract (including the one re-resolution it
    performs after waiting out an all-down churn window) — so the random
    streams are consumed deterministically.  Every resolution is appended
    to :attr:`round_log` (re-resolutions included) for diagnostics and
    trace export.
    """

    def __init__(self, config: DynamicsConfig, num_clients: int) -> None:
        check_positive("num_clients", num_clients)
        self.config = config.validate()
        self.num_clients = num_clients
        root = np.random.SeedSequence([config.seed, 0xD15C])
        avail_seed, part_seed, strag_seed = root.spawn(3)
        # The availability process owns the per-client toggle streams
        # (None = identity: always up).  It spawns its generators off the
        # availability seed branch, so the default exponential process
        # consumes randomness exactly as the historical inline loop did.
        self._process = make_availability_process(
            config.availability,
            num_clients,
            avail_seed,
            config.churn_uptime_s,
            config.churn_downtime_s,
        )
        self._part_rng = np.random.default_rng(part_seed)
        self._strag_rng = np.random.default_rng(strag_seed)
        self.round_log: list[RoundConditions] = []

    # ------------------------------------------------------------------
    # availability trace
    # ------------------------------------------------------------------
    def _covered_toggles(self, client: int, t: float) -> list[float]:
        """The client's toggle stream with coverage ensured past ``t``.

        A finite (trace-replay) process may return a stream ending at or
        before ``t`` — the client then keeps its final state, and callers
        must bounds-check their ``bisect`` index.
        """
        return self._process.toggles(client, t)

    def available_at(self, client: int, t: float) -> bool:
        """Whether ``client`` is up at absolute time ``t``."""
        if not self.config.has_churn:
            return True
        toggles = self._covered_toggles(client, t)
        return bisect_right(toggles, t) % 2 == 0

    def availability_windows(self, client: int, until: float) -> list[tuple[float, float]]:
        """Up-windows of ``client`` clipped to ``[0, until]`` (diagnostics).

        Windows are half-open ``[start, end)``, matching the
        ``bisect_right`` semantics of :meth:`available_at` (a toggle *at*
        ``t`` counts as flipped).  A recovery toggle landing exactly at
        ``until`` therefore contributes a zero-length ``(until, until)``
        window rather than being dropped, so ``available_at(c, until)``
        is true iff ``until`` lies in (or starts) some reported window.
        """
        if not self.config.has_churn:
            return [(0.0, until)]
        kept = [t for t in self._covered_toggles(client, until) if t <= until]
        edges = [0.0] + kept
        if len(kept) % 2 == 0:
            # Even toggle count = up at `until`: close the open window.
            edges.append(until)
        return [
            (edges[i], edges[i + 1]) for i in range(0, len(edges) - 1, 2)
        ]

    def availability_toggles(self, client: int, horizon: float) -> list[float]:
        """Toggle stream of ``client`` clipped to ``[0, horizon]``.

        This is the trace-export form: replaying the clipped stream via
        ``availability="trace:..."`` reproduces :meth:`available_at`
        exactly for every ``t <= horizon`` (the clip keeps toggles
        landing exactly on the horizon, mirroring ``bisect_right``).
        """
        if not self.config.has_churn:
            return []
        return [t for t in self._covered_toggles(client, horizon) if t <= horizon]

    def next_failure_s(self, client: int, t: float) -> float | None:
        """Absolute instant the current up-window of ``client`` closes.

        ``None`` without churn, when the client is already down at ``t``
        (there is no up-window to close), or when a finite replay trace
        records no further toggle (the client stays up for the rest of
        the run).  This is the preemption deadline the mid-activity
        failure model races in-flight activities against.
        """
        if not self.config.has_churn or not self.available_at(client, t):
            return None
        toggles = self._covered_toggles(client, t)
        idx = bisect_right(toggles, t)
        if idx >= len(toggles):
            return None
        return toggles[idx]

    def next_recovery_s(self, t: float, clients: "list[int] | None" = None) -> float | None:
        """Earliest absolute time after ``t`` at which a currently-down
        client comes back up (``None`` without churn, or if nobody is
        down).  The scheme driver uses this to wait out an all-down
        window instead of freezing the clock on a zero-cost round;
        ``clients`` restricts the scan to one unit's members (async
        pipelines wait only for their own group).  A client whose finite
        replay trace ends in a down state never recovers and contributes
        no candidate."""
        if not self.config.has_churn:
            return None
        candidates = []
        for c in range(self.num_clients) if clients is None else clients:
            if not self.available_at(c, t):
                toggles = self._covered_toggles(c, t)
                idx = bisect_right(toggles, t)
                if idx < len(toggles):
                    candidates.append(toggles[idx])
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------
    # per-round resolution
    # ------------------------------------------------------------------
    def begin_round(self, round_index: int, now_s: float) -> RoundConditions:
        """Resolve availability, participation and stragglers for a round."""
        cfg = self.config
        available = tuple(
            c for c in range(self.num_clients) if self.available_at(c, now_s)
        )
        if cfg.participation < 1.0 and available:
            # Round half away from zero: floor(p*n + 0.5).  Plain round()
            # banker's-rounds half-cases to even (0.5 * 5 available -> 2),
            # making the sampled fraction dip inconsistently with fleet
            # size; half-cases now always round up.
            k = int(math.floor(cfg.participation * len(available) + 0.5))
            k = min(len(available), max(k, min(cfg.min_participants, len(available)), 1))
            picked = self._part_rng.choice(len(available), size=k, replace=False)
            participants = tuple(sorted(available[i] for i in picked))
        else:
            participants = available
        slowdowns: dict[int, float] = {}
        if cfg.straggler_rate > 0.0:
            for c in participants:
                if self._strag_rng.random() < cfg.straggler_rate:
                    slowdowns[c] = cfg.straggler_slowdown
        conditions = RoundConditions(
            round_index=round_index,
            available=available,
            participants=participants,
            slowdowns=slowdowns,
            now_s=now_s,
        )
        self.round_log.append(conditions)
        return conditions

    def unit_round_conditions(
        self, members: "list[int]", now_s: float
    ) -> tuple[list[int], dict[int, float]]:
        """Resolve one *unit's* round under barrier-free aggregation.

        Async pipelines start rounds at different simulated times, so
        disturbances resolve per unit rather than per global round:
        availability is the churn trace at ``now_s``; participation
        becomes a per-member Bernoulli draw, topped up with uniform draws
        to the unit-scoped floor ``min(min_participants, |present|)`` (at
        least one, so a unit cannot stall on sampling alone and low
        participation is not biased toward the first member); stragglers
        draw as usual.  Draws consume the shared generators in DES event
        order — deterministic for a fixed seed.  The returned list always
        preserves the *caller's member order* (meaningful for GSFL relay
        chains), whether or not the top-up fired — downstream iteration
        order must not depend on which sampling path ran.
        """
        cfg = self.config
        present = [c for c in members if self.available_at(c, now_s)]
        if cfg.participation < 1.0 and present:
            floor = max(1, min(cfg.min_participants, len(present)))
            sampled = [
                c for c in present if self._part_rng.random() < cfg.participation
            ]
            if len(sampled) < floor:
                remaining = [c for c in present if c not in sampled]
                picked = self._part_rng.choice(
                    len(remaining), size=floor - len(sampled), replace=False
                )
                chosen = set(sampled).union(remaining[i] for i in picked)
                sampled = [c for c in present if c in chosen]
            present = sampled
        slowdowns: dict[int, float] = {}
        if cfg.straggler_rate > 0.0:
            for c in present:
                if self._strag_rng.random() < cfg.straggler_rate:
                    slowdowns[c] = cfg.straggler_slowdown
        return present, slowdowns
