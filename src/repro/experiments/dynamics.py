"""Client-population dynamics: churn, partial participation, stragglers.

The paper evaluates a static fleet; real edge deployments are anything
but.  This layer injects three orthogonal disturbances into any scheme,
resolved against the runtime's *absolute* clock so a long round genuinely
sees more churn than a short one:

* **availability churn** — each client alternates between up and down
  windows (exponential on/off renewal process, frozen per seed); clients
  that are down when a round starts sit the round out;
* **partial participation** — of the available clients, only a sampled
  fraction joins each round (the classic cross-device FL setting);
* **straggler injection** — participating clients are slowed by a
  multiplicative factor on their *compute* demands with some
  probability.  Stragglers change timing only — the trained weights are
  bitwise unaffected, which keeps the learning/timing decoupling honest
  and testable.

The **failure model** selects the granularity at which churn bites:

* ``"none"`` — clients never fail: churn windows are ignored entirely
  (participation sampling and stragglers still apply);
* ``"round"`` — the default, and the historical behaviour: a client
  inside a down-window when a round (or async unit-round) starts sits
  that round out, but work in flight is never interrupted;
* ``"mid-activity"`` — churn preempts *running* activities: the instant
  a transmitting or computing client's up-window closes, its in-flight
  flow/job is aborted by the runtime and the scheme's protocol-level
  recovery (retry after the client recovers, re-route the relay chain,
  or surrender the round) kicks in, bounded by ``max_retries``.

All draws flow through spawned per-purpose generators, so a scenario's
dynamics replay identically for a fixed seed regardless of scheme.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_in_choices, check_non_negative, check_positive

__all__ = ["FAILURE_MODELS", "DynamicsConfig", "RoundConditions", "ClientDynamics"]

#: supported failure models (granularity of churn resolution)
FAILURE_MODELS = ("none", "round", "mid-activity")


@dataclass
class DynamicsConfig:
    """Declarative description of client-population dynamics.

    Defaults are the identity: everyone always available, everyone
    participates, nobody straggles.
    """

    participation: float = 1.0
    churn_uptime_s: float | None = None
    churn_downtime_s: float | None = None
    straggler_rate: float = 0.0
    straggler_slowdown: float = 4.0
    min_participants: int = 1
    failure_model: str = "round"
    max_retries: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "DynamicsConfig":
        """Re-check every invariant; returns self.

        Called from ``__post_init__`` *and* again by
        :class:`ClientDynamics`: the dataclass is mutable, and a zero (or
        negative) churn window smuggled in after construction would make
        ``rng.exponential(0)`` emit zero-length windows — the availability
        trace then never advances past ``t`` and
        :meth:`ClientDynamics.available_at` loops forever.  Degenerate
        windows must fail loudly, wherever they come from.
        """
        if not 0.0 < self.participation <= 1.0:
            raise ValueError(
                f"participation must be in (0, 1], got {self.participation}"
            )
        if (self.churn_uptime_s is None) != (self.churn_downtime_s is None):
            raise ValueError("churn uptime and downtime must be given together")
        if self.churn_uptime_s is not None:
            check_positive("churn_uptime_s", self.churn_uptime_s)
            check_positive("churn_downtime_s", self.churn_downtime_s)
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise ValueError(
                f"straggler_rate must be in [0, 1], got {self.straggler_rate}"
            )
        if self.straggler_slowdown < 1.0:
            raise ValueError(
                f"straggler_slowdown must be >= 1, got {self.straggler_slowdown}"
            )
        check_non_negative("min_participants", self.min_participants)
        check_in_choices("failure_model", self.failure_model, FAILURE_MODELS)
        check_non_negative("max_retries", self.max_retries)
        return self

    @property
    def has_churn(self) -> bool:
        """Whether churn windows shape availability at all.

        ``failure_model="none"`` switches the churn trace off wholesale —
        clients are treated as always up — so the one knob cleanly covers
        every query path (round membership, recovery scans, preemption
        deadlines).
        """
        return self.churn_uptime_s is not None and self.failure_model != "none"


@dataclass(frozen=True)
class RoundConditions:
    """One round's resolved disturbances."""

    round_index: int
    available: tuple[int, ...]
    participants: tuple[int, ...]
    slowdowns: dict[int, float] = field(default_factory=dict)


class ClientDynamics:
    """Stateful per-run realization of a :class:`DynamicsConfig`.

    :meth:`begin_round` must be called per round, in order — the base
    scheme loop owns that contract (including the one re-resolution it
    performs after waiting out an all-down churn window) — so the random
    streams are consumed deterministically.
    """

    def __init__(self, config: DynamicsConfig, num_clients: int) -> None:
        check_positive("num_clients", num_clients)
        self.config = config.validate()
        self.num_clients = num_clients
        root = np.random.SeedSequence([config.seed, 0xD15C])
        avail_seed, part_seed, strag_seed = root.spawn(3)
        # One generator per client: lazy trace extension stays
        # deterministic no matter which client is queried first.
        self._avail_rngs = [
            np.random.default_rng(s) for s in avail_seed.spawn(num_clients)
        ]
        self._part_rng = np.random.default_rng(part_seed)
        self._strag_rng = np.random.default_rng(strag_seed)
        # Per-client sorted toggle times; state before the first toggle is
        # "up", flipping at every entry.
        self._toggles: list[list[float]] = [[] for _ in range(num_clients)]

    # ------------------------------------------------------------------
    # availability trace
    # ------------------------------------------------------------------
    def available_at(self, client: int, t: float) -> bool:
        """Whether ``client`` is up at absolute time ``t``."""
        if not self.config.has_churn:
            return True
        toggles = self._toggles[client]
        rng = self._avail_rngs[client]
        up, down = self.config.churn_uptime_s, self.config.churn_downtime_s
        while not toggles or toggles[-1] <= t:
            last = toggles[-1] if toggles else 0.0
            window = up if len(toggles) % 2 == 0 else down
            toggles.append(last + float(rng.exponential(window)))
        return bisect_right(toggles, t) % 2 == 0

    def availability_windows(self, client: int, until: float) -> list[tuple[float, float]]:
        """Up-windows of ``client`` clipped to ``[0, until]`` (diagnostics)."""
        self.available_at(client, until)  # ensure the trace covers `until`
        edges = [0.0] + [t for t in self._toggles[client] if t < until] + [until]
        return [
            (edges[i], edges[i + 1]) for i in range(0, len(edges) - 1, 2)
        ]

    def next_failure_s(self, client: int, t: float) -> float | None:
        """Absolute instant the current up-window of ``client`` closes.

        ``None`` without churn or when the client is already down at
        ``t`` (there is no up-window to close).  This is the preemption
        deadline the mid-activity failure model races in-flight
        activities against.
        """
        if not self.config.has_churn or not self.available_at(client, t):
            return None
        toggles = self._toggles[client]
        return toggles[bisect_right(toggles, t)]

    def next_recovery_s(self, t: float, clients: "list[int] | None" = None) -> float | None:
        """Earliest absolute time after ``t`` at which a currently-down
        client comes back up (``None`` without churn, or if nobody is
        down).  The scheme driver uses this to wait out an all-down
        window instead of freezing the clock on a zero-cost round;
        ``clients`` restricts the scan to one unit's members (async
        pipelines wait only for their own group)."""
        if not self.config.has_churn:
            return None
        candidates = []
        for c in range(self.num_clients) if clients is None else clients:
            if not self.available_at(c, t):
                toggles = self._toggles[c]
                candidates.append(toggles[bisect_right(toggles, t)])
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------
    # per-round resolution
    # ------------------------------------------------------------------
    def begin_round(self, round_index: int, now_s: float) -> RoundConditions:
        """Resolve availability, participation and stragglers for a round."""
        cfg = self.config
        available = tuple(
            c for c in range(self.num_clients) if self.available_at(c, now_s)
        )
        if cfg.participation < 1.0 and available:
            k = int(round(cfg.participation * len(available)))
            k = min(len(available), max(k, min(cfg.min_participants, len(available)), 1))
            picked = self._part_rng.choice(len(available), size=k, replace=False)
            participants = tuple(sorted(available[i] for i in picked))
        else:
            participants = available
        slowdowns: dict[int, float] = {}
        if cfg.straggler_rate > 0.0:
            for c in participants:
                if self._strag_rng.random() < cfg.straggler_rate:
                    slowdowns[c] = cfg.straggler_slowdown
        return RoundConditions(
            round_index=round_index,
            available=available,
            participants=participants,
            slowdowns=slowdowns,
        )

    def unit_round_conditions(
        self, members: "list[int]", now_s: float
    ) -> tuple[list[int], dict[int, float]]:
        """Resolve one *unit's* round under barrier-free aggregation.

        Async pipelines start rounds at different simulated times, so
        disturbances resolve per unit rather than per global round:
        availability is the churn trace at ``now_s``; participation
        becomes a per-member Bernoulli draw, topped up with uniform draws
        to the unit-scoped floor ``min(min_participants, |present|)`` (at
        least one, so a unit cannot stall on sampling alone and low
        participation is not biased toward the first member); stragglers
        draw as usual.  Draws consume the shared generators in DES event
        order — deterministic for a fixed seed.
        """
        cfg = self.config
        present = [c for c in members if self.available_at(c, now_s)]
        if cfg.participation < 1.0 and present:
            floor = max(1, min(cfg.min_participants, len(present)))
            sampled = [
                c for c in present if self._part_rng.random() < cfg.participation
            ]
            if len(sampled) < floor:
                remaining = [c for c in present if c not in sampled]
                picked = self._part_rng.choice(
                    len(remaining), size=floor - len(sampled), replace=False
                )
                sampled = sorted(sampled + [remaining[i] for i in picked])
            present = sampled
        slowdowns: dict[int, float] = {}
        if cfg.straggler_rate > 0.0:
            for c in present:
                if self._strag_rng.random() < cfg.straggler_rate:
                    slowdowns[c] = cfg.straggler_slowdown
        return present, slowdowns
