"""Parameter-sweep harness.

Grid sweeps over scenario knobs (group count, cut layer, quantization
bits, bandwidth, ...) with a uniform result-table interface — the
machinery behind the ablation studies, exposed so downstream users can
define their own sweeps in a few lines::

    sweep = ParameterSweep(base_scenario_factory=fast_scenario)
    rows = sweep.run(
        scheme="GSFL",
        num_rounds=2,
        axis=SweepAxis("num_groups", [1, 2, 3, 6]),
    )

Each row carries the varied value, final accuracy, total latency and the
full history for custom post-processing.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.exec import Executor
from repro.experiments.runner import make_scheme
from repro.experiments.scenario import ExperimentScenario
from repro.metrics.history import TrainingHistory

__all__ = ["SweepAxis", "SweepRow", "ParameterSweep"]


@dataclass(frozen=True)
class SweepAxis:
    """One swept knob: a scenario/scheme attribute and its values.

    ``target`` selects where the knob lives:

    * ``"scenario"`` — attribute of :class:`ExperimentScenario`
      (e.g. ``num_groups``, ``cut_layer``, ``partition``);
    * ``"scheme_config"`` — field of the nested
      :class:`~repro.schemes.base.SchemeConfig` (e.g. ``lr``,
      ``quantize_bits``, ``local_steps``);
    * ``"scheme_kwargs"`` — extra constructor kwargs of the scheme class
      (e.g. GSFL's ``failure_rate`` or ``grouping``).
    """

    name: str
    values: list[Any]
    target: str = "scenario"

    def __post_init__(self) -> None:
        if self.target not in ("scenario", "scheme_config", "scheme_kwargs"):
            raise ValueError(f"unknown sweep target {self.target!r}")
        if not self.values:
            raise ValueError("sweep axis needs at least one value")


@dataclass
class SweepRow:
    """Result of one sweep point."""

    value: Any
    final_accuracy: float
    best_accuracy: float
    total_latency_s: float
    history: TrainingHistory


@dataclass
class ParameterSweep:
    """Runs one scheme across an axis of scenario variations.

    ``base_scenario_factory`` is called once per sweep point so every
    point gets a fresh, independently seeded scenario (fading streams do
    not leak across points).
    """

    base_scenario_factory: Callable[[], ExperimentScenario]
    mutators: list[Callable[[ExperimentScenario], ExperimentScenario]] = field(
        default_factory=list
    )

    def _apply(self, scenario: ExperimentScenario, axis: SweepAxis, value: Any
               ) -> tuple[ExperimentScenario, dict[str, Any]]:
        extra_kwargs: dict[str, Any] = {}
        if axis.target == "scenario":
            if not hasattr(scenario, axis.name):
                raise AttributeError(f"scenario has no attribute {axis.name!r}")
            setattr(scenario, axis.name, value)
        elif axis.target == "scheme_config":
            scenario.scheme = replace(scenario.scheme, **{axis.name: value})
        else:
            extra_kwargs[axis.name] = value
        return scenario, extra_kwargs

    def _run_point(self, value: Any, scheme: str, num_rounds: int, axis: SweepAxis
                   ) -> SweepRow:
        """One sweep point: fresh scenario, fresh scheme, full run."""
        scenario = self.base_scenario_factory()
        for mutate in self.mutators:
            scenario = mutate(scenario)
        scenario, extra = self._apply(scenario, axis, value)
        built = scenario.build()
        instance = make_scheme(scheme, built, **extra)
        history = instance.run(num_rounds)
        return SweepRow(
            value=value,
            final_accuracy=history.final_accuracy,
            best_accuracy=history.best_accuracy,
            total_latency_s=history.total_latency_s,
            history=history,
        )

    def run(
        self,
        scheme: str,
        num_rounds: int,
        axis: SweepAxis,
        verbose: bool = False,
        executor: Executor | None = None,
    ) -> list[SweepRow]:
        """Execute the sweep; one fresh scenario + scheme run per value.

        ``executor`` fans the sweep points out as one task each (every
        point builds its own independently seeded scenario, so results
        are identical across backends).  The process backend additionally
        requires ``base_scenario_factory`` and ``mutators`` to be
        picklable (module-level functions, not lambdas).
        """
        point = functools.partial(
            self._run_point, scheme=scheme, num_rounds=num_rounds, axis=axis
        )

        def report(row: SweepRow) -> None:
            print(
                f"{axis.name}={row.value}: acc={row.final_accuracy:.3f}, "
                f"latency={row.total_latency_s:.3f}s"
            )

        if executor is None:
            rows = []
            for value in axis.values:
                row = point(value)
                if verbose:
                    report(row)  # stream progress as each point finishes
                rows.append(row)
        else:
            rows = executor.map_groups(point, axis.values)
            if verbose:
                for row in rows:
                    report(row)
        return rows

    @staticmethod
    def table(axis: SweepAxis, rows: list[SweepRow]) -> str:
        """Render sweep rows as an aligned text table."""
        lines = [f"{axis.name:>16} {'final_acc':>10} {'best_acc':>9} {'latency_s':>10}"]
        for row in rows:
            lines.append(
                f"{str(row.value):>16} {row.final_accuracy:>10.3f} "
                f"{row.best_accuracy:>9.3f} {row.total_latency_s:>10.3f}"
            )
        return "\n".join(lines)
