"""Experiment scenario: one bundle of dataset + model + network + scheme
hyper-parameters, buildable into everything a scheme run needs.

Two presets are provided:

* :func:`paper_scenario` — the paper's §III setting scaled to the
  synthetic substrate: 30 clients, 6 groups, 43-class GTSRB-like data,
  DeepThin-style CNN (the paper's reference [4]);
* :func:`fast_scenario` — a down-scaled variant (6 clients, 2 groups,
  10 classes, tiny CNN) for tests and quick demos.

Every scheme built from one scenario starts from bit-identical initial
weights (same model seed), matching how the paper compares schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import nn
from repro.data.dataset import Dataset, Subset
from repro.core.grouping import GROUPING_STRATEGIES
from repro.data.gtsrb import GtsrbConfig, SyntheticGTSRB
from repro.data.partition import (
    make_client_datasets,
    partition_dirichlet,
    partition_iid,
)
from repro.experiments.dynamics import ClientDynamics, DynamicsConfig
from repro.models.registry import build_model, default_cut_layer
from repro.schemes.base import SchemeConfig
from repro.sim.cross_traffic import CrossTrafficConfig
from repro.utils.validation import check_in_choices, check_positive
from repro.wireless.system import WirelessConfig, WirelessSystem

__all__ = ["ExperimentScenario", "BuiltScenario", "paper_scenario", "fast_scenario"]


@dataclass
class ExperimentScenario:
    """Declarative description of one experiment."""

    num_clients: int = 30
    num_groups: int = 6
    grouping: str = "contiguous"  # GSFL partition strategy (make_groups)
    model_name: str = "deepthin"
    model_kwargs: dict = field(default_factory=dict)
    cut_layer: int | None = None  # None -> architecture default
    dataset: GtsrbConfig = field(default_factory=GtsrbConfig)
    partition: str = "iid"  # iid | dirichlet
    dirichlet_alpha: float = 0.5
    wireless: WirelessConfig | None = field(default_factory=WirelessConfig)
    scheme: SchemeConfig = field(default_factory=SchemeConfig)
    dynamics: DynamicsConfig | None = None
    cross_traffic: CrossTrafficConfig | None = None
    model_seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_clients", self.num_clients)
        check_positive("num_groups", self.num_groups)
        check_in_choices("grouping", self.grouping, GROUPING_STRATEGIES)
        check_in_choices("partition", self.partition, ("iid", "dirichlet"))
        if self.num_groups > self.num_clients:
            raise ValueError(
                f"num_groups ({self.num_groups}) cannot exceed num_clients "
                f"({self.num_clients})"
            )
        if self.wireless is not None and self.wireless.num_clients != self.num_clients:
            self.wireless = replace(self.wireless, num_clients=self.num_clients)

    def resolved_cut_layer(self) -> int:
        return (
            self.cut_layer
            if self.cut_layer is not None
            else default_cut_layer(self.model_name)
        )

    def build(self) -> "BuiltScenario":
        """Materialize datasets, wireless system and the model profile."""
        factory = SyntheticGTSRB(self.dataset)
        train, test = factory.train_test()
        if self.partition == "iid":
            parts = partition_iid(len(train), self.num_clients, seed=self.dataset.seed)
        else:
            parts = partition_dirichlet(
                train.labels,
                self.num_clients,
                alpha=self.dirichlet_alpha,
                seed=self.dataset.seed,
            )
        client_datasets = make_client_datasets(train, parts)

        system = WirelessSystem(self.wireless) if self.wireless is not None else None
        probe = self.make_model()
        profile = (
            nn.profile_model(probe, factory.input_shape) if system is not None else None
        )
        return BuiltScenario(
            scenario=self,
            client_datasets=client_datasets,
            test_dataset=test,
            system=system,
            profile=profile,
            input_shape=factory.input_shape,
        )

    def make_model(self) -> nn.Sequential:
        """Fresh model with the scenario's fixed init seed."""
        kwargs = dict(self.model_kwargs)
        kwargs.setdefault("num_classes", self.dataset.num_classes)
        kwargs.setdefault("seed", self.model_seed)
        if self.model_name in ("deepthin", "micro_cnn"):
            kwargs.setdefault("image_size", self.dataset.image_size)
        elif self.model_name == "mlp":
            kwargs.setdefault(
                "input_shape", (3, self.dataset.image_size, self.dataset.image_size)
            )
        return build_model(self.model_name, **kwargs)


@dataclass
class BuiltScenario:
    """Materialized scenario: everything a scheme constructor consumes."""

    scenario: ExperimentScenario
    client_datasets: list[Subset]
    test_dataset: Dataset
    system: WirelessSystem | None
    profile: nn.ModelProfile | None
    input_shape: tuple[int, int, int]

    def scheme_kwargs(self) -> dict:
        """Common keyword arguments for any Scheme subclass.

        A fresh :class:`~repro.experiments.dynamics.ClientDynamics` is
        realized per call, so every scheme built from this scenario sees
        the same churn/participation/straggler trajectory.
        """
        dynamics = (
            ClientDynamics(self.scenario.dynamics, len(self.client_datasets))
            if self.scenario.dynamics is not None
            else None
        )
        return {
            "client_datasets": self.client_datasets,
            "test_dataset": self.test_dataset,
            "system": self.system,
            "profile": self.profile,
            "config": self.scenario.scheme,
            "dynamics": dynamics,
            "cross_traffic": self.scenario.cross_traffic,
        }


def paper_scenario(
    with_wireless: bool = True,
    train_per_class: int = 20,
    image_size: int = 20,
    seed: int = 0,
) -> ExperimentScenario:
    """The paper's §III configuration on the synthetic substrate.

    30 clients / 6 groups / 43 classes / DeepThin CNN, IoT-class client
    devices against a GPU edge server.  ``train_per_class`` scales total
    data volume (the real GTSRB is far larger; convergence *shape* is
    preserved at this scale while runs stay tractable).

    The cut layer (8 = two conv blocks client-side) is the
    latency-minimizing cut reported by :func:`repro.core.cut_layer.best_cut`
    for this model/network combination; the augmentation level is tuned so
    the task is hard enough that convergence spans tens of rounds (the
    real GTSRB takes hundreds), keeping both schemes' curves out of the
    one-round-saturation regime.
    """
    return ExperimentScenario(
        num_clients=30,
        num_groups=6,
        model_name="deepthin",
        cut_layer=8,
        dataset=GtsrbConfig(
            image_size=image_size,
            train_per_class=train_per_class,
            test_per_class=8,
            noise_std=0.22,
            jitter=0.45,
            occlusion_prob=0.35,
            blur_prob=0.5,
            seed=seed,
        ),
        wireless=WirelessConfig(num_clients=30, seed=seed) if with_wireless else None,
        scheme=SchemeConfig(
            batch_size=16, local_steps=5, lr=0.03, eval_every=2, seed=seed
        ),
        model_seed=seed,
    )


def fast_scenario(
    with_wireless: bool = True,
    num_clients: int = 6,
    num_groups: int = 2,
    num_classes: int = 10,
    seed: int = 0,
) -> ExperimentScenario:
    """Down-scaled scenario for tests: small model, few classes."""
    return ExperimentScenario(
        num_clients=num_clients,
        num_groups=num_groups,
        model_name="micro_cnn",
        dataset=GtsrbConfig(
            num_classes=num_classes,
            image_size=16,
            train_per_class=24,
            test_per_class=6,
            noise_std=0.05,
            occlusion_prob=0.05,
            blur_prob=0.1,
            seed=seed,
        ),
        wireless=WirelessConfig(num_clients=num_clients, seed=seed)
        if with_wireless
        else None,
        scheme=SchemeConfig(batch_size=16, local_steps=2, lr=0.08, seed=seed),
        model_seed=seed,
    )
