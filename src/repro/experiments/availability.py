"""Pluggable client-availability processes behind :class:`ClientDynamics`.

The dynamics layer historically hardwired one availability model: an
exponential on/off renewal process per client.  The scenario catalog
needs more worlds — diurnal waves, whole cells going dark together,
mobility-style handoffs, and exact replay of a recorded fleet history —
so the model is factored into an :class:`AvailabilityProcess`: an object
owning per-client sorted **toggle streams** (state before the first
toggle is "up", flipping at every entry; a toggle landing exactly at
``t`` counts as flipped, i.e. windows are half-open ``[start, end)``).

Processes are named by a compact spec string carried in
``DynamicsConfig.availability``:

* ``"exponential"`` — the historical per-client exponential renewal
  process.  This implementation reproduces the original draw order
  bitwise (the golden-history suite pins it).
* ``"diurnal[:PERIOD[:AMPLITUDE]]"`` — renewal process whose window
  *means* ride a sinusoid of ``PERIOD`` seconds: at peak phase
  up-windows stretch by ``1+AMPLITUDE`` and down-windows shrink by the
  same factor (off-peak mirrors it), modelling day/night availability
  waves.
* ``"cells[:K]"`` — correlated outages: clients map onto ``K``
  contiguous cells and every cell shares *one* renewal stream, so a
  whole cell goes dark (and recovers) together.
* ``"handoff"`` — mobility flavor: exponential dwell time in coverage,
  then a *fixed* ``churn_downtime_s`` gap (the handoff blackout) before
  service resumes.
* ``"trace:PATH"`` — exact replay: toggle streams are loaded from the
  ``availability`` rows of a JSONL trace previously written by
  ``--trace-out``, making the export format double as a trace-in
  format.  Replayed streams are *finite*: beyond the recorded horizon
  clients keep their final state.

All stochastic processes draw from generators spawned off the dynamics
seed, so a spec replays identically for a fixed seed regardless of
scheme or query order.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

import numpy as np

from repro.devtools.trace_schema import (
    REPLAY_AVAILABILITY_REQUIRED,
    TRACE_SCHEMAS,
)
from repro.utils.validation import check_positive

__all__ = [
    "AVAILABILITY_KINDS",
    "AvailabilitySpec",
    "parse_availability",
    "AvailabilityProcess",
    "ExponentialRenewal",
    "DiurnalRenewal",
    "CellCorrelated",
    "HandoffRenewal",
    "TraceReplay",
    "make_availability_process",
]

#: supported availability-process kinds (spec prefixes)
AVAILABILITY_KINDS = ("exponential", "diurnal", "cells", "handoff", "trace")

_DEFAULT_DIURNAL_PERIOD_S = 2.0
_DEFAULT_DIURNAL_AMPLITUDE = 0.8
_DEFAULT_NUM_CELLS = 4


@dataclass(frozen=True)
class AvailabilitySpec:
    """Parsed form of a ``DynamicsConfig.availability`` spec string."""

    kind: str
    period_s: float = _DEFAULT_DIURNAL_PERIOD_S
    amplitude: float = _DEFAULT_DIURNAL_AMPLITUDE
    num_cells: int = _DEFAULT_NUM_CELLS
    path: str = ""

    @property
    def needs_windows(self) -> bool:
        """Whether the spec is meaningless without churn up/down windows."""
        return self.kind in ("diurnal", "cells", "handoff")


def parse_availability(spec: str) -> AvailabilitySpec:
    """Parse an availability spec string; raises ``ValueError`` on bad specs."""
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"availability spec must be a non-empty string, got {spec!r}")
    if spec == "exponential":
        return AvailabilitySpec("exponential")
    if spec == "handoff":
        return AvailabilitySpec("handoff")
    if spec == "diurnal" or spec.startswith("diurnal:"):
        parts = spec.split(":")
        if len(parts) > 3:
            raise ValueError(f"malformed diurnal spec {spec!r} (diurnal[:PERIOD[:AMP]])")
        period = _DEFAULT_DIURNAL_PERIOD_S
        amplitude = _DEFAULT_DIURNAL_AMPLITUDE
        try:
            if len(parts) >= 2:
                period = float(parts[1])
            if len(parts) == 3:
                amplitude = float(parts[2])
        except ValueError:
            raise ValueError(f"malformed diurnal spec {spec!r} (diurnal[:PERIOD[:AMP]])")
        if period <= 0:
            raise ValueError(f"diurnal period must be positive, got {period}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(
                f"diurnal amplitude must be in [0, 1) to keep window means "
                f"positive, got {amplitude}"
            )
        return AvailabilitySpec("diurnal", period_s=period, amplitude=amplitude)
    if spec == "cells" or spec.startswith("cells:"):
        parts = spec.split(":")
        if len(parts) > 2:
            raise ValueError(f"malformed cells spec {spec!r} (cells[:K])")
        cells = _DEFAULT_NUM_CELLS
        if len(parts) == 2:
            try:
                cells = int(parts[1])
            except ValueError:
                raise ValueError(f"malformed cells spec {spec!r} (cells[:K])")
        if cells < 1:
            raise ValueError(f"cell count must be >= 1, got {cells}")
        return AvailabilitySpec("cells", num_cells=cells)
    if spec.startswith("trace:"):
        path = spec[len("trace:"):]
        if not path:
            raise ValueError("trace spec needs a path: trace:<trace.jsonl>")
        return AvailabilitySpec("trace", path=path)
    raise ValueError(
        f"unknown availability spec {spec!r}; expected one of "
        f"{', '.join(AVAILABILITY_KINDS)} (diurnal[:PERIOD[:AMP]], cells[:K], "
        f"trace:<path>)"
    )


class AvailabilityProcess:
    """Per-client alternating up/down toggle streams.

    ``toggles(client, t)`` returns the client's sorted toggle list with
    coverage guaranteed past ``t`` (``toggles[-1] > t``) for infinite
    processes; a :attr:`finite` process returns its fixed recorded list
    and the client simply keeps its final state beyond the horizon.
    """

    #: finite processes never extend their streams (trace replay)
    finite = False

    def toggles(self, client: int, t: float) -> list[float]:
        raise NotImplementedError


class _RenewalProcess(AvailabilityProcess):
    """Alternating renewal process; subclasses draw the window lengths.

    The extension loop is verbatim the historical
    ``ClientDynamics.available_at`` loop: same float arithmetic, same
    per-client generator consumption order, so any subclass whose
    ``_window_s`` matches the old draw is bitwise-identical to it.
    """

    def __init__(self, num_clients: int, seed_seq: np.random.SeedSequence) -> None:
        # One generator per client: lazy trace extension stays
        # deterministic no matter which client is queried first.
        self._rngs = [np.random.default_rng(s) for s in seed_seq.spawn(num_clients)]
        self._toggles: list[list[float]] = [[] for _ in range(num_clients)]

    def toggles(self, client: int, t: float) -> list[float]:
        toggles = self._toggles[client]
        rng = self._rngs[client]
        while not toggles or toggles[-1] <= t:
            last = toggles[-1] if toggles else 0.0
            up = len(toggles) % 2 == 0
            toggles.append(last + self._window_s(rng, up, last))
        return toggles

    def _window_s(self, rng: np.random.Generator, up: bool, start: float) -> float:
        raise NotImplementedError


class ExponentialRenewal(_RenewalProcess):
    """The historical model: independent exponential on/off windows."""

    def __init__(
        self,
        num_clients: int,
        seed_seq: np.random.SeedSequence,
        up_s: float,
        down_s: float,
    ) -> None:
        super().__init__(num_clients, seed_seq)
        check_positive("churn_uptime_s", up_s)
        check_positive("churn_downtime_s", down_s)
        self._up_s = up_s
        self._down_s = down_s

    def _window_s(self, rng: np.random.Generator, up: bool, start: float) -> float:
        return float(rng.exponential(self._up_s if up else self._down_s))


class DiurnalRenewal(_RenewalProcess):
    """Renewal process with sinusoidally modulated window means.

    At phase ``m = 1 + amplitude * sin(2*pi*start/period)`` the mean
    up-window is ``churn_uptime_s * m`` and the mean down-window
    ``churn_downtime_s / m`` — peak hours keep clients up longer *and*
    bring them back faster.  ``amplitude < 1`` keeps ``m`` positive.
    """

    def __init__(
        self,
        num_clients: int,
        seed_seq: np.random.SeedSequence,
        up_s: float,
        down_s: float,
        period_s: float,
        amplitude: float,
    ) -> None:
        super().__init__(num_clients, seed_seq)
        check_positive("churn_uptime_s", up_s)
        check_positive("churn_downtime_s", down_s)
        check_positive("period_s", period_s)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        self._up_s = up_s
        self._down_s = down_s
        self._period_s = period_s
        self._amplitude = amplitude

    def phase_multiplier(self, t: float) -> float:
        """The window-mean multiplier at absolute time ``t``."""
        return 1.0 + self._amplitude * math.sin(2.0 * math.pi * t / self._period_s)

    def _window_s(self, rng: np.random.Generator, up: bool, start: float) -> float:
        m = self.phase_multiplier(start)
        mean = self._up_s * m if up else self._down_s / m
        return float(rng.exponential(mean))


class HandoffRenewal(_RenewalProcess):
    """Mobility flavor: exponential coverage dwell, fixed handoff gap.

    Down-windows are the *constant* ``churn_downtime_s`` (the blackout
    while a client re-associates after leaving coverage) and consume no
    randomness.
    """

    def __init__(
        self,
        num_clients: int,
        seed_seq: np.random.SeedSequence,
        up_s: float,
        down_s: float,
    ) -> None:
        super().__init__(num_clients, seed_seq)
        check_positive("churn_uptime_s", up_s)
        check_positive("churn_downtime_s", down_s)
        self._up_s = up_s
        self._down_s = down_s

    def _window_s(self, rng: np.random.Generator, up: bool, start: float) -> float:
        if up:
            return float(rng.exponential(self._up_s))
        return self._down_s


class CellCorrelated(AvailabilityProcess):
    """Correlated outages: one shared renewal stream per cell.

    Clients map onto ``num_cells`` contiguous cells
    (``cell = client * num_cells // num_clients``); every client in a
    cell shares the cell's toggle list, so outages take the whole cell
    dark together — the scenario the per-client models can never
    produce.
    """

    def __init__(
        self,
        num_clients: int,
        seed_seq: np.random.SeedSequence,
        up_s: float,
        down_s: float,
        num_cells: int,
    ) -> None:
        check_positive("churn_uptime_s", up_s)
        check_positive("churn_downtime_s", down_s)
        check_positive("num_cells", num_cells)
        num_cells = min(num_cells, num_clients)
        self.num_cells = num_cells
        self.cell_of = [c * num_cells // num_clients for c in range(num_clients)]
        self._rngs = [np.random.default_rng(s) for s in seed_seq.spawn(num_cells)]
        self._toggles: list[list[float]] = [[] for _ in range(num_cells)]
        self._up_s = up_s
        self._down_s = down_s

    def toggles(self, client: int, t: float) -> list[float]:
        cell = self.cell_of[client]
        toggles = self._toggles[cell]
        rng = self._rngs[cell]
        while not toggles or toggles[-1] <= t:
            last = toggles[-1] if toggles else 0.0
            window = self._up_s if len(toggles) % 2 == 0 else self._down_s
            toggles.append(last + float(rng.exponential(window)))
        return toggles


class TraceReplay(AvailabilityProcess):
    """Re-drive availability from a recorded ``--trace-out`` JSONL file.

    Reads the trace's ``availability`` rows (one per client, sorted
    toggle times clipped to the recorded horizon).  Streams are finite:
    queries beyond the horizon see each client frozen in its final
    recorded state, which is exactly what a shorter-or-equal replay run
    observes from the original infinite process.
    """

    finite = True

    def __init__(self, path: str, num_clients: int) -> None:
        check_positive("num_clients", num_clients)
        per_client: dict[int, list[float]] = {}
        try:
            fh = open(path)
        except OSError as exc:
            raise ValueError(f"cannot read availability trace {path!r}: {exc}")
        with fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{path}:{lineno}: not JSONL ({exc})")
                if not isinstance(row, dict) or row.get("type") != "availability":
                    continue
                missing = sorted(REPLAY_AVAILABILITY_REQUIRED - set(row))
                unknown = sorted(set(row) - TRACE_SCHEMAS["availability"])
                if missing or unknown:
                    raise ValueError(
                        f"{path}:{lineno}: availability row drifts from "
                        f"repro.devtools.trace_schema: missing={missing} "
                        f"unknown={unknown}"
                    )
                client = int(row["client"])
                if not 0 <= client < num_clients:
                    raise ValueError(
                        f"{path}:{lineno}: availability row for client {client} "
                        f"outside fleet of {num_clients}"
                    )
                toggles = [float(x) for x in row["toggles"]]
                if any(b <= a for a, b in zip(toggles, toggles[1:])):
                    raise ValueError(
                        f"{path}:{lineno}: toggles must be strictly increasing"
                    )
                if toggles and toggles[0] <= 0.0:
                    raise ValueError(f"{path}:{lineno}: toggles must be positive")
                per_client[client] = toggles
        # Clients without a row never toggled inside the recorded horizon:
        # they stay up for the whole replay.
        self._toggles = [per_client.get(c, []) for c in range(num_clients)]

    def toggles(self, client: int, t: float) -> list[float]:
        return self._toggles[client]


def make_availability_process(
    spec: "str | AvailabilitySpec",
    num_clients: int,
    seed_seq: np.random.SeedSequence,
    up_s: "float | None",
    down_s: "float | None",
) -> "AvailabilityProcess | None":
    """Realize the availability process for one dynamics instance.

    Returns ``None`` for the identity case (``exponential`` with no churn
    windows — clients are simply always up).  ``seed_seq`` is the
    dynamics' availability seed branch; every process spawns its
    generators from it so the historical exponential stream is untouched.
    """
    if isinstance(spec, str):
        spec = parse_availability(spec)
    if spec.kind == "trace":
        return TraceReplay(spec.path, num_clients)
    if spec.needs_windows and up_s is None:
        raise ValueError(
            f"availability {spec.kind!r} requires churn windows "
            f"(churn_uptime_s / churn_downtime_s)"
        )
    if up_s is None:
        return None
    if spec.kind == "exponential":
        return ExponentialRenewal(num_clients, seed_seq, up_s, down_s)
    if spec.kind == "diurnal":
        return DiurnalRenewal(
            num_clients, seed_seq, up_s, down_s, spec.period_s, spec.amplitude
        )
    if spec.kind == "cells":
        return CellCorrelated(num_clients, seed_seq, up_s, down_s, spec.num_cells)
    if spec.kind == "handoff":
        return HandoffRenewal(num_clients, seed_seq, up_s, down_s)
    raise ValueError(f"unknown availability kind {spec.kind!r}")
