"""Scenario catalog: named worlds, looked up by string.

Scenarios were a handful of CLI flags around two presets; a fleet
simulator wants worlds as first-class named artifacts (the registry
idiom of torchvision's ``prototype/models/_api.py``: named entries with
metadata, lookup by string, list/describe support).  Each entry is a
builder closing over a full :class:`ExperimentScenario` — availability
process, failure model, device tiers, background link load — so
``--scenario NAME`` reproduces a world end-to-end from one string and
every world ships with a pinned bench row (``BENCH_runtime.json``,
"catalog" section).

Beyond the registered names, the dynamic ``replay:<trace.jsonl>`` form
rebuilds a world from a recorded ``--trace-out`` file: the trace's
``meta`` row carries the scenario name, seed, fleet shape and full
dynamics config, and its ``availability`` rows re-drive the churn
process exactly (see
:class:`repro.experiments.availability.TraceReplay`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Callable

from repro.devtools.trace_schema import TRACE_SCHEMAS
from repro.experiments.dynamics import DynamicsConfig
from repro.experiments.scenario import (
    ExperimentScenario,
    fast_scenario,
    paper_scenario,
)
from repro.sim.cross_traffic import CrossTrafficConfig

__all__ = [
    "ScenarioEntry",
    "SCENARIO_REGISTRY",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "describe_scenario",
]


@dataclass(frozen=True)
class ScenarioEntry:
    """One catalog entry: builder plus the metadata shown by list/describe."""

    name: str
    summary: str
    tags: tuple[str, ...]
    builder: Callable[[int], ExperimentScenario]


#: the global registry; populated by :func:`register_scenario` below
SCENARIO_REGISTRY: dict[str, ScenarioEntry] = {}


_Builder = Callable[[int], ExperimentScenario]


def register_scenario(
    name: str, *, summary: str, tags: "tuple[str, ...]" = ()
) -> Callable[[_Builder], _Builder]:
    """Decorator registering ``builder(seed) -> ExperimentScenario``."""

    def decorator(builder: _Builder) -> _Builder:
        if name in SCENARIO_REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIO_REGISTRY[name] = ScenarioEntry(name, summary, tuple(tags), builder)
        return builder

    return decorator


def get_scenario(name: str, seed: int = 0) -> ExperimentScenario:
    """Build the named scenario (or ``replay:<trace.jsonl>``); raises
    ``ValueError`` for unknown names."""
    if name.startswith("replay:"):
        return _replay_scenario(name[len("replay:"):], seed)
    entry = SCENARIO_REGISTRY.get(name)
    if entry is None:
        known = ", ".join(sorted(SCENARIO_REGISTRY))
        raise ValueError(
            f"unknown scenario {name!r}; registered: {known} "
            f"(or replay:<trace.jsonl>)"
        )
    return entry.builder(seed)


def list_scenarios() -> list[ScenarioEntry]:
    """All registered entries, sorted by name."""
    return [SCENARIO_REGISTRY[k] for k in sorted(SCENARIO_REGISTRY)]


def describe_scenario(name: str, seed: int = 0) -> str:
    """Multi-line human-readable description of one world."""
    scenario = get_scenario(name, seed)
    entry = SCENARIO_REGISTRY.get(name)
    lines = [f"scenario : {name}"]
    if entry is not None:
        lines.append(f"summary  : {entry.summary}")
        if entry.tags:
            lines.append(f"tags     : {', '.join(entry.tags)}")
    else:
        lines.append("summary  : replay of a recorded fleet trace")
    lines.append(
        f"fleet    : {scenario.num_clients} clients / {scenario.num_groups} "
        f"groups, model={scenario.model_name}, grouping={scenario.grouping}"
    )
    if scenario.wireless is not None and scenario.wireless.device_classes:
        tiers = ", ".join(
            f"{n}@{f:.1e}" for n, f in scenario.wireless.device_classes
        )
        lines.append(f"devices  : {tiers} (round-robin tiers)")
    dyn = scenario.dynamics
    if dyn is None:
        lines.append("dynamics : none (static fleet)")
    else:
        churn = (
            f"up~{dyn.churn_uptime_s}s/down~{dyn.churn_downtime_s}s"
            if dyn.churn_uptime_s is not None
            else "no windows"
        )
        lines.append(
            f"dynamics : availability={dyn.availability}, {churn}, "
            f"participation={dyn.participation}, "
            f"failure_model={dyn.failure_model}, seed={dyn.seed}"
        )
    if scenario.cross_traffic is not None:
        ct = scenario.cross_traffic
        lines.append(
            f"link     : {ct.num_sources} background burst source(s), "
            f"load={ct.load:.0%} of capacity, burst={ct.burst_bits:.1e} bits, "
            f"idle~{ct.mean_idle_s}s"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trace replay
# ----------------------------------------------------------------------
def _read_meta(path: str) -> "dict[str, object]":
    """First ``meta`` row of a recorded trace, schema-checked.

    The replay contract is *tolerant of missing* optional fields (older
    or foreign traces fall back to the base world) but *strict on
    unknown* ones: a field present in the file but absent from the
    canonical registry means recorder and parser have drifted apart.
    """
    try:
        fh = open(path)
    except OSError as exc:
        raise ValueError(f"cannot read trace {path!r}: {exc}")
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"trace {path!r} is not JSONL: {exc}")
            if isinstance(row, dict) and row.get("type") == "meta":
                unknown = sorted(set(row) - TRACE_SCHEMAS["meta"])
                if unknown:
                    raise ValueError(
                        f"trace {path!r} meta row carries fields unknown to "
                        f"repro.devtools.trace_schema: {unknown}"
                    )
                return row
            break
    raise ValueError(f"trace {path!r} has no leading 'meta' row")


def _replay_scenario(path: str, seed: int) -> ExperimentScenario:
    """Rebuild a world from a recorded trace and re-drive its churn.

    The base world comes from the recorded scenario name when it is
    registered (falling back to the fast preset), re-shaped to the
    recorded fleet size; the dynamics config is the recorded one with
    its availability process swapped for exact trace replay.  Learning
    hyper-parameters not captured in the meta row (a ``--transport``
    override, say) follow the base world — availability replay, not the
    full run, is the contract.
    """
    meta = _read_meta(path)
    base_seed = int(meta.get("seed", seed))
    base_name = meta.get("scenario")
    if base_name in SCENARIO_REGISTRY:
        scenario = SCENARIO_REGISTRY[base_name].builder(base_seed)
    else:
        scenario = fast_scenario(with_wireless=True, seed=base_seed)
    num_clients = int(meta.get("num_clients", scenario.num_clients))
    if scenario.num_clients != num_clients:
        scenario = fast_scenario(
            with_wireless=True,
            num_clients=num_clients,
            num_groups=min(scenario.num_groups, num_clients),
            seed=base_seed,
        )
    num_groups = meta.get("num_groups")
    if num_groups:
        scenario.num_groups = int(num_groups)
    recorded = meta.get("dynamics")
    kwargs = dict(recorded) if isinstance(recorded, dict) else {}
    kwargs["availability"] = f"trace:{path}"
    scenario.dynamics = DynamicsConfig(**kwargs)
    return scenario


# ----------------------------------------------------------------------
# registered worlds
# ----------------------------------------------------------------------
# The two presets register verbatim so `--scenario fast|paper` is
# guaranteed bitwise-identical to the flag-constructed scenarios (the
# catalog test pins the equality).


@register_scenario(
    "fast",
    summary="down-scaled test preset: 6 clients / 2 groups, static fleet",
    tags=("preset",),
)
def _fast(seed: int = 0) -> ExperimentScenario:
    return fast_scenario(with_wireless=True, seed=seed)


@register_scenario(
    "paper",
    summary="the paper's §III setting: 30 clients / 6 groups, DeepThin CNN",
    tags=("preset",),
)
def _paper(seed: int = 0) -> ExperimentScenario:
    return paper_scenario(with_wireless=True, seed=seed)


@register_scenario(
    "churn",
    summary="the churn benchmark as a named world: exponential on/off, "
    "mid-activity preemption, retry/reroute recovery",
    tags=("availability", "churn"),
)
def _churn(seed: int = 0) -> ExperimentScenario:
    s = fast_scenario(with_wireless=True, num_clients=12, num_groups=4, seed=seed)
    s.dynamics = DynamicsConfig(
        churn_uptime_s=0.15,
        churn_downtime_s=0.05,
        failure_model="mid-activity",
        max_retries=2,
        seed=seed,
    )
    return s


@register_scenario(
    "diurnal",
    summary="availability waves: window means ride a sinusoid, so peak "
    "phase keeps clients up and off-peak thins the fleet",
    tags=("availability", "churn"),
)
def _diurnal(seed: int = 0) -> ExperimentScenario:
    s = fast_scenario(with_wireless=True, seed=seed)
    # Period ~ tens of fast-scale rounds (a round is ~0.1 s simulated),
    # so runs sweep through both phases.
    s.dynamics = DynamicsConfig(
        churn_uptime_s=0.3,
        churn_downtime_s=0.1,
        availability="diurnal:2.0:0.8",
        seed=seed,
    )
    return s


@register_scenario(
    "cell-outage",
    summary="correlated outages: 12 clients across 4 cells, a whole cell "
    "goes dark together and in-flight work is preempted",
    tags=("availability", "correlated"),
)
def _cell_outage(seed: int = 0) -> ExperimentScenario:
    s = fast_scenario(with_wireless=True, num_clients=12, num_groups=4, seed=seed)
    s.dynamics = DynamicsConfig(
        churn_uptime_s=0.5,
        churn_downtime_s=0.12,
        availability="cells:4",
        failure_model="mid-activity",
        max_retries=2,
        seed=seed,
    )
    return s


@register_scenario(
    "mobility",
    summary="handoff-flavored churn: exponential coverage dwell, fixed "
    "handoff blackout, mid-activity preemption",
    tags=("availability", "mobility"),
)
def _mobility(seed: int = 0) -> ExperimentScenario:
    s = fast_scenario(with_wireless=True, seed=seed)
    s.dynamics = DynamicsConfig(
        churn_uptime_s=0.4,
        churn_downtime_s=0.02,
        availability="handoff",
        failure_model="mid-activity",
        max_retries=2,
        seed=seed,
    )
    return s


@register_scenario(
    "device-classes",
    summary="phone / laptop / edge-box compute tiers assigned round-robin "
    "instead of a uniform fleet",
    tags=("compute",),
)
def _device_classes(seed: int = 0) -> ExperimentScenario:
    s = fast_scenario(with_wireless=True, seed=seed)
    s.wireless = replace(
        s.wireless,
        device_classes=(
            ("phone", 1.0e8),
            ("laptop", 6.0e8),
            ("edge-box", 2.4e9),
        ),
    )
    return s


@register_scenario(
    "cross-traffic",
    summary="bursty background load on the shared link squeezes foreground "
    "transmissions (static-medium oversubscription)",
    tags=("link",),
)
def _cross_traffic(seed: int = 0) -> ExperimentScenario:
    s = fast_scenario(with_wireless=True, seed=seed)
    # A burst holds 60% of the 20 MHz link for ~0.125 s — about one
    # fast-scale round — with ~0.15 s mean gaps per source.
    s.cross_traffic = CrossTrafficConfig(
        num_sources=2,
        mean_idle_s=0.15,
        burst_bits=1.5e6,
        load=0.6,
        seed=seed,
    )
    return s
