"""DES-resident aggregation server and staleness policies.

The paper's GSFL protocol synchronizes the ``M`` group pipelines at a
per-round barrier: "after all groups have completed the model training
process" the AP FedAvg-aggregates and the next round begins.  The
event-driven runtime makes that barrier a *choice* rather than a
structural necessity — this module turns aggregation into a first-class
server process living inside the :class:`~repro.sim.runtime.Runtime`:

* :class:`SyncBarrier` — the degenerate policy.  It owns the classic
  stage/barrier replay (``all_of`` over the parallel tracks of each
  stage), so round-barrier semantics live *in the policy*, not in the
  engine; schemes running under it are bit-for-bit identical to the
  historical per-round pipeline.
* :class:`PolynomialStaleness` (``--aggregation async``) — FedAsync-style
  barrier-free aggregation: the server merges every unit (group/client)
  update the moment it arrives, damped by ``(1 + staleness)^{-alpha}``.
* :class:`BoundedStaleness` (``--aggregation bounded:K``) — barrier-free
  with a max-lag gate: a unit may run at most ``K`` rounds ahead of the
  slowest unit, so fast groups lap stragglers but pause before anyone
  falls hopelessly stale.  ``bounded:0`` degenerates exactly to the sync
  barrier and is parsed as such.

Staleness is measured in **unit rounds**: when a unit commits its round
``c`` (1-based count after the commit), its update's staleness is
``max(0, max_u completed_u - c)`` — how many rounds the fastest unit is
ahead at commit time.  Under the bounded gate this value provably never
exceeds ``K``: a unit may only *start* a round while it is at most ``K``
ahead of the slowest, so at any commit the front-runner can have banked
at most ``K`` more rounds than the committer.

The :class:`AggregationServer` owns the global model payload (via an
``apply_update`` callback so it stays scheme-agnostic), gates unit starts
through the policy, applies staleness-weighted merges, and logs every
commit as an :class:`UpdateRecord` — the rows behind the
``aggregation_update`` entries of the ``--trace-out`` JSONL export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Sequence

from repro.sim.engine import Environment

if TYPE_CHECKING:  # pragma: no cover - type-only imports (layering)
    from repro.schemes.base import Activity, Stage
    from repro.sim.events import Event
    from repro.sim.runtime import Runtime, TrackRecovery
    from repro.sim.trace import TraceRecorder

__all__ = [
    "StalenessPolicy",
    "SyncBarrier",
    "PolynomialStaleness",
    "BoundedStaleness",
    "parse_aggregation",
    "AGGREGATION_MODES",
    "UnitRoundWork",
    "RetryAt",
    "UpdateRecord",
    "AbortRecord",
    "AggregationServer",
]

#: canonical aggregation-mode spellings (``bounded:K`` for any integer K)
AGGREGATION_MODES = ("sync", "async", "bounded:K")


class StalenessPolicy:
    """How the aggregation server treats update lag.

    ``synchronous`` routes the scheme driver onto the classic barriered
    round loop; ``max_lag`` (``None`` = unbounded) gates how many rounds
    a unit may run ahead of the slowest one; :meth:`weight` damps an
    update by its observed staleness.
    """

    name = "base"
    synchronous = False
    max_lag: int | None = None

    def weight(self, staleness: int) -> float:
        """Multiplier applied to an update that is ``staleness`` rounds old."""
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, max_lag={self.max_lag})"


class SyncBarrier(StalenessPolicy):
    """Degenerate policy: the paper's per-round barrier.

    Every unit waits for every other unit each round (``max_lag = 0``)
    and the server aggregates the full cohort at once — plain FedAvg.
    This class also *owns* the barriered stage replay that used to live
    inside :meth:`Runtime.execute_round`: stages run one after another,
    the parallel tracks of a stage joined by an ``all_of`` barrier.
    """

    name = "sync"
    synchronous = True
    max_lag = 0

    def resolve_round(
        self,
        runtime: "Runtime",
        stages: "Sequence[Stage]",
        recorder: "TraceRecorder | None",
        round_index: int,
        compute_slowdown: dict[int, float] | None = None,
        recovery: "TrackRecovery | None" = None,
    ) -> float:
        """Replay one round's stages with barrier semantics; returns span.

        ``recovery`` (mid-activity failure model) applies per track: a
        preempted track retries, re-routes, or surrenders on its own; the
        stage barrier waits for every track's outcome either way, so a
        surrendered track simply stops contributing latency.  Under the
        barrier the aggregation math already ran at stage-construction
        time, so sync-mode recovery is a *timing* semantics — the learned
        weights stay those of the round-start membership (the
        learning/timing decoupling the scenario layer guarantees).
        """
        env = runtime.env
        start = env.now

        def round_process() -> "Generator[Event, Any, None]":
            for stage in stages:
                if not stage.tracks:
                    continue
                procs = [
                    env.process(
                        runtime.run_track(
                            acts, recorder, round_index, compute_slowdown, recovery
                        )
                    )
                    for acts in stage.tracks.values()
                ]
                yield env.all_of(procs)

        done = env.process(round_process())
        env.run(done)
        return env.now - start


class PolynomialStaleness(StalenessPolicy):
    """FedAsync-style polynomial decay: ``weight = (1 + s)^(-alpha)``.

    No gate — fast units lap slow ones freely; their updates simply count
    for less the staler they arrive.
    """

    name = "async"
    max_lag = None

    def __init__(self, alpha: float = 0.5) -> None:
        if alpha < 0:
            raise ValueError(f"staleness decay alpha must be >= 0, got {alpha}")
        self.alpha = alpha

    def weight(self, staleness: int) -> float:
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        return float((1.0 + staleness) ** -self.alpha)


class BoundedStaleness(PolynomialStaleness):
    """Bounded-staleness (SSP-style): polynomial decay + a max-lag gate.

    A unit that has completed ``c`` rounds may start its next round only
    once ``c - min_u completed_u <= K``; otherwise it pauses until a
    slower unit commits.  Observed staleness is therefore bounded by
    ``K`` (see the module docstring for the argument).
    """

    def __init__(self, max_lag: int, alpha: float = 0.5) -> None:
        super().__init__(alpha=alpha)
        if max_lag < 1:
            raise ValueError(
                f"bounded staleness needs max_lag >= 1 (0 is the sync barrier), "
                f"got {max_lag}"
            )
        self.max_lag = max_lag
        self.name = f"bounded:{max_lag}"


def parse_aggregation(spec: str) -> StalenessPolicy:
    """Resolve an ``--aggregation`` spec to a policy instance.

    ``"sync"`` → :class:`SyncBarrier`; ``"async"`` →
    :class:`PolynomialStaleness`; ``"bounded:K"`` →
    :class:`BoundedStaleness` for ``K >= 1`` and :class:`SyncBarrier` for
    ``K = 0`` (a zero-lag gate *is* the barrier — the regression suite
    pins that equivalence bitwise).
    """
    if not isinstance(spec, str):
        raise ValueError(f"aggregation spec must be a string, got {spec!r}")
    if spec == "sync":
        return SyncBarrier()
    if spec == "async":
        return PolynomialStaleness()
    if spec.startswith("bounded:"):
        raw = spec.split(":", 1)[1]
        try:
            lag = int(raw)
        except ValueError:
            raise ValueError(f"bounded staleness wants an integer lag, got {raw!r}")
        if lag < 0:
            raise ValueError(f"staleness bound must be >= 0, got {lag}")
        return SyncBarrier() if lag == 0 else BoundedStaleness(lag)
    raise ValueError(
        f"unknown aggregation mode {spec!r}; expected one of {AGGREGATION_MODES}"
    )


# ----------------------------------------------------------------------
# asynchronous engine
# ----------------------------------------------------------------------
@dataclass
class UnitRoundWork:
    """One unit-round handed to the server engine by a scheme.

    ``activities`` is the unit's sequential DES track (transmissions,
    compute, the final aggregation demand); ``payload`` is the trained
    update the server merges on completion (``None`` → the round counts
    for progress but commits nothing — e.g. every member down);
    ``weight`` is the unit's FedAvg sample weight; ``slowdowns`` are
    per-client straggler multipliers applied while resolving compute
    demands; ``loss_sum``/``num_contributors`` feed the per-round
    training-loss bookkeeping.  ``recovery`` carries the scheme's
    mid-activity failure semantics (``None`` → preemption impossible or
    an abort surrenders the track).
    """

    activities: "list[Activity]"
    payload: object | None
    weight: float
    slowdowns: dict[int, float] | None = None
    loss_sum: float = 0.0
    num_contributors: int = 0
    recovery: "TrackRecovery | None" = None


@dataclass(frozen=True)
class RetryAt:
    """Returned by a work function instead of work: retry the same unit
    round once the clock reaches ``time_s`` (waiting out a churn window)."""

    time_s: float


@dataclass(frozen=True)
class UpdateRecord:
    """One applied aggregation commit (the ``aggregation_update`` trace row)."""

    unit: int
    round_index: int
    time_s: float
    staleness: int
    alpha: float
    weight: float


@dataclass(frozen=True)
class AbortRecord:
    """One aborted or partial unit-round contribution.

    Kept on the server *separately* from :class:`UpdateRecord` commits:
    ``outcome="partial"`` means the unit still committed but with one
    relay member rerouted around (``client``); ``outcome="surrender"``
    means the unit-round delivered nothing — progress advanced, no merge.
    """

    unit: int
    round_index: int
    time_s: float
    outcome: str
    client: int | None = None


class AggregationServer:
    """DES-resident owner of the global model under asynchronous policies.

    The server never touches model math directly: ``apply_update(payload,
    alpha)`` is supplied by the scheme and mutates the scheme's global
    state, keeping this engine reusable for property tests with synthetic
    payloads.  ``alpha`` is the unit's normalized sample weight times the
    policy's staleness weight, so with homogeneous speeds every commit
    moves the global model by roughly its FedAvg share.
    """

    def __init__(
        self,
        runtime: "Runtime",
        policy: StalenessPolicy,
        num_units: int,
        total_weight: float,
        apply_update: Callable[[object, float], None],
    ) -> None:
        if policy.synchronous:
            raise ValueError(
                "AggregationServer drives barrier-free policies; the sync "
                "barrier runs through the classic round loop"
            )
        if num_units < 1:
            raise ValueError(f"need at least one unit, got {num_units}")
        if total_weight <= 0:
            raise ValueError(f"total_weight must be positive, got {total_weight}")
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.policy = policy
        self.total_weight = float(total_weight)
        self.apply_update = apply_update
        #: completed unit-rounds per unit (the gate and staleness source)
        self.completed = [0] * num_units
        self.updates: list[UpdateRecord] = []
        #: aborted / partial contributions, distinct from the commit log
        self.aborted: list[AbortRecord] = []
        self._progress = self.env.event()

    # ------------------------------------------------------------------
    # gate
    # ------------------------------------------------------------------
    def may_start(self, unit: int) -> bool:
        """Whether ``unit`` may begin its next round under the lag gate."""
        lag = self.policy.max_lag
        if lag is None:
            return True
        return self.completed[unit] - min(self.completed) <= lag

    def gate(self, unit: int) -> "Generator[Event, Any, None]":
        """Process generator: wait until the lag gate clears for ``unit``."""
        while not self.may_start(unit):
            yield self._progress

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------
    def commit(self, unit: int, work: UnitRoundWork) -> UpdateRecord | None:
        """Apply one finished unit-round; returns the logged record.

        Progress always advances (gated peers wake even for an empty
        round); the merge itself is skipped when ``payload`` is ``None``.
        """
        self.completed[unit] += 1
        record = None
        if work.payload is not None:
            count = self.completed[unit]
            staleness = max(0, max(self.completed) - count)
            alpha = (work.weight / self.total_weight) * self.policy.weight(staleness)
            self.apply_update(work.payload, alpha)
            record = UpdateRecord(
                unit=unit,
                round_index=count - 1,
                time_s=self.env.now,
                staleness=staleness,
                alpha=alpha,
                weight=work.weight,
            )
            self.updates.append(record)
        # Wake gated units: fresh event per commit, everyone re-checks.
        fired, self._progress = self._progress, self.env.event()
        fired.succeed()
        return record

    def _apply_outcome(
        self, unit: int, round_index: int, work: UnitRoundWork, outcome: "object"
    ) -> None:
        """Fold a track's failure outcome into the unit-round contribution.

        Rerouted members mark the commit *partial* (the surviving chain
        still delivers); a surrendered track drops the payload and its
        loss bookkeeping entirely — the round advances progress (the lag
        gate must not deadlock on a dead unit) but commits nothing.
        """
        for client in outcome.rerouted:
            self.aborted.append(
                AbortRecord(unit, round_index, self.env.now, "partial", client)
            )
        if outcome.surrendered:
            self.aborted.append(
                AbortRecord(
                    unit,
                    round_index,
                    self.env.now,
                    "surrender",
                    outcome.surrendered_client,
                )
            )
            work.payload = None
            work.loss_sum = 0.0
            work.num_contributors = 0

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def run(
        self,
        work_fn: Callable[[int, int], "UnitRoundWork | RetryAt"],
        num_rounds: int,
        recorder: "TraceRecorder | None" = None,
        on_commit: Callable[[int, int, UnitRoundWork, UpdateRecord | None], None]
        | None = None,
    ) -> None:
        """Run every unit for ``num_rounds`` rounds, barrier-free.

        One DES process per unit: gate → ``work_fn(unit, round)`` (the
        scheme eagerly trains *at the simulated start time*, so churn and
        snapshot state are resolved against the live clock) → resolve the
        activity track → commit.  ``work_fn`` may return :class:`RetryAt`
        to wait out a dead window and be asked again.  ``on_commit`` runs
        after every commit (eval/round bookkeeping in the scheme driver).
        """
        if num_rounds < 1:
            raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
        env = self.env

        def unit_process(unit: int) -> "Generator[Event, Any, None]":
            for round_index in range(num_rounds):
                yield from self.gate(unit)
                while True:
                    work = work_fn(unit, round_index)
                    if not isinstance(work, RetryAt):
                        break
                    if work.time_s <= env.now:
                        raise RuntimeError(
                            f"unit {unit} round {round_index}: retry time "
                            f"{work.time_s} does not advance the clock "
                            f"(now={env.now})"
                        )
                    yield env.timeout(work.time_s - env.now)
                outcome = yield from self.runtime.run_track(
                    work.activities, recorder, round_index, work.slowdowns,
                    work.recovery,
                )
                if outcome is not None:
                    self._apply_outcome(unit, round_index, work, outcome)
                record = self.commit(unit, work)
                if on_commit is not None:
                    on_commit(unit, round_index, work, record)

        procs = [env.process(unit_process(u)) for u in range(len(self.completed))]
        env.run(env.all_of(procs))
