"""``repro.sim`` — deterministic discrete-event simulation kernel.

Generator-coroutine processes over a heap-driven event loop (SimPy-style),
counting-semaphore resources, a policy-driven shared-link model, latency
trace recording, and a demand-resolving :class:`~repro.sim.runtime.Runtime`
that prices compute/transmission demands during replay.  The wireless
training schemes are expressed as processes over this kernel.
"""

from repro.sim.engine import Environment, Process
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.failures import FailureInjector
from repro.sim.resources import (
    EqualShare,
    FairShareLink,
    NominalShare,
    Resource,
    SharePolicy,
)
from repro.sim.runtime import (
    ComputeDemand,
    FixedDemand,
    Preemption,
    Runtime,
    TrackOutcome,
    TrackRecovery,
    TransmitDemand,
    TransmitLeg,
)
from repro.sim.server import (
    AbortRecord,
    AggregationServer,
    BoundedStaleness,
    PolynomialStaleness,
    StalenessPolicy,
    SyncBarrier,
    UpdateRecord,
    parse_aggregation,
)
from repro.sim.trace import (
    ABORT_RESOLUTIONS,
    PHASES,
    AbortEvent,
    RetryEvent,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "Environment",
    "Process",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Resource",
    "SharePolicy",
    "EqualShare",
    "NominalShare",
    "FairShareLink",
    "FixedDemand",
    "ComputeDemand",
    "TransmitLeg",
    "TransmitDemand",
    "Runtime",
    "Preemption",
    "TrackRecovery",
    "TrackOutcome",
    "FailureInjector",
    "StalenessPolicy",
    "SyncBarrier",
    "PolynomialStaleness",
    "BoundedStaleness",
    "AggregationServer",
    "UpdateRecord",
    "AbortRecord",
    "parse_aggregation",
    "TraceEvent",
    "AbortEvent",
    "RetryEvent",
    "TraceRecorder",
    "PHASES",
    "ABORT_RESOLUTIONS",
]
