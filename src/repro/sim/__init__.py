"""``repro.sim`` — deterministic discrete-event simulation kernel.

Generator-coroutine processes over a heap-driven event loop (SimPy-style),
counting-semaphore resources, a policy-driven shared-link model, latency
trace recording, and a demand-resolving :class:`~repro.sim.runtime.Runtime`
that prices compute/transmission demands during replay.  The wireless
training schemes are expressed as processes over this kernel.
"""

from repro.sim.engine import Environment, Process
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.resources import (
    EqualShare,
    FairShareLink,
    NominalShare,
    Resource,
    SharePolicy,
)
from repro.sim.runtime import (
    ComputeDemand,
    FixedDemand,
    Runtime,
    TransmitDemand,
    TransmitLeg,
)
from repro.sim.server import (
    AggregationServer,
    BoundedStaleness,
    PolynomialStaleness,
    StalenessPolicy,
    SyncBarrier,
    UpdateRecord,
    parse_aggregation,
)
from repro.sim.trace import PHASES, TraceEvent, TraceRecorder

__all__ = [
    "Environment",
    "Process",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Resource",
    "SharePolicy",
    "EqualShare",
    "NominalShare",
    "FairShareLink",
    "FixedDemand",
    "ComputeDemand",
    "TransmitLeg",
    "TransmitDemand",
    "Runtime",
    "StalenessPolicy",
    "SyncBarrier",
    "PolynomialStaleness",
    "BoundedStaleness",
    "AggregationServer",
    "UpdateRecord",
    "parse_aggregation",
    "TraceEvent",
    "TraceRecorder",
    "PHASES",
]
