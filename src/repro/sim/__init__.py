"""``repro.sim`` — deterministic discrete-event simulation kernel.

Generator-coroutine processes over a heap-driven event loop (SimPy-style),
counting-semaphore resources, a processor-sharing shared-link model, and
latency trace recording.  The wireless training schemes are expressed as
processes over this kernel.
"""

from repro.sim.engine import Environment, Process
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.resources import FairShareLink, Resource
from repro.sim.trace import PHASES, TraceEvent, TraceRecorder

__all__ = [
    "Environment",
    "Process",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Resource",
    "FairShareLink",
    "TraceEvent",
    "TraceRecorder",
    "PHASES",
]
