"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot trigger with callbacks and an optional
value.  Processes (generator coroutines, see :mod:`repro.sim.engine`)
yield events to suspend until they fire.  :class:`Timeout` is an event
pre-scheduled at ``now + delay``; :class:`AllOf` / :class:`AnyOf` compose
events for barrier and race synchronization — GSFL's aggregation barrier
("after all groups have completed the model training process") is an
``AllOf`` over per-group completion events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.engine import Environment

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]


class Event:
    """A one-shot occurrence in simulated time.

    A scheduled event may be *cancelled* via
    :meth:`~repro.sim.engine.Environment.cancel`: its queue entry is
    skipped (never fired) and no longer counted as pending.  This is how
    the shared-link model retires a stale completion when a flow's rate
    changes, instead of leaving dead entries to accumulate in the heap.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.triggered = False
        self.cancelled = False
        #: set by Environment._schedule; cancel() is a no-op before then
        self.scheduled = False
        self.value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event immediately, passing ``value`` to waiters."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        if self.cancelled:
            raise RuntimeError("event was cancelled")
        self.triggered = True
        self.value = value
        for callback in self._callbacks:
            callback(self)
        self._callbacks.clear()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback``; runs immediately if already triggered."""
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"{type(self).__name__}({state})"


class Timeout(Event):
    """Event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        super().__init__(env)
        self.delay = delay
        env._schedule(env.now + delay, self, value)


class _Condition(Event):
    """Base for AllOf/AnyOf composition."""

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            # Trivially satisfied; fire on the next kernel step.
            env._schedule(env.now, self, [])
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is the list of values."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if all(e.triggered for e in self.events):
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Fires when the first child fires; value is ``(index, value)``."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        index = self.events.index(event)
        self.succeed((index, event.value))
