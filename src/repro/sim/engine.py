"""Discrete-event simulation kernel.

A minimal, deterministic, heap-driven event loop in the style of SimPy:
processes are Python generators that ``yield`` :class:`~repro.sim.events.Event`
objects to suspend; the kernel resumes them (sending the event's value)
when the event fires.  Ties in simulated time break by insertion order,
so runs are fully reproducible.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator

from repro.sim.events import AllOf, AnyOf, Event, Timeout

__all__ = ["Environment", "Process"]


class Process(Event):
    """A running generator coroutine; itself an event firing on return.

    The generator's ``return`` value becomes the process event's value, so
    processes can wait on each other (fork/join).
    """

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        self._generator = generator
        # Kick off on the next kernel step at current time.
        kickoff = Event(env)
        kickoff.add_callback(self._resume)
        env._schedule(env.now, kickoff, None)

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {type(target).__name__}; processes must yield Event"
            )
        target.add_callback(self._resume)


class Environment:
    """Simulation environment: clock + event queue + process spawner."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event, Any]] = []
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def _schedule(self, at: float, event: Event, value: Any) -> None:
        if at < self.now:
            raise RuntimeError(f"cannot schedule in the past ({at} < {self.now})")
        heapq.heappush(self._queue, (at, next(self._counter), event, value))

    def event(self) -> Event:
        """Create an untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Spawn a process; returns its completion event."""
        return Process(self, generator)

    def all_of(self, events: list[Event]) -> AllOf:
        """Barrier over ``events``."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Race over ``events``."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Pop and fire the next scheduled event."""
        at, _, event, value = heapq.heappop(self._queue)
        self.now = at
        if not event.triggered:
            event.succeed(value)

    def run(self, until: float | Event | None = None) -> None:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a simulated-time deadline (the clock stops exactly
        there), an :class:`Event` (stop once it has triggered), or ``None``
        (drain everything).
        """
        if isinstance(until, Event):
            while not until.triggered:
                if not self._queue:
                    raise RuntimeError(
                        "event queue drained before the awaited event triggered "
                        "(deadlocked process or missing trigger)"
                    )
                self.step()
            return
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = max(self.now, until)

    @property
    def pending(self) -> int:
        """Number of scheduled (not yet fired) queue entries."""
        return len(self._queue)
