"""Discrete-event simulation kernel.

A minimal, deterministic, heap-driven event loop in the style of SimPy:
processes are Python generators that ``yield`` :class:`~repro.sim.events.Event`
objects to suspend; the kernel resumes them (sending the event's value)
when the event fires.  Ties in simulated time break by insertion order,
so runs are fully reproducible.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator

from repro.sim.events import AllOf, AnyOf, Event, Timeout

__all__ = ["Environment", "Process"]


class Process(Event):
    """A running generator coroutine; itself an event firing on return.

    The generator's ``return`` value becomes the process event's value, so
    processes can wait on each other (fork/join).
    """

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        self._generator = generator
        # Kick off on the next kernel step at current time.
        kickoff = Event(env)
        kickoff.add_callback(self._resume)
        env._schedule(env.now, kickoff, None)

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {type(target).__name__}; processes must yield Event"
            )
        target.add_callback(self._resume)


class Environment:
    """Simulation environment: clock + event queue + process spawner.

    Scheduled events support **lazy cancellation**: :meth:`cancel` marks
    the event dead without an O(n) heap removal; dead entries are skipped
    (and discarded) when they surface at the head of the queue, and the
    heap is compacted wholesale once dead entries outnumber live ones, so
    long churny runs do not accumulate stale completions unboundedly.
    :attr:`pending` counts live entries only.
    """

    #: dead entries may outnumber live ones by this factor (and the queue
    #: must exceed the floor) before a full compaction pass runs
    _COMPACT_FLOOR = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event, Any]] = []
        self._counter = itertools.count()
        self._live = 0
        #: total events fired by :meth:`step` (scale-bench throughput)
        self.events_fired: int = 0
        #: high-water mark of live scheduled entries
        self.peak_pending: int = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def _schedule(self, at: float, event: Event, value: Any) -> None:
        if at < self.now:
            raise RuntimeError(f"cannot schedule in the past ({at} < {self.now})")
        heapq.heappush(self._queue, (at, next(self._counter), event, value))
        event.scheduled = True
        self._live += 1
        if self._live > self.peak_pending:
            self.peak_pending = self._live

    def cancel(self, event: Event) -> None:
        """Lazily cancel a scheduled, not-yet-fired event.

        The event will never fire; its queue entry is skipped when it
        reaches the head (or dropped by compaction before that).
        Cancelling an already-triggered, already-cancelled, or
        never-scheduled event is a no-op, so callers need not track
        whether a completion raced them (and a cancel on an unscheduled
        event cannot skew the live-entry accounting).
        """
        if event.triggered or event.cancelled or not event.scheduled:
            return
        event.cancelled = True
        self._live -= 1
        if (
            len(self._queue) > self._COMPACT_FLOOR
            and self._live * 2 < len(self._queue)
        ):
            self._queue = [e for e in self._queue if not e[2].cancelled]
            heapq.heapify(self._queue)

    def _skim(self) -> None:
        """Drop cancelled entries from the head of the queue."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)

    def event(self) -> Event:
        """Create an untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Spawn a process; returns its completion event."""
        return Process(self, generator)

    def all_of(self, events: list[Event]) -> AllOf:
        """Barrier over ``events``."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Race over ``events``."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Pop and fire the next live scheduled event.

        Lazily-cancelled entries at the head are skimmed first, so
        direct callers cannot trip over them; raises a clear
        :class:`RuntimeError` (not ``IndexError``) when no live entry
        remains.
        """
        self._skim()
        if not self._queue:
            raise RuntimeError("cannot step(): event queue is empty")
        at, _, event, value = heapq.heappop(self._queue)
        self.now = at
        self._live -= 1
        if not event.triggered:
            self.events_fired += 1
            event.succeed(value)

    def run(self, until: float | Event | None = None) -> None:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a simulated-time deadline (the clock stops exactly
        there), an :class:`Event` (stop once it has triggered), or ``None``
        (drain everything).
        """
        if isinstance(until, Event):
            while not until.triggered:
                self._skim()
                if not self._queue:
                    raise RuntimeError(
                        "event queue drained before the awaited event triggered "
                        "(deadlocked process or missing trigger)"
                    )
                self.step()
            return
        while True:
            self._skim()
            if not self._queue:
                break
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = max(self.now, until)

    @property
    def pending(self) -> int:
        """Number of live scheduled (not yet fired, not cancelled) entries."""
        return self._live
