"""Demand-resolving execution runtime over the discrete-event kernel.

Schemes describe **what** each protocol step needs — FLOPs on a device,
bytes over the shared wireless medium — and the runtime decides **how
long** it takes, *during replay*, from the simulation's instantaneous
state.  This inverts the old pipeline where every activity arrived
pre-priced with a fixed duration and the kernel merely re-enacted it:
with a contention-aware share policy, a transmission started while three
other pipelines are on the air runs slower than the same transmission
started alone, exactly the coupling behind the paper's GSFL-vs-SL
latency crossover.

Demand vocabulary (``float`` is shorthand for :class:`FixedDemand` —
zero-priced mode and tests):

* :class:`FixedDemand` — a pre-resolved duration;
* :class:`ComputeDemand` — FLOPs against a device's throughput; the
  runtime applies per-round straggler multipliers at resolve time and
  serializes each client device through a capacity-1 FIFO
  :class:`~repro.sim.resources.Resource`;
* :class:`TransmitDemand` — bytes over the shared medium, as one or more
  sequential :class:`TransmitLeg` s (a client→AP→client relay is two
  legs).  Each leg carries a ``rate_fn`` mapping allocated bandwidth
  (Hz) to an instantaneous bitrate with the leg's fading realization
  frozen inside, so the *realization* is drawn in protocol order at
  demand-construction time while the *duration* is resolved by the
  :class:`~repro.sim.resources.FairShareLink` at replay time.

Every demand exposes two analytic views: ``nominal_s`` (the static-share
model — the duration under the demand's declared nominal bandwidth, i.e.
the pre-refactor pricing) and ``lower_bound_s`` (the duration with the
whole medium to itself and no straggler slowdown — a true lower bound
under any share policy, since no flow can be allocated more than the
total bandwidth).

One :class:`Runtime` persists per training run: a single
:class:`~repro.sim.engine.Environment` whose clock never restarts, so
trace events carry absolute timestamps with no per-round offset
bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Callable, Generator, Union

from repro.sim.engine import Environment
from repro.sim.resources import FairShareLink, NominalShare, Resource, SharePolicy
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - type-only import (layering)
    from repro.schemes.base import Stage
    from repro.sim.events import Event
    from repro.sim.failures import FailureInjector

__all__ = [
    "FixedDemand",
    "ComputeDemand",
    "TransmitLeg",
    "TransmitDemand",
    "Demand",
    "demand_lower_bound_s",
    "demand_nominal_s",
    "demand_clients",
    "Preemption",
    "TrackRecovery",
    "TrackOutcome",
    "Runtime",
]


@dataclass(frozen=True)
class FixedDemand:
    """A pre-resolved duration (zero-priced mode, waits, tests)."""

    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError(f"negative duration: {self.duration_s}")

    @property
    def lower_bound_s(self) -> float:
        return self.duration_s

    @property
    def nominal_s(self) -> float:
        return self.duration_s


@dataclass(frozen=True)
class ComputeDemand:
    """``flops`` of work against a device running at ``flops_per_s``.

    ``client`` is ``None`` for the edge server (never straggles, never
    serialized — the paper's "abundant" edge resources); ``multiplier``
    prices batched work as a multiple of one unit (PSL's fused server
    batch is ``N×`` one group-batch step).
    """

    flops: float
    flops_per_s: float
    client: int | None = None
    multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError(f"negative flops: {self.flops}")
        if self.flops_per_s <= 0:
            raise ValueError(f"flops_per_s must be positive, got {self.flops_per_s}")

    @property
    def base_seconds(self) -> float:
        return self.flops / self.flops_per_s * self.multiplier

    @property
    def lower_bound_s(self) -> float:
        return self.base_seconds

    @property
    def nominal_s(self) -> float:
        return self.base_seconds


@dataclass(frozen=True)
class TransmitLeg:
    """One directed hop of a transmission.

    ``rate_fn`` maps allocated bandwidth in Hz to an achievable bitrate
    in bit/s, with the hop's block-fading realization frozen inside (the
    draw happened in protocol order when the demand was built).
    ``direction`` ("uplink"/"downlink", optional) labels the hop for
    per-leg trace rows, which is what lets the energy model charge a
    relay's sender TX and receiver RX separately.
    """

    nbits: float
    client: int
    rate_fn: Callable[[float], float]
    direction: str = ""


@dataclass(frozen=True)
class TransmitDemand:
    """Bytes over the shared medium: sequential legs + bandwidth context.

    ``nominal_hz`` is the static-model allocation (what the analytic
    pricing assumed, e.g. ``B/M`` for a GSFL group); ``total_hz`` is the
    whole medium, bounding any policy's allocation from above.
    """

    legs: tuple[TransmitLeg, ...]
    nominal_hz: float
    total_hz: float

    def __post_init__(self) -> None:
        if not self.legs:
            raise ValueError("TransmitDemand needs at least one leg")
        if not 0 < self.nominal_hz <= self.total_hz:
            raise ValueError(
                f"nominal_hz must be in (0, total_hz]; got "
                f"{self.nominal_hz} of {self.total_hz}"
            )

    @cached_property
    def nominal_s(self) -> float:
        """Duration under the static nominal share (pre-refactor model)."""
        return sum(leg.nbits / leg.rate_fn(self.nominal_hz) for leg in self.legs)

    @cached_property
    def lower_bound_s(self) -> float:
        """Duration with the whole medium to itself (true lower bound)."""
        return sum(leg.nbits / leg.rate_fn(self.total_hz) for leg in self.legs)


Demand = Union[float, FixedDemand, ComputeDemand, TransmitDemand]


def demand_lower_bound_s(demand: Demand) -> float:
    """Analytic lower bound of a demand's resolved duration."""
    if isinstance(demand, (int, float)):
        return float(demand)
    return demand.lower_bound_s


def demand_nominal_s(demand: Demand) -> float:
    """Static-share analytic duration of a demand (pre-refactor model)."""
    if isinstance(demand, (int, float)):
        return float(demand)
    return demand.nominal_s


def demand_clients(demand: Demand) -> frozenset[int]:
    """Client devices a demand's resolution depends on (empty for server
    work and fixed durations) — the attribution the failure model uses to
    decide whose churn can preempt an activity."""
    if isinstance(demand, ComputeDemand) and demand.client is not None:
        return frozenset((demand.client,))
    if isinstance(demand, TransmitDemand):
        return frozenset(leg.client for leg in demand.legs)
    return frozenset()


@dataclass
class _TransferProgress:
    """Partial-transfer state carried across retries of one activity.

    :meth:`FairShareLink.abort` settles the service an aborted flow had
    already received; this object keeps that settlement visible to the
    retry path, so a re-attempted :class:`TransmitDemand` resumes — legs
    already completed are skipped and the aborted leg transmits only its
    remainder (``bits_total - bits_delivered``) instead of restarting
    from zero bytes.
    """

    legs_done: int = 0
    bits_delivered: float = 0.0


class Preemption(Exception):
    """An in-flight activity was cut short by a client failure.

    Raised by the runtime's demand resolution at the absolute-clock
    instant the client's churn up-window closes; caught by
    :meth:`Runtime.run_track`, which applies the track's
    :class:`TrackRecovery` semantics.
    """

    def __init__(self, client: int, time_s: float) -> None:
        super().__init__(f"client {client} failed at t={time_s:.6f}")
        self.client = client
        self.time_s = time_s


@dataclass(frozen=True)
class TrackRecovery:
    """Protocol-level recovery semantics for a preempted activity track.

    ``resume_s(client, now)`` maps a failed client to the absolute
    instant it comes back up (the retry wait); ``max_retries`` bounds the
    number of re-attempts per track; ``mode`` selects what happens once
    the budget is spent:

    * ``"retry"`` — the track surrenders (FL / SplitFed: a client that
      stays unreachable past the budget contributes nothing this round);
    * ``"reroute"`` — the track skips the dead client's remaining
      pipeline section and resumes at the next live member's first
      activity (GSFL: the AP falls back to the next relay, re-issuing
      its cached client-model copy); when no live member follows, the
      track surrenders (the chain's upload can never reach the server).
    """

    resume_s: Callable[[int, float], "float | None"]
    max_retries: int = 2
    mode: str = "retry"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.mode not in ("retry", "reroute"):
            raise ValueError(f"unknown recovery mode {self.mode!r}")


@dataclass
class TrackOutcome:
    """What happened to one activity track under the failure model.

    ``completed`` is ``False`` exactly when the track surrendered —
    stopped before its final activities could resolve.  ``rerouted``
    lists clients whose pipeline sections were skipped (a *partial*
    round: the surviving chain still delivers).  Every abort resolves to
    exactly one retry, reroute, or surrender, so
    ``aborts == retries + len(rerouted) + (1 if surrendered else 0)``.
    """

    completed: bool = True
    aborts: int = 0
    retries: int = 0
    rerouted: list[int] = field(default_factory=list)
    surrendered: bool = False
    surrendered_client: int | None = None


class Runtime:
    """Persistent per-run execution substrate: clock + devices + medium.

    Parameters
    ----------
    total_bandwidth_hz:
        Capacity of the shared wireless medium.  ``None`` (zero-priced
        runs) resolves every transmit demand at its nominal share.
    share_policy:
        How the medium divides bandwidth among instantaneously active
        flows.  ``None`` keeps the static-subchannel semantics
        (:class:`~repro.sim.resources.NominalShare`: every flow at its
        nominal share — durations match the analytic model exactly); a
        policy such as :func:`repro.wireless.bandwidth.as_share_policy`
        makes the medium contention-aware.
    incremental_link:
        Selects the medium's incremental fast-path engines (the
        default).  ``False`` pins the dense reference recomputation —
        kept for the fleet-scale equivalence suite and perf baselines.
    """

    def __init__(
        self,
        total_bandwidth_hz: float | None = None,
        share_policy: SharePolicy | None = None,
        incremental_link: bool = True,
    ) -> None:
        self.env = Environment()
        self.medium: FairShareLink | None = None
        if total_bandwidth_hz is not None:
            self.medium = FairShareLink(
                self.env,
                total_bandwidth_hz,
                policy=share_policy or NominalShare(),
                incremental=incremental_link,
            )
        self._devices: dict[int, Resource] = {}
        #: mid-activity failure source (``None`` = activities never
        #: preempt; the ``none``/``round`` failure models leave this unset
        #: so demand resolution is event-for-event identical to a run
        #: without the abort plumbing)
        self.failure_injector: "FailureInjector | None" = None

    @property
    def now(self) -> float:
        """Absolute simulated time (never restarts within a run)."""
        return self.env.now

    def advance_to(self, t: float) -> None:
        """Advance the clock to absolute time ``t`` (waiting out churn).

        Pops any stale scheduled events on the way; a target in the past
        is a no-op.
        """
        if t > self.env.now:
            self.env.run(until=t)

    def device(self, client: int) -> Resource:
        """Capacity-1 FIFO resource serializing one client device."""
        resource = self._devices.get(client)
        if resource is None:
            resource = Resource(self.env, capacity=1)
            self._devices[client] = resource
        return resource

    # ------------------------------------------------------------------
    # round execution
    # ------------------------------------------------------------------
    def run_track(
        self,
        activities: "list",
        recorder: TraceRecorder | None,
        round_index: int,
        compute_slowdown: dict[int, float] | None = None,
        recovery: TrackRecovery | None = None,
    ) -> "TrackOutcome":
        """Process generator resolving one sequential activity track.

        Each activity's demand is resolved against the instantaneous
        simulation state and recorded with absolute timestamps.  Both the
        sync barrier (per-stage parallel tracks) and the asynchronous
        aggregation engine (one free-running pipeline per unit) are built
        from this primitive.  ``compute_slowdown`` maps client index →
        multiplicative straggler factor on that client's compute demands.

        With a :attr:`failure_injector` installed, any activity may raise
        :class:`Preemption` mid-resolution; ``recovery`` then decides the
        response per abort — wait out the client's down-window and retry
        the same activity (budgeted by ``max_retries``), re-route around
        the dead client (``mode="reroute"``), or surrender the rest of
        the track.  The generator's return value is the
        :class:`TrackOutcome` (retrieve it via ``yield from`` or the
        spawned process's event value).
        """
        env = self.env
        outcome = TrackOutcome()
        attempts = 0
        skipped: set[int] = set()
        index = 0
        # Partial-transfer resume state: fresh per activity, retained
        # across retry re-attempts of the *same* activity (same index) so
        # a resumed upload transmits only its undelivered remainder.
        progress = _TransferProgress()
        progress_index = 0
        while index < len(activities):
            act = activities[index]
            if skipped and demand_clients(act.demand) & skipped:
                # Any activity still involving a rerouted-around client
                # (its own work, or a relay leg touching it) is part of
                # the dead pipeline section: the AP's cached-copy
                # fallback replaces it at zero cost.
                index += 1
                continue
            if index != progress_index:
                progress = _TransferProgress()
                progress_index = index
            begin = env.now
            leg_log: list[tuple[TransmitLeg, float, float]] = []
            try:
                yield from self._perform(
                    act.demand, compute_slowdown, progress, leg_log
                )
            except Preemption as failure:
                outcome.aborts += 1
                resolution, jump = self._resolve_abort(
                    failure, attempts, recovery, activities, index, skipped
                )
                if recorder is not None:
                    recorder.record_abort(
                        start=begin,
                        time_s=env.now,
                        phase=act.phase,
                        actor=act.actor,
                        round_index=round_index,
                        client=failure.client,
                        resolution=resolution,
                    )
                if resolution == "retry":
                    attempts += 1
                    outcome.retries += 1
                    resume = recovery.resume_s(failure.client, env.now)
                    if resume is not None and resume > env.now:
                        yield env.timeout(resume - env.now)
                    if recorder is not None:
                        recorder.record_retry(
                            time_s=env.now,
                            actor=act.actor,
                            round_index=round_index,
                            client=failure.client,
                            attempt=attempts,
                        )
                    # Re-attempt the same activity; ``progress`` carries the
                    # settled partial transfer, so a resumed leg transmits
                    # only its remainder (compute restarts from scratch).
                    continue
                if resolution == "reroute":
                    skipped.add(failure.client)
                    outcome.rerouted.append(failure.client)
                    index = jump
                    continue
                outcome.completed = False
                outcome.surrendered = True
                outcome.surrendered_client = failure.client
                return outcome
            if recorder is not None:
                legs = getattr(act.demand, "legs", None)
                if leg_log and legs is not None and len(legs) > 1:
                    # Multi-leg transmission (client→AP→client relay):
                    # one row per hop, attributed to the hop's own client
                    # with its own airtime and payload, so downstream
                    # accounting (energy, byte totals) can charge the
                    # sender's TX and the receiver's RX separately.
                    for leg, leg_start, leg_end in leg_log:
                        recorder.record(
                            start=leg_start,
                            end=leg_end,
                            phase=act.phase,
                            actor=f"client-{leg.client}",
                            round_index=round_index,
                            nbytes=int(leg.nbits / 8 + 0.5),
                            detail=leg.direction or act.detail,
                        )
                else:
                    recorder.record(
                        start=begin,
                        end=env.now,
                        phase=act.phase,
                        actor=act.actor,
                        round_index=round_index,
                        nbytes=act.nbytes,
                        detail=act.detail,
                    )
            index += 1
        return outcome

    @staticmethod
    def _resolve_abort(
        failure: Preemption,
        attempts: int,
        recovery: TrackRecovery | None,
        activities: "list",
        index: int,
        skipped: set[int],
    ) -> tuple[str, int]:
        """Pick one abort's resolution: ``(kind, resume_index)``.

        ``kind`` is ``"retry"`` while budget remains, then ``"reroute"``
        (with the index of the next activity executable *without* any
        dead client — a relay leg still touching one would preempt again
        instantly) when the track's recovery mode allows it and such a
        live successor exists, else ``"surrender"``.
        """
        if recovery is not None and attempts < recovery.max_retries:
            return "retry", index
        if recovery is not None and recovery.mode == "reroute":
            dead = skipped | {failure.client}
            for j in range(index + 1, len(activities)):
                clients = demand_clients(activities[j].demand)
                if clients and not clients & dead:
                    return "reroute", j
        return "surrender", index

    def execute_round(
        self,
        stages: "list[Stage]",
        recorder: TraceRecorder | None,
        round_index: int,
        compute_slowdown: dict[int, float] | None = None,
        recovery: TrackRecovery | None = None,
    ) -> float:
        """Run a round's stages to completion; returns the round duration.

        Barrier semantics (one process per track, an all-of barrier
        between stages) are owned by the degenerate
        :class:`~repro.sim.server.SyncBarrier` staleness policy — this
        wrapper exists for standalone replay (tests, benchmarks,
        :func:`~repro.schemes.base.replay_stages`); the scheme driver
        calls its configured policy directly.
        """
        from repro.sim.server import SyncBarrier  # local: avoids layering cycle

        return SyncBarrier().resolve_round(
            self, stages, recorder, round_index, compute_slowdown, recovery
        )

    # ------------------------------------------------------------------
    # demand resolution
    # ------------------------------------------------------------------
    def _perform(
        self,
        demand: Demand,
        slowdown: dict[int, float] | None,
        progress: "_TransferProgress | None" = None,
        leg_log: "list[tuple[TransmitLeg, float, float]] | None" = None,
    ) -> "Generator[Event, Any, None]":
        injector = self.failure_injector
        if isinstance(demand, TransmitDemand) and self.medium is not None:
            # Resume semantics: legs a previous preempted attempt already
            # completed are skipped (``progress`` only ever advances under
            # an armed injector, so the unset-injector path is untouched).
            start_leg = progress.legs_done if progress is not None else 0
            for leg in demand.legs[start_leg:]:
                leg_begin = self.env.now
                if injector is not None:
                    yield from self._transfer_preemptible(
                        leg, demand, injector, progress
                    )
                else:
                    yield self.medium.transfer(
                        leg.nbits,
                        client=leg.client,
                        rate_fn=leg.rate_fn,
                        nominal=demand.nominal_hz,
                    )
                if leg_log is not None:
                    leg_log.append((leg, leg_begin, self.env.now))
            return
        if isinstance(demand, ComputeDemand):
            seconds = demand.base_seconds
            if slowdown and demand.client is not None:
                seconds *= slowdown.get(demand.client, 1.0)
            if demand.client is not None:
                device = self.device(demand.client)
                yield device.request()
                if injector is not None:
                    deadline = injector.up_deadline(demand.client, self.env.now)
                    if deadline is not None and deadline < self.env.now + seconds:
                        # The up-window closes before the job finishes:
                        # run to the failure instant, free the device
                        # slot, abandon the work.  (A deadline in the
                        # past means the client is already down — the
                        # job aborts before it starts.)
                        if deadline > self.env.now:
                            yield self.env.timeout(deadline - self.env.now)
                        device.release()
                        raise Preemption(demand.client, self.env.now)
                yield self.env.timeout(seconds)
                device.release()
            else:
                yield self.env.timeout(seconds)
            return
        # FixedDemand / float, or a TransmitDemand without a medium
        # (static subchannels): resolve at the nominal share.
        yield self.env.timeout(demand_nominal_s(demand))

    def _transfer_preemptible(
        self,
        leg: TransmitLeg,
        demand: TransmitDemand,
        injector: "FailureInjector",
        progress: "_TransferProgress | None" = None,
    ) -> "Generator[Event, Any, None]":
        """One leg on the shared medium, raced against its client's churn.

        The completion time of a contended flow is unknown up front (any
        membership change reschedules it), so the leg races an any-of
        against a timeout at the transmitter's up-window deadline; losing
        the race cancels the flow on the medium — shares recompute over
        the surviving transmitter set at that exact instant — and raises
        :class:`Preemption`.  Ties go to completion: the flow's scheduled
        completion entered the event queue first.

        ``progress`` carries partial-transfer state across retries: the
        leg submits only ``nbits - bits_delivered`` to the medium, and an
        abort folds the service the flow received (settled by
        :meth:`FairShareLink.abort`) back into ``progress`` so the next
        attempt resumes where this one was cut.
        """
        env = self.env
        delivered = progress.bits_delivered if progress is not None else 0.0
        remaining = leg.nbits - delivered
        deadline = injector.up_deadline(leg.client, env.now)
        if deadline is not None and deadline <= env.now:
            raise Preemption(leg.client, env.now)  # down before the leg starts
        if remaining > 0.0:
            done = self.medium.transfer(
                remaining,
                client=leg.client,
                rate_fn=leg.rate_fn,
                nominal=demand.nominal_hz,
            )
            if deadline is None:
                yield done
            else:
                yield env.any_of([done, env.timeout(deadline - env.now)])
                if not done.triggered:
                    undelivered = self.medium.abort(done)
                    if progress is not None and undelivered is not None:
                        progress.bits_delivered = leg.nbits - undelivered
                    raise Preemption(leg.client, env.now)
        if progress is not None:
            progress.legs_done += 1
            progress.bits_delivered = 0.0
