"""Shared resources for the simulation kernel.

:class:`Resource` is a counting semaphore with FIFO queueing — used to
model the edge server's limited pool of server-side model replicas (GSFL
hosts ``M`` replicas; a group must hold one to train) and per-device
compute exclusivity in the runtime.

:class:`FairShareLink` models a shared wireless medium: a fixed capacity
is divided among the flows in flight by a pluggable :class:`SharePolicy`,
and each flow's completion time is recomputed whenever its allocation
changes.  Flows may carry a ``rate_fn`` translating their allocated
capacity (e.g. bandwidth in Hz) into an instantaneous bitrate — this is
how per-client Shannon rates with frozen fading realizations ride on the
shared medium.  This captures the contention GSFL creates when all ``M``
groups transmit concurrently — the effect behind the latency crossover
between GSFL and SL for large ``M``.

Policies:

* :class:`EqualShare` — egalitarian processor sharing (the default, and
  the original behaviour: ``capacity / n_active`` each);
* :class:`NominalShare` — static subchannels: every flow holds exactly
  the nominal allocation it declared at :meth:`FairShareLink.transfer`
  time, scaled down proportionally only when the medium is
  oversubscribed.  Allocations are membership-independent, so completion
  times are never rescheduled and each flow's duration is *exactly*
  ``nbits / rate_fn(nominal)`` — the analytic static-share model.

Contention-aware policies driven by the wireless allocators live in
:func:`repro.wireless.bandwidth.as_share_policy` (structural typing; the
kernel only calls ``policy.allocate``).

Fleet-scale kernels
-------------------

The link picks one of three internal engines from the policy's
:attr:`~SharePolicy.incremental_kind` (``incremental=False`` pins the
dense reference used by the equivalence suite):

``"uniform"`` (:class:`EqualShare`, flows without ``rate_fn``)
    Classic processor-sharing virtual time: one cumulative per-flow
    service counter, a min-heap of flows keyed by the service credit at
    which each completes, and a *single* scheduled completion — the
    link's earliest — re-armed per membership change.  O(log n) per
    event instead of O(n), and O(1) heap churn instead of one push per
    flow per reallocation.  Completion *order* matches the dense engine
    exactly; times agree to float round-off (the dense engine charges
    service by chained per-epoch subtraction, this one by a running sum).

``"static"`` (:class:`NominalShare` while under capacity)
    Allocations are membership-independent, so an arrival prices and
    schedules only itself (same float expressions as the dense engine —
    completion times stay **bitwise** identical, the golden-history
    guarantee) and a departure touches nothing.  The first
    oversubscribing arrival demotes the link to the dense engine
    (settling every flow lazily first); the link re-arms the fast mode
    whenever it drains idle.

``"dense"`` (everything else, e.g. allocator-backed contended policies)
    The original algorithm: settle every flow, re-run
    :meth:`SharePolicy.allocate` over the active set, reschedule flows
    whose rate changed — now with O(1) flow removal (flows are indexed
    by their ``done`` event) and lazy cancellation of superseded
    completions, so the event queue no longer accumulates stale entries.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Callable, Sequence

from repro.sim.engine import Environment
from repro.sim.events import Event

__all__ = [
    "Resource",
    "SharePolicy",
    "EqualShare",
    "NominalShare",
    "FairShareLink",
]


class Resource:
    """Counting semaphore with FIFO grant order.

    Usage::

        grant = resource.request()
        yield grant          # suspends until a slot is free
        ...                  # critical section
        resource.release()
    """

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        grant = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            # Grant immediately but asynchronously (deterministic ordering).
            self.env._schedule(self.env.now, grant, None)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            grant = self._waiters.popleft()
            self.env._schedule(self.env.now, grant, None)
        else:
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)


@dataclass
class _Flow:
    """One in-flight transfer on a shared link."""

    remaining_bits: float
    done: Event
    last_update: float
    client: "int | None" = None
    rate_fn: "Callable[[float], float] | None" = None
    nominal: "float | None" = None
    bps: float = 0.0
    completion: Event | None = field(default=None)
    #: uniform engine: cumulative-service credit at which this flow completes
    key: float = 0.0
    #: False once finished or aborted (lazy deletion from the service heap)
    alive: bool = True


class SharePolicy:
    """Divides a link's capacity among the flows currently in flight."""

    name = "base"
    #: which link engine the policy admits: ``"uniform"`` (every active
    #: flow gets ``capacity / n`` — the link may run processor-sharing
    #: virtual time), ``"static"`` (allocations fixed at admission while
    #: feasible — the link prices each flow once), or ``"dense"`` (full
    #: recomputation on every membership change)
    incremental_kind = "dense"

    def allocate(self, flows: Sequence[_Flow], capacity: float) -> list[float]:
        """Capacity units granted to each flow (same order as ``flows``)."""
        raise NotImplementedError

    def update(
        self,
        added: Sequence[_Flow],
        removed: Sequence[_Flow],
        capacity: float,
        load: float,
    ) -> "tuple[list[float], float] | None":
        """Incremental fast path for one membership change.

        ``load`` is the policy-defined total weight of the flows active
        *before* the change (the link threads it back verbatim; zeroed
        whenever the link drains idle).  Return
        ``(allocations_for_added, new_load)`` when every existing flow
        keeps its allocation, or ``None`` to force a dense
        :meth:`allocate` over the whole active set.
        """
        return None


class EqualShare(SharePolicy):
    """Egalitarian processor sharing: ``capacity / n_active`` each."""

    name = "equal"
    incremental_kind = "uniform"

    def allocate(self, flows: Sequence[_Flow], capacity: float) -> list[float]:
        share = capacity / len(flows)
        return [share] * len(flows)


class NominalShare(SharePolicy):
    """Static subchannels: each flow holds its declared nominal allocation.

    Oversubscription (sum of nominals beyond capacity, modulo float
    round-off) scales every allocation proportionally — graceful
    congestion instead of an impossible over-capacity schedule.
    """

    name = "nominal"
    incremental_kind = "static"

    @staticmethod
    def _check_nominals(flows: Sequence[_Flow]) -> None:
        for flow in flows:
            if flow.nominal is None:
                raise ValueError(
                    "NominalShare requires every transfer to declare a "
                    "nominal allocation"
                )

    def allocate(self, flows: Sequence[_Flow], capacity: float) -> list[float]:
        self._check_nominals(flows)
        total = sum(flow.nominal for flow in flows)
        if total > capacity * (1.0 + 1e-9):
            scale = capacity / total
            return [flow.nominal * scale for flow in flows]
        return [flow.nominal for flow in flows]

    def update(
        self,
        added: Sequence[_Flow],
        removed: Sequence[_Flow],
        capacity: float,
        load: float,
    ) -> "tuple[list[float], float] | None":
        """Nominal allocations for ``added`` while the link stays feasible.

        ``load`` tracks the sum of active nominals; an arrival that would
        oversubscribe the link returns ``None`` (dense rescaling takes
        over until the link drains).
        """
        self._check_nominals(added)
        for flow in added:
            load += flow.nominal
        for flow in removed:
            load -= flow.nominal
        if load > capacity * (1.0 + 1e-9):
            return None
        return [flow.nominal for flow in added], load


class FairShareLink:
    """Shared-medium model with policy-driven capacity division.

    On every arrival or departure the remaining bits of each flow are
    charged for the service received since the last membership change,
    the policy re-allocates capacity, and completion events are re-armed
    for flows whose instantaneous bitrate changed.  Flows whose
    allocation is membership-independent (:class:`NominalShare`) keep
    their original completion time exactly.  With the default
    :class:`EqualShare` policy and no ``rate_fn``, a single flow reduces
    to ``bits / capacity`` exactly.

    ``incremental=False`` pins the dense reference engine regardless of
    policy — the semantic oracle the equivalence suite replays arbitrary
    schedules against.
    """

    def __init__(
        self,
        env: Environment,
        capacity_bps: float,
        policy: SharePolicy | None = None,
        incremental: bool = True,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity_bps must be positive, got {capacity_bps}")
        self.env = env
        self.capacity_bps = capacity_bps
        self.policy = policy if policy is not None else EqualShare()
        self.incremental = incremental
        self._flows: dict[Event, _Flow] = {}
        self._mode = self._fast_mode() if incremental else "dense"
        # static engine: policy-owned feasibility load (sum of nominals)
        self._load = 0.0
        # uniform engine: processor-sharing virtual service state
        self._service = 0.0  # cumulative per-flow service (bits)
        self._service_at = 0.0  # clock instant _service was advanced to
        self._share_bps = 0.0  # current per-flow rate (capacity / n)
        self._heap: list[tuple[float, int, _Flow]] = []
        self._heap_live = 0
        self._seq = itertools.count()
        self._head_event: Event | None = None

    def _fast_mode(self) -> str:
        return getattr(self.policy, "incremental_kind", "dense")

    def transfer(
        self,
        nbits: float,
        *,
        client: int | None = None,
        rate_fn: Callable[[float], float] | None = None,
        nominal: float | None = None,
    ) -> Event:
        """Start a transfer; returns an event fired at completion.

        ``rate_fn`` maps the flow's allocated capacity to an instantaneous
        bitrate (identity when omitted: allocated capacity *is* the
        bitrate).  ``client`` attributes the flow for client-aware
        policies; ``nominal`` declares the static-model allocation used by
        :class:`NominalShare` and as a policy weight.
        """
        if nbits <= 0:
            raise ValueError(f"nbits must be positive, got {nbits}")
        flow = _Flow(
            remaining_bits=float(nbits),
            done=Event(self.env),
            last_update=self.env.now,
            client=client,
            rate_fn=rate_fn,
            nominal=nominal,
        )
        if self._mode == "uniform":
            if rate_fn is None:
                self._uniform_add(flow)
                return flow.done
            # Per-flow bitrates break the shared-rate collapse: hand the
            # whole link to the dense engine from this instant on.
            self._demote_uniform()
        if self._mode == "static":
            admitted = self.policy.update(
                (flow,), (), self.capacity_bps, self._load
            )
            if admitted is not None:
                allocations, self._load = admitted
                self._static_admit(flow, allocations[0])
                return flow.done
            # Oversubscribed: dense rescaling over the whole active set.
            self._demote_static()
        self._dense_settle()
        self._flows[flow.done] = flow
        self._dense_reallocate()
        return flow.done

    def abort(self, done: Event) -> float | None:
        """Cancel the in-flight transfer identified by its ``done`` event.

        The flow is charged for the service it received up to *now*,
        removed from the medium, and the remaining capacity is re-divided
        over the surviving transmitters at this exact instant.  The
        flow's ``done`` event never fires — an aborted transfer delivers
        nothing — and its scheduled completion is cancelled.  Returns the
        undelivered bits, or ``None`` when the flow is not in flight
        (already completed or never started here).
        """
        flow = self._flows.get(done)
        if flow is None:
            return None
        if self._mode == "uniform":
            self._uniform_advance()
            flow.alive = False
            del self._flows[done]
            self._heap_live -= 1
            remaining = flow.key - self._service
            flow.remaining_bits = remaining if remaining > 0.0 else 0.0
            self._uniform_rearm()
            return flow.remaining_bits
        if self._mode == "static":
            self._lazy_settle(flow)
            if flow.completion is not None:
                self.env.cancel(flow.completion)
            flow.completion = None
            flow.alive = False
            del self._flows[done]
            self._static_drop_load(flow)
            if not self._flows:
                self._reset_idle()
            return flow.remaining_bits
        self._dense_settle()
        if flow.completion is not None:
            self.env.cancel(flow.completion)
        flow.completion = None
        flow.alive = False
        del self._flows[done]
        if not self._flows:
            self._reset_idle()
        else:
            self._dense_reallocate()
        return flow.remaining_bits

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------------
    # uniform engine (processor-sharing virtual time)
    # ------------------------------------------------------------------
    def _uniform_advance(self) -> None:
        """Accrue per-flow service at the rate held since the last change."""
        now = self.env.now
        if self._flows and now > self._service_at:
            self._service += (now - self._service_at) * self._share_bps
        self._service_at = now

    def _uniform_add(self, flow: _Flow) -> None:
        self._uniform_advance()
        flow.key = self._service + flow.remaining_bits
        heappush(self._heap, (flow.key, next(self._seq), flow))
        self._heap_live += 1
        self._flows[flow.done] = flow
        self._uniform_rearm()

    def _skim_heap(self) -> None:
        """Drop dead flows from the heap head; compact when they dominate."""
        heap = self._heap
        while heap and not heap[0][2].alive:
            heappop(heap)
        if len(heap) > 64 and self._heap_live * 2 < len(heap):
            self._heap = [entry for entry in heap if entry[2].alive]
            heapify(self._heap)

    def _uniform_rearm(self) -> None:
        """Re-schedule the link's earliest completion (the only live one)."""
        if self._head_event is not None:
            self.env.cancel(self._head_event)
            self._head_event = None
        self._skim_heap()
        if not self._flows:
            self._reset_idle()
            return
        self._share_bps = self.capacity_bps / len(self._flows)
        key, _, flow = self._heap[0]
        eta = (key - self._service) / self._share_bps
        if eta < 0.0:
            eta = 0.0
        completion = Event(self.env)
        self._head_event = completion
        self.env._schedule(self.env.now + eta, completion, None)
        completion.add_callback(self._make_uniform_finisher(flow, completion))

    def _make_uniform_finisher(
        self, flow: _Flow, completion: Event
    ) -> Callable[[Event], None]:
        def _finish(_: Event) -> None:
            # Superseded head (membership changed since arming): ignore.
            if completion is not self._head_event or not flow.alive:
                return
            self._head_event = None
            self._uniform_advance()
            # The armed completion is authoritative: no membership change
            # occurred since it was scheduled, so the head flow is done
            # now regardless of float residue in its service credit.
            heappop(self._heap)
            self._heap_live -= 1
            flow.alive = False
            flow.remaining_bits = 0.0
            del self._flows[flow.done]
            self._uniform_rearm()
            flow.done.succeed()

        return _finish

    # ------------------------------------------------------------------
    # static engine (membership-independent allocations)
    # ------------------------------------------------------------------
    def _static_admit(self, flow: _Flow, allocated: float) -> None:
        """Price and schedule one admitted flow; nobody else is touched."""
        bps = flow.rate_fn(allocated) if flow.rate_fn is not None else allocated
        flow.bps = bps
        self._flows[flow.done] = flow
        if bps <= 0.0:
            # Starved at its own subchannel: stalls forever (as the dense
            # engine would — the same rate recomputes at every change).
            flow.completion = None
            return
        completion = Event(self.env)
        flow.completion = completion
        eta = flow.remaining_bits / bps
        self.env._schedule(self.env.now + eta, completion, None)
        completion.add_callback(self._make_static_finisher(flow, completion))

    def _static_drop_load(self, flow: _Flow) -> None:
        dropped = self.policy.update((), (flow,), self.capacity_bps, self._load)
        if dropped is not None:
            self._load = dropped[1]

    def _make_static_finisher(
        self, flow: _Flow, completion: Event
    ) -> Callable[[Event], None]:
        def _finish(_: Event) -> None:
            if (
                flow.completion is not completion
                or flow.done.triggered
                or not flow.alive
            ):
                return
            flow.remaining_bits = 0.0
            flow.alive = False
            del self._flows[flow.done]
            self._static_drop_load(flow)
            if not self._flows:
                self._reset_idle()
            flow.done.succeed()

        return _finish

    def _lazy_settle(self, flow: _Flow) -> None:
        """Charge one flow for the service since its last settlement."""
        elapsed = self.env.now - flow.last_update
        if elapsed > 0.0 and flow.bps > 0.0:
            flow.remaining_bits = max(
                0.0, flow.remaining_bits - elapsed * flow.bps
            )
        flow.last_update = self.env.now

    # ------------------------------------------------------------------
    # engine demotion / idle reset
    # ------------------------------------------------------------------
    def _demote_uniform(self) -> None:
        """Materialize uniform-engine state into dense per-flow fields."""
        self._uniform_advance()
        if self._head_event is not None:
            self.env.cancel(self._head_event)
            self._head_event = None
        now = self.env.now
        for flow in self._flows.values():
            remaining = flow.key - self._service
            flow.remaining_bits = remaining if remaining > 0.0 else 0.0
            flow.last_update = now
            flow.bps = self._share_bps
            flow.completion = None  # dense reallocation re-arms everyone
        self._heap.clear()
        self._heap_live = 0
        self._mode = "dense"

    def _demote_static(self) -> None:
        """Settle every flow lazily; dense rescaling takes over.

        Static-era completions are cancelled so the dense reallocation
        re-arms every flow with a *dense* finisher.  A static finisher
        surviving into dense mode would complete its flow without
        re-dividing the medium over the survivors — reachable when a
        clamping ``rate_fn`` keeps a flow's bitrate unchanged under
        rescaling, so :meth:`_dense_reallocate` would otherwise let the
        stale completion stand.
        """
        for flow in self._flows.values():
            self._lazy_settle(flow)
            if flow.completion is not None:
                self.env.cancel(flow.completion)
            flow.completion = None  # dense reallocation re-arms everyone
        self._mode = "dense"

    def _reset_idle(self) -> None:
        """Drained links zero their accumulators and re-arm the fast mode."""
        self._load = 0.0
        self._service = 0.0
        self._service_at = self.env.now
        self._share_bps = 0.0
        self._heap.clear()
        self._heap_live = 0
        if self._head_event is not None:
            self.env.cancel(self._head_event)
            self._head_event = None
        if self.incremental:
            self._mode = self._fast_mode()

    # ------------------------------------------------------------------
    # dense engine (full recomputation — the reference semantics)
    # ------------------------------------------------------------------
    def _dense_settle(self) -> None:
        """Charge elapsed service to every active flow."""
        now = self.env.now
        for flow in self._flows.values():
            elapsed = now - flow.last_update
            if elapsed > 0.0 and flow.bps > 0.0:
                flow.remaining_bits = max(0.0, flow.remaining_bits - elapsed * flow.bps)
            flow.last_update = now

    def _dense_reallocate(self) -> None:
        """Re-divide capacity; re-arm flows whose bitrate changed."""
        if not self._flows:
            return
        flows = list(self._flows.values())
        allocations = self.policy.allocate(flows, self.capacity_bps)
        for flow, allocated in zip(flows, allocations):
            bps = flow.rate_fn(allocated) if flow.rate_fn is not None else allocated
            if flow.completion is not None and bps == flow.bps:
                continue  # unchanged rate: the scheduled completion stands
            flow.bps = bps
            if flow.completion is not None:
                self.env.cancel(flow.completion)
            if bps <= 0.0:
                # Starved flow: stalls until the next membership change.
                flow.completion = None
                continue
            completion = Event(self.env)
            flow.completion = completion
            eta = flow.remaining_bits / bps
            self.env._schedule(self.env.now + eta, completion, None)
            completion.add_callback(self._make_dense_finisher(flow, completion))

    def _make_dense_finisher(
        self, flow: _Flow, completion: Event
    ) -> Callable[[Event], None]:
        def _finish(_: Event) -> None:
            # Stale completion (rate changed since scheduling): ignore.
            if flow.completion is not completion or flow.done.triggered:
                return
            # The live completion event is authoritative: the flow's rate
            # has not changed since it was scheduled, so the transfer is
            # done now regardless of float residue in remaining_bits.
            self._dense_settle()
            flow.remaining_bits = 0.0
            flow.alive = False
            del self._flows[flow.done]
            if not self._flows:
                self._reset_idle()
            else:
                self._dense_reallocate()
            flow.done.succeed()

        return _finish
