"""Shared resources for the simulation kernel.

:class:`Resource` is a counting semaphore with FIFO queueing — used to
model the edge server's limited pool of server-side model replicas (GSFL
hosts ``M`` replicas; a group must hold one to train) and per-device
compute exclusivity in the runtime.

:class:`FairShareLink` models a shared wireless medium: a fixed capacity
is divided among the flows in flight by a pluggable :class:`SharePolicy`,
and each flow's completion time is recomputed whenever its allocation
changes.  Flows may carry a ``rate_fn`` translating their allocated
capacity (e.g. bandwidth in Hz) into an instantaneous bitrate — this is
how per-client Shannon rates with frozen fading realizations ride on the
shared medium.  This captures the contention GSFL creates when all ``M``
groups transmit concurrently — the effect behind the latency crossover
between GSFL and SL for large ``M``.

Policies:

* :class:`EqualShare` — egalitarian processor sharing (the default, and
  the original behaviour: ``capacity / n_active`` each);
* :class:`NominalShare` — static subchannels: every flow holds exactly
  the nominal allocation it declared at :meth:`FairShareLink.transfer`
  time, scaled down proportionally only when the medium is
  oversubscribed.  Allocations are membership-independent, so completion
  times are never rescheduled and each flow's duration is *exactly*
  ``nbits / rate_fn(nominal)`` — the analytic static-share model.

Contention-aware policies driven by the wireless allocators live in
:func:`repro.wireless.bandwidth.as_share_policy` (structural typing; the
kernel only calls ``policy.allocate``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.sim.engine import Environment
from repro.sim.events import Event

__all__ = [
    "Resource",
    "SharePolicy",
    "EqualShare",
    "NominalShare",
    "FairShareLink",
]


class Resource:
    """Counting semaphore with FIFO grant order.

    Usage::

        grant = resource.request()
        yield grant          # suspends until a slot is free
        ...                  # critical section
        resource.release()
    """

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        grant = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            # Grant immediately but asynchronously (deterministic ordering).
            self.env._schedule(self.env.now, grant, None)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            grant = self._waiters.popleft()
            self.env._schedule(self.env.now, grant, None)
        else:
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)


@dataclass
class _Flow:
    """One in-flight transfer on a shared link."""

    remaining_bits: float
    done: Event
    last_update: float
    client: "int | None" = None
    rate_fn: "Callable[[float], float] | None" = None
    nominal: "float | None" = None
    bps: float = 0.0
    completion: Event | None = field(default=None)


class SharePolicy:
    """Divides a link's capacity among the flows currently in flight."""

    name = "base"

    def allocate(self, flows: Sequence[_Flow], capacity: float) -> list[float]:
        """Capacity units granted to each flow (same order as ``flows``)."""
        raise NotImplementedError


class EqualShare(SharePolicy):
    """Egalitarian processor sharing: ``capacity / n_active`` each."""

    name = "equal"

    def allocate(self, flows: Sequence[_Flow], capacity: float) -> list[float]:
        share = capacity / len(flows)
        return [share] * len(flows)


class NominalShare(SharePolicy):
    """Static subchannels: each flow holds its declared nominal allocation.

    Oversubscription (sum of nominals beyond capacity, modulo float
    round-off) scales every allocation proportionally — graceful
    congestion instead of an impossible over-capacity schedule.
    """

    name = "nominal"

    def allocate(self, flows: Sequence[_Flow], capacity: float) -> list[float]:
        for flow in flows:
            if flow.nominal is None:
                raise ValueError(
                    "NominalShare requires every transfer to declare a "
                    "nominal allocation"
                )
        total = sum(flow.nominal for flow in flows)
        if total > capacity * (1.0 + 1e-9):
            scale = capacity / total
            return [flow.nominal * scale for flow in flows]
        return [flow.nominal for flow in flows]


class FairShareLink:
    """Shared-medium model with policy-driven capacity division.

    On every arrival or departure the remaining bits of each flow are
    decremented by the service received since the last membership change,
    the policy re-allocates capacity, and completion events are
    rescheduled for flows whose instantaneous bitrate changed.  Flows
    whose allocation is membership-independent (:class:`NominalShare`)
    keep their original completion time exactly.  With the default
    :class:`EqualShare` policy and no ``rate_fn``, a single flow reduces
    to ``bits / capacity`` exactly.
    """

    def __init__(
        self,
        env: Environment,
        capacity_bps: float,
        policy: SharePolicy | None = None,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity_bps must be positive, got {capacity_bps}")
        self.env = env
        self.capacity_bps = capacity_bps
        self.policy = policy if policy is not None else EqualShare()
        self._flows: list[_Flow] = []

    def transfer(
        self,
        nbits: float,
        *,
        client: int | None = None,
        rate_fn: Callable[[float], float] | None = None,
        nominal: float | None = None,
    ) -> Event:
        """Start a transfer; returns an event fired at completion.

        ``rate_fn`` maps the flow's allocated capacity to an instantaneous
        bitrate (identity when omitted: allocated capacity *is* the
        bitrate).  ``client`` attributes the flow for client-aware
        policies; ``nominal`` declares the static-model allocation used by
        :class:`NominalShare` and as a policy weight.
        """
        if nbits <= 0:
            raise ValueError(f"nbits must be positive, got {nbits}")
        self._settle()
        flow = _Flow(
            remaining_bits=float(nbits),
            done=Event(self.env),
            last_update=self.env.now,
            client=client,
            rate_fn=rate_fn,
            nominal=nominal,
        )
        self._flows.append(flow)
        self._reallocate()
        return flow.done

    def abort(self, done: Event) -> float | None:
        """Cancel the in-flight transfer identified by its ``done`` event.

        The flow is charged for the service it received up to *now*,
        removed from the medium, and the remaining capacity is re-divided
        over the surviving transmitters at this exact instant.  The
        flow's ``done`` event never fires — an aborted transfer delivers
        nothing — and any already-scheduled completion for it becomes
        stale.  Returns the undelivered bits, or ``None`` when the flow
        is not in flight (already completed or never started here).
        """
        for flow in self._flows:
            if flow.done is done:
                break
        else:
            return None
        self._settle()
        # Invalidate the scheduled completion: the finisher callback
        # checks identity against ``flow.completion`` and bails.
        flow.completion = None
        self._flows.remove(flow)
        self._reallocate()
        return flow.remaining_bits

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Charge elapsed service to every active flow."""
        now = self.env.now
        for flow in self._flows:
            elapsed = now - flow.last_update
            if elapsed > 0.0 and flow.bps > 0.0:
                flow.remaining_bits = max(0.0, flow.remaining_bits - elapsed * flow.bps)
            flow.last_update = now

    def _reallocate(self) -> None:
        """Re-divide capacity; reschedule flows whose bitrate changed."""
        if not self._flows:
            return
        allocations = self.policy.allocate(list(self._flows), self.capacity_bps)
        for flow, allocated in zip(self._flows, allocations):
            bps = flow.rate_fn(allocated) if flow.rate_fn is not None else allocated
            if flow.completion is not None and bps == flow.bps:
                continue  # unchanged rate: the scheduled completion stands
            flow.bps = bps
            if bps <= 0.0:
                # Starved flow: stalls until the next membership change.
                flow.completion = None
                continue
            completion = Event(self.env)
            flow.completion = completion
            eta = flow.remaining_bits / bps
            self.env._schedule(self.env.now + eta, completion, None)
            completion.add_callback(self._make_finisher(flow, completion))

    def _make_finisher(self, flow: _Flow, completion: Event):
        def _finish(_: Event) -> None:
            # Stale completion (rate changed since scheduling): ignore.
            if flow.completion is not completion or flow.done.triggered:
                return
            # The live completion event is authoritative: the flow's rate
            # has not changed since it was scheduled, so the transfer is
            # done now regardless of float residue in remaining_bits.
            self._settle()
            flow.remaining_bits = 0.0
            self._flows.remove(flow)
            self._reallocate()
            flow.done.succeed()

        return _finish
