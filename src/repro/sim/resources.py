"""Shared resources for the simulation kernel.

:class:`Resource` is a counting semaphore with FIFO queueing — used to
model the edge server's limited pool of server-side model replicas (GSFL
hosts ``M`` replicas; a group must hold one to train).

:class:`FairShareLink` models a shared wireless medium as an egalitarian
processor-sharing queue: ``capacity_bps`` is divided equally among the
flows in flight, and each flow's completion time is recomputed whenever
membership changes.  This captures the contention GSFL creates when all
``M`` groups transmit concurrently — the effect behind the latency
crossover between GSFL and SL for large ``M``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sim.engine import Environment
from repro.sim.events import Event

__all__ = ["Resource", "FairShareLink"]


class Resource:
    """Counting semaphore with FIFO grant order.

    Usage::

        grant = resource.request()
        yield grant          # suspends until a slot is free
        ...                  # critical section
        resource.release()
    """

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        grant = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            # Grant immediately but asynchronously (deterministic ordering).
            self.env._schedule(self.env.now, grant, None)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            grant = self._waiters.popleft()
            self.env._schedule(self.env.now, grant, None)
        else:
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)


@dataclass
class _Flow:
    """One in-flight transfer on a shared link."""

    remaining_bits: float
    done: Event
    last_update: float
    completion: Event | None = field(default=None)


class FairShareLink:
    """Egalitarian processor-sharing model of a shared medium.

    All active flows receive ``capacity_bps / n_active``.  On every arrival
    or departure the remaining bits of each flow are decremented by the
    service received since the last membership change and completion events
    are rescheduled.  With a single flow this reduces to
    ``bits / capacity_bps`` exactly.
    """

    def __init__(self, env: Environment, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity_bps must be positive, got {capacity_bps}")
        self.env = env
        self.capacity_bps = capacity_bps
        self._flows: list[_Flow] = []

    def transfer(self, nbits: float) -> Event:
        """Start a transfer; returns an event fired at completion."""
        if nbits <= 0:
            raise ValueError(f"nbits must be positive, got {nbits}")
        done = Event(self.env)
        self._settle()
        self._flows.append(_Flow(remaining_bits=float(nbits), done=done, last_update=self.env.now))
        self._reschedule()
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rate_per_flow(self) -> float:
        return self.capacity_bps / max(len(self._flows), 1)

    def _settle(self) -> None:
        """Charge elapsed service to every active flow."""
        now = self.env.now
        rate = self._rate_per_flow()
        for flow in self._flows:
            elapsed = now - flow.last_update
            flow.remaining_bits = max(0.0, flow.remaining_bits - elapsed * rate)
            flow.last_update = now

    def _reschedule(self) -> None:
        """Recompute completion times for all flows after a change."""
        rate = self._rate_per_flow()
        for flow in self._flows:
            # Invalidate any previously scheduled completion by swapping in
            # a fresh internal event.
            completion = Event(self.env)
            flow.completion = completion
            eta = flow.remaining_bits / rate
            self.env._schedule(self.env.now + eta, completion, None)
            completion.add_callback(self._make_finisher(flow, completion))

    def _make_finisher(self, flow: _Flow, completion: Event):
        def _finish(_: Event) -> None:
            # Stale completion (membership changed since scheduling): ignore.
            if flow.completion is not completion or flow.done.triggered:
                return
            self._settle()
            if flow.remaining_bits > 1e-9:
                return  # numerical guard; a reschedule will finish it
            self._flows.remove(flow)
            self._reschedule()
            flow.done.succeed()

        return _finish
