"""Mid-activity failure injection for the execution runtime.

Under ``failure_model="mid-activity"`` the churn trace no longer resolves
only at round boundaries: the instant a client's up-window closes, its
in-flight transmission is cancelled on the shared medium and its running
compute job is cut short, at the exact absolute-clock toggle time of the
availability trace.  :class:`FailureInjector` is the thin adapter the
:class:`~repro.sim.runtime.Runtime` queries while resolving demands — it
answers two questions about one client:

* :meth:`up_deadline` — until when may an activity started *now* run
  before the client fails?  (``now`` itself when the client is already
  down, so the activity aborts before it begins.)
* :meth:`recovery_s` — when does a failed client come back up?  (The
  retry-based recovery policies wait exactly this long before
  re-attempting the aborted activity.)

The injector is deliberately duck-typed over the dynamics realization
(:class:`repro.experiments.dynamics.ClientDynamics` in production,
scripted stand-ins in tests) so the simulation kernel keeps zero
dependency on the experiments layer.
"""

from __future__ import annotations

__all__ = ["FailureInjector"]


class FailureInjector:
    """Resolves a churn trace against in-flight activities.

    ``dynamics`` must provide ``available_at(client, t)``,
    ``next_failure_s(client, t)`` and ``next_recovery_s(t, clients=...)``
    — the availability-trace surface of ``ClientDynamics``.
    """

    def __init__(self, dynamics: object) -> None:
        self.dynamics = dynamics

    def up_deadline(self, client: int, now: float) -> float | None:
        """Latest instant work of ``client`` started at ``now`` may run to.

        Returns ``now`` itself when the client is already inside a
        down-window (the caller must abort immediately), the absolute end
        of the current up-window otherwise, or ``None`` when the trace
        places no failure on this client (churn disabled).
        """
        if not self.dynamics.available_at(client, now):
            return now
        return self.dynamics.next_failure_s(client, now)

    def recovery_s(self, client: int, now: float) -> float | None:
        """Absolute instant ``client`` next comes back up (``None`` when
        it is not down at ``now`` — retry immediately)."""
        return self.dynamics.next_recovery_s(now, clients=[client])
