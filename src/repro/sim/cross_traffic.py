"""Background cross-traffic on the shared wireless medium.

The DES medium only ever carried the training protocol's own flows; a
real cell also serves everyone else.  This module arms *background burst
sources* on a runtime's :class:`~repro.sim.resources.FairShareLink`:
each source idles for an exponential gap, then ships one burst that
declares a nominal share of ``load × capacity``.  While a burst overlaps
foreground transmissions the static (:class:`NominalShare`) policy's
declared loads oversubscribe the link, and every flow — foreground
included — is proportionally squeezed, exactly the transient congestion
bursty neighbours inflict on a training round.

Sources are plain DES processes on the scheme's persistent environment;
the kernel only runs until the scheme's own completion events, so
perpetual background generators are safe (pending burst events die with
the run).  Cross-traffic requires the ``static`` medium policy:
allocator-backed contended policies index flows by client id and have no
notion of an anonymous background transmitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

import numpy as np

from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - type-only imports (layering)
    from repro.sim.engine import Environment
    from repro.sim.events import Event
    from repro.sim.resources import FairShareLink
    from repro.sim.runtime import Runtime

__all__ = ["CrossTrafficConfig", "start_cross_traffic"]


@dataclass(frozen=True)
class CrossTrafficConfig:
    """Declarative description of background link load.

    ``load`` is each burst's declared nominal share as a fraction of the
    link capacity; ``burst_bits / (load * capacity)`` is a burst's
    uncontended duration, and ``mean_idle_s`` the mean exponential gap
    between one source's bursts.
    """

    num_sources: int = 1
    mean_idle_s: float = 0.1
    burst_bits: float = 2e6
    load: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_sources", self.num_sources)
        check_positive("mean_idle_s", self.mean_idle_s)
        check_positive("burst_bits", self.burst_bits)
        if not 0.0 < self.load <= 1.0:
            raise ValueError(f"load must be in (0, 1], got {self.load}")


def _burst_source(
    env: "Environment",
    medium: "FairShareLink",
    rng: np.random.Generator,
    config: CrossTrafficConfig,
) -> "Generator[Event, Any, None]":
    nominal_bps = config.load * medium.capacity_bps
    while True:
        yield env.timeout(float(rng.exponential(config.mean_idle_s)))
        # No rate_fn: the allocated capacity *is* the bitrate, so the
        # burst competes for raw link capacity against every live flow.
        yield medium.transfer(config.burst_bits, nominal=nominal_bps)


def start_cross_traffic(runtime: "Runtime", config: CrossTrafficConfig) -> int:
    """Arm ``config.num_sources`` burst processes on ``runtime``'s medium.

    Returns the number of sources started (0 for zero-priced runtimes
    with no medium).  Each source draws from its own generator spawned
    off ``config.seed``, so the background arrival pattern is frozen per
    scenario and independent of the foreground protocol.
    """
    medium = runtime.medium
    if medium is None:
        return 0
    root = np.random.SeedSequence([config.seed, 0xC505])
    for child in root.spawn(config.num_sources):
        rng = np.random.default_rng(child)
        runtime.env.process(_burst_source(runtime.env, medium, rng, config))
    return config.num_sources
