"""Latency trace recording.

Every simulated activity (computation, transmission, waiting, aggregation)
is logged as a :class:`TraceEvent`.  The per-phase/per-actor aggregations
drive the latency-breakdown benchmark and make the simulator auditable:
the sum of a round's critical-path events must equal the round latency.

Under the mid-activity failure model the recorder additionally logs every
preemption as an :class:`AbortEvent` (with its retry/reroute/surrender
resolution) and every recovery re-attempt as a :class:`RetryEvent` —
the ``activity_abort`` / ``retry`` rows of the JSONL trace export.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.devtools.trace_schema import validate_row

__all__ = [
    "TraceEvent",
    "AbortEvent",
    "RetryEvent",
    "RegroupEvent",
    "TraceRecorder",
    "PHASES",
    "ABORT_RESOLUTIONS",
]

#: canonical phase names used across the schemes
PHASES = (
    "model_distribution",
    "client_compute",
    "uplink_smashed",
    "server_compute",
    "downlink_gradient",
    "model_relay",
    "model_upload",
    "model_download",
    "aggregation",
    "data_upload",
    "encode",
    "decode",
    "wait",
)

#: how a preempted activity was resolved (see ``TrackRecovery``)
ABORT_RESOLUTIONS = ("retry", "reroute", "surrender")


def _validated(rows: "list[dict[str, object]]") -> "list[dict[str, object]]":
    """Check rendered rows against the canonical trace-schema registry."""
    for row in rows:
        validate_row(row)
    return rows


@dataclass(frozen=True)
class TraceEvent:
    """One timed activity in the simulation."""

    start: float
    end: float
    phase: str
    actor: str
    round_index: int
    nbytes: int = 0
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"event ends before it starts: {self}")


@dataclass(frozen=True)
class AbortEvent:
    """One mid-activity preemption: the activity that started at
    ``start`` was cut short at ``time_s`` by ``client`` failing, and the
    track resolved it as ``resolution`` (retry / reroute / surrender)."""

    start: float
    time_s: float
    phase: str
    actor: str
    round_index: int
    client: int
    resolution: str

    def __post_init__(self) -> None:
        if self.time_s < self.start:
            raise ValueError(f"abort precedes the activity start: {self}")


@dataclass(frozen=True)
class RetryEvent:
    """One recovery re-attempt: ``actor`` re-runs its aborted activity at
    ``time_s`` (after waiting out ``client``'s down-window); ``attempt``
    counts re-attempts within the track (1-based, bounded by the retry
    budget)."""

    time_s: float
    actor: str
    round_index: int
    client: int
    attempt: int


@dataclass(frozen=True)
class RegroupEvent:
    """One between-round fleet re-partition: ``policy`` produced ``groups``
    at the start of ``round_index`` (``changed`` is ``False`` when the
    policy saw no signal and returned the partition untouched)."""

    time_s: float
    round_index: int
    policy: str
    groups: tuple[tuple[int, ...], ...]
    changed: bool


class TraceRecorder:
    """Accumulates :class:`TraceEvent` rows with cheap aggregation helpers."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.aborts: list[AbortEvent] = []
        self.retries: list[RetryEvent] = []
        self.regroups: list[RegroupEvent] = []

    def record(
        self,
        start: float,
        end: float,
        phase: str,
        actor: str,
        round_index: int,
        nbytes: int = 0,
        detail: str = "",
    ) -> TraceEvent:
        """Append one event (phase must be a canonical phase name)."""
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}; expected one of {PHASES}")
        event = TraceEvent(start, end, phase, actor, round_index, nbytes, detail)
        self.events.append(event)
        return event

    def record_abort(
        self,
        start: float,
        time_s: float,
        phase: str,
        actor: str,
        round_index: int,
        client: int,
        resolution: str,
    ) -> AbortEvent:
        """Append one preemption (phase and resolution must be canonical)."""
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}; expected one of {PHASES}")
        if resolution not in ABORT_RESOLUTIONS:
            raise ValueError(
                f"unknown abort resolution {resolution!r}; "
                f"expected one of {ABORT_RESOLUTIONS}"
            )
        event = AbortEvent(start, time_s, phase, actor, round_index, client, resolution)
        self.aborts.append(event)
        return event

    def record_retry(
        self, time_s: float, actor: str, round_index: int, client: int, attempt: int
    ) -> RetryEvent:
        """Append one recovery re-attempt."""
        event = RetryEvent(time_s, actor, round_index, client, attempt)
        self.retries.append(event)
        return event

    def record_regroup(
        self,
        time_s: float,
        round_index: int,
        policy: str,
        groups: "list[list[int]]",
        changed: bool,
    ) -> RegroupEvent:
        """Append one between-round re-partition (the ``regroup`` JSONL row)."""
        event = RegroupEvent(
            time_s,
            round_index,
            policy,
            tuple(tuple(g) for g in groups),
            changed,
        )
        self.regroups.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    # aggregations
    # ------------------------------------------------------------------
    def total_time_by_phase(self) -> dict[str, float]:
        """Summed durations per phase (overlapping events both count)."""
        totals: dict[str, float] = defaultdict(float)
        for event in self.events:
            totals[event.phase] += event.duration
        return dict(totals)

    def total_bytes_by_phase(self) -> dict[str, int]:
        """Summed payload bytes per phase."""
        totals: dict[str, int] = defaultdict(int)
        for event in self.events:
            totals[event.phase] += event.nbytes
        return dict(totals)

    def events_in_round(self, round_index: int) -> list[TraceEvent]:
        return [e for e in self.events if e.round_index == round_index]

    def round_span(self, round_index: int) -> tuple[float, float]:
        """(first start, last end) over a round's events."""
        events = self.events_in_round(round_index)
        if not events:
            raise ValueError(f"no events recorded for round {round_index}")
        return min(e.start for e in events), max(e.end for e in events)

    def actors(self) -> list[str]:
        return sorted({e.actor for e in self.events})

    def busy_time(self, actor: str) -> float:
        """Total non-wait busy time of one actor."""
        return sum(e.duration for e in self.events if e.actor == actor and e.phase != "wait")

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self.events)

    def to_rows(self) -> "list[dict[str, object]]":
        """Events as plain dicts (JSONL export, external tooling).

        Every renderer below validates its rows against the canonical
        registry (:mod:`repro.devtools.trace_schema`), so a field added
        here without registering it fails at the first export.
        """
        return _validated([
            {
                "type": "activity",
                "start_s": e.start,
                "end_s": e.end,
                "duration_s": e.duration,
                "phase": e.phase,
                "actor": e.actor,
                "round": e.round_index,
                "nbytes": e.nbytes,
                "detail": e.detail,
            }
            for e in self.events
        ])

    def abort_rows(self) -> "list[dict[str, object]]":
        """Preemptions as plain dicts (the ``activity_abort`` JSONL rows)."""
        return _validated([
            {
                "type": "activity_abort",
                "start_s": e.start,
                "time_s": e.time_s,
                "phase": e.phase,
                "actor": e.actor,
                "round": e.round_index,
                "client": e.client,
                "resolution": e.resolution,
            }
            for e in self.aborts
        ])

    def retry_rows(self) -> "list[dict[str, object]]":
        """Recovery re-attempts as plain dicts (the ``retry`` JSONL rows)."""
        return _validated([
            {
                "type": "retry",
                "time_s": e.time_s,
                "actor": e.actor,
                "round": e.round_index,
                "client": e.client,
                "attempt": e.attempt,
            }
            for e in self.retries
        ])

    def regroup_rows(self) -> "list[dict[str, object]]":
        """Re-partitions as plain dicts (the ``regroup`` JSONL rows)."""
        return _validated([
            {
                "type": "regroup",
                "time_s": e.time_s,
                "round": e.round_index,
                "policy": e.policy,
                "groups": [list(g) for g in e.groups],
                "changed": e.changed,
            }
            for e in self.regroups
        ])

    def filter(
        self, phases: Iterable[str] | None = None, actor_prefix: str | None = None
    ) -> list[TraceEvent]:
        """Events matching the given phases and/or actor-name prefix."""
        phase_set = set(phases) if phases is not None else None
        out = []
        for event in self.events:
            if phase_set is not None and event.phase not in phase_set:
                continue
            if actor_prefix is not None and not event.actor.startswith(actor_prefix):
                continue
            out.append(event)
        return out
