"""Pluggable transport codecs: payload encoding as a studied axis.

The paper fixes the wire format at float32; this module makes it a
policy.  A :class:`TransportCodec` owns three things the rest of the
stack threads through:

* **wire size** — :meth:`~TransportCodec.wire_bytes` maps a scalar count
  to the bytes that actually hit the wire, replacing the raw
  ``4 * scalars`` fed into ``TransmitLeg.nbits`` for smashed-data,
  gradient, and model legs;
* **codec compute** — :meth:`~TransportCodec.encode_flops` /
  :meth:`~TransportCodec.decode_flops` price the transform on the owning
  device (``ComputeDemand``s emitted by the pricing layer);
* **wire semantics** — :meth:`~TransportCodec.apply` round-trips a
  tensor so the receiver trains on exactly what the codec preserved
  (:meth:`~TransportCodec.apply_state` does the same for a state dict).

``float32`` is the identity codec and the default: it declares itself
lossless, so every caller skips the transform, emits no encode/decode
activities, and draws no extra fading — runs are bitwise identical to a
codec-unaware build.

Codecs are named so the CLI can select them: ``float32``, ``int8``,
``intk:K`` (uniform affine via :mod:`repro.nn.quantize`), and
``topk:F`` (magnitude-sparsified deltas keeping fraction ``F``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.quantize import QuantizedArray, simulate_wire
from repro.nn.serialize import WIRE_BYTES_PER_SCALAR

__all__ = [
    "TransportCodec",
    "Float32Codec",
    "IntKCodec",
    "TopKCodec",
    "parse_transport",
    "TRANSPORT_CODECS",
]

#: wire cost of one kept top-k entry: float32 value + uint32 flat index
TOPK_BYTES_PER_ENTRY = 8


class TransportCodec:
    """Interface every transport codec implements."""

    #: canonical spec string (round-trips through :func:`parse_transport`)
    name: str = ""

    @property
    def lossy(self) -> bool:
        """False only for the identity codec — the bitwise-parity gate."""
        return True

    def wire_bytes(self, num_scalars: int) -> int:
        """Bytes on the wire for a payload of ``num_scalars`` floats."""
        raise NotImplementedError

    def encode_flops(self, num_scalars: int) -> float:
        """FLOPs the sender spends encoding ``num_scalars`` floats."""
        raise NotImplementedError

    def decode_flops(self, num_scalars: int) -> float:
        """FLOPs the receiver spends decoding back to floats."""
        raise NotImplementedError

    def apply(self, x: np.ndarray) -> np.ndarray:
        """What the receiver sees: ``decode(encode(x))``, input dtype kept."""
        raise NotImplementedError

    def apply_state(self, state: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Round-trip every float tensor of a model state through the wire."""
        if not self.lossy:
            return state
        out = {}
        for key, value in state.items():
            arr = np.asarray(value)
            if arr.size and np.issubdtype(arr.dtype, np.floating):
                arr = self.apply(arr)
            out[key] = arr
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


@dataclass(frozen=True)
class Float32Codec(TransportCodec):
    """Identity codec: raw float32 scalars, zero codec compute."""

    name: str = "float32"

    @property
    def lossy(self) -> bool:
        return False

    def wire_bytes(self, num_scalars: int) -> int:
        return num_scalars * WIRE_BYTES_PER_SCALAR

    def encode_flops(self, num_scalars: int) -> float:
        return 0.0

    def decode_flops(self, num_scalars: int) -> float:
        return 0.0

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x)


@dataclass(frozen=True)
class IntKCodec(TransportCodec):
    """Uniform affine quantization to ``num_bits`` (``int8`` = 8 bits).

    Wire accounting matches :attr:`QuantizedArray.payload_bytes` for a
    non-degenerate tensor: packed codes plus the two 8-byte parameters.
    """

    num_bits: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.num_bits <= 16:
            raise ValueError(
                f"intk num_bits must be in [1, 16], got {self.num_bits}"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return "int8" if self.num_bits == 8 else f"intk:{self.num_bits}"

    def wire_bytes(self, num_scalars: int) -> int:
        if num_scalars == 0:
            return QuantizedArray.PARAMS_BYTES
        packed = int(np.ceil(num_scalars * self.num_bits / 8))
        return packed + QuantizedArray.PARAMS_BYTES

    def encode_flops(self, num_scalars: int) -> float:
        # min/max scan (2) + subtract, divide, round, clip (4) per scalar
        return 6.0 * num_scalars

    def decode_flops(self, num_scalars: int) -> float:
        # subtract zero-point + multiply by scale per scalar
        return 2.0 * num_scalars

    def apply(self, x: np.ndarray) -> np.ndarray:
        return simulate_wire(x, self.num_bits)


@dataclass(frozen=True)
class TopKCodec(TransportCodec):
    """Magnitude sparsification: keep the top ``fraction`` of entries.

    Each survivor ships as (float32 value, uint32 flat index); everything
    else is zeroed at the receiver.  Deterministic: ties break by flat
    index via a stable sort, so replays are exact.
    """

    fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"topk fraction must be in (0, 1], got {self.fraction}"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"topk:{self.fraction:g}"

    def kept(self, num_scalars: int) -> int:
        if num_scalars == 0:
            return 0
        return max(1, int(np.ceil(self.fraction * num_scalars)))

    def wire_bytes(self, num_scalars: int) -> int:
        return self.kept(num_scalars) * TOPK_BYTES_PER_ENTRY

    def encode_flops(self, num_scalars: int) -> float:
        # |x| pass plus a sort-based selection
        if num_scalars == 0:
            return 0.0
        return num_scalars * (1.0 + np.log2(max(2, num_scalars)))

    def decode_flops(self, num_scalars: int) -> float:
        # scatter of the kept entries into a zeroed buffer
        return float(self.kept(num_scalars))

    def apply(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.size == 0:
            return x
        if not np.isfinite(x).all():
            raise ValueError(
                "topk codec: input contains non-finite values (NaN/inf)"
            )
        k = self.kept(x.size)
        if k >= x.size:
            return x
        flat = x.reshape(-1)
        order = np.argsort(-np.abs(flat), kind="stable")
        out = np.zeros_like(flat)
        keep = order[:k]
        out[keep] = flat[keep]
        return out.reshape(x.shape)


def parse_transport(spec: str | TransportCodec | None) -> TransportCodec:
    """Resolve a transport spec string to a codec instance.

    Accepted specs: ``float32``, ``int8``, ``intk:K`` with K in [1, 16],
    ``topk:F`` with F in (0, 1].  Raises :class:`ValueError` on anything
    else (the CLI maps that to exit code 2).
    """
    if spec is None:
        return Float32Codec()
    if isinstance(spec, TransportCodec):
        return spec
    text = str(spec).strip().lower()
    if text in ("float32", "fp32", "none", ""):
        return Float32Codec()
    if text == "int8":
        return IntKCodec(8)
    if text.startswith("intk:"):
        arg = text.split(":", 1)[1]
        try:
            bits = int(arg)
        except ValueError:
            raise ValueError(f"invalid intk bit width {arg!r} in transport {spec!r}")
        return IntKCodec(bits)
    if text.startswith("topk:"):
        arg = text.split(":", 1)[1]
        try:
            fraction = float(arg)
        except ValueError:
            raise ValueError(f"invalid topk fraction {arg!r} in transport {spec!r}")
        return TopKCodec(fraction)
    raise ValueError(
        f"unknown transport {spec!r} (expected float32, int8, intk:K, or topk:F)"
    )


#: named codec factories (the CLI/help surface)
TRANSPORT_CODECS = {
    "float32": Float32Codec,
    "int8": lambda: IntKCodec(8),
    "intk:K": IntKCodec,
    "topk:F": TopKCodec,
}
