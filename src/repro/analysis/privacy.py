"""Privacy leakage of the split-learning smashed-data channel.

Split learning ships activations, not raw data — but activations leak.
Two standard measurements, both pure-substrate (no torch):

* :func:`distance_correlation` — Székely's distance correlation between
  raw inputs and smashed activations; a model-free leakage proxy in
  [0, 1] (1 = fully dependent).  Widely used in the split-learning
  privacy literature (e.g. NoPeek).
* :func:`reconstruction_attack` — train an inversion decoder (an honest
  adversary at the server with a shadow dataset) from smashed data back
  to input pixels and report test MSE against the predict-the-mean
  baseline.  ``leakage`` = 1 − MSE/baseline-MSE, so 0 means the attack
  learned nothing and 1 means perfect reconstruction.

Deeper cuts compress more and leak less — the privacy side of the
cut-layer trade-off the paper's future work raises; see
``examples/privacy_study.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.nn.split import ClientHalf
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import new_rng

__all__ = [
    "PrivacyReport",
    "distance_correlation",
    "reconstruction_attack",
    "sweep_cut_privacy",
]


def _centered_distance_matrix(x: np.ndarray) -> np.ndarray:
    """Double-centered pairwise Euclidean distance matrix."""
    flat = x.reshape(len(x), -1)
    sq = (flat**2).sum(axis=1)
    d = np.sqrt(np.maximum(sq[:, None] + sq[None, :] - 2 * flat @ flat.T, 0.0))
    row_mean = d.mean(axis=1, keepdims=True)
    col_mean = d.mean(axis=0, keepdims=True)
    return d - row_mean - col_mean + d.mean()


def distance_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Székely distance correlation between two sample sets.

    Both arrays must have the same leading (sample) dimension; trailing
    dimensions are flattened.  Returns a value in [0, 1].
    """
    x, y = np.asarray(x), np.asarray(y)
    if len(x) != len(y):
        raise ValueError(f"sample counts differ: {len(x)} vs {len(y)}")
    if len(x) < 2:
        raise ValueError("need at least 2 samples")
    a = _centered_distance_matrix(x)
    b = _centered_distance_matrix(y)
    dcov2 = (a * b).mean()
    dvar_x = (a * a).mean()
    dvar_y = (b * b).mean()
    denom = np.sqrt(dvar_x * dvar_y)
    if denom <= 0:
        return 0.0
    return float(np.sqrt(max(dcov2, 0.0) / denom))


@dataclass(frozen=True)
class PrivacyReport:
    """Leakage measurements for one client half / cut layer."""

    cut_layer: int
    attack_mse: float
    baseline_mse: float
    distance_corr: float

    @property
    def leakage(self) -> float:
        """1 − MSE/baseline, clipped to [0, 1]; higher = more leakage."""
        if self.baseline_mse <= 0:
            return 0.0
        return float(np.clip(1.0 - self.attack_mse / self.baseline_mse, 0.0, 1.0))


def _smash(client: ClientHalf, images: np.ndarray) -> np.ndarray:
    was_training = client.training
    client.eval()
    with no_grad():
        out = client.forward(Tensor(images)).data.copy()
    if was_training:
        client.train()
    return out


def reconstruction_attack(
    client: ClientHalf,
    shadow_images: np.ndarray,
    test_images: np.ndarray,
    cut_layer: int = 0,
    hidden: int = 256,
    steps: int = 600,
    lr: float = 1e-3,
    seed: int = 0,
) -> PrivacyReport:
    """Train an inversion decoder on a shadow set; evaluate on held-out data.

    The adversary (the honest-but-curious server) sees smashed activations
    and owns a shadow dataset drawn from the same distribution — the
    standard threat model for split-learning inversion.
    """
    if len(shadow_images) < 4 or len(test_images) < 2:
        raise ValueError("need at least 4 shadow and 2 test images")
    rng = new_rng(seed)

    raw_smashed_test = _smash(client, test_images)
    smashed_train = _smash(client, shadow_images)
    # Centre and globally scale from shadow statistics (per-feature
    # whitening misbehaves on sparse post-ReLU activations).
    mu = smashed_train.mean()
    sigma = smashed_train.std() + 1e-6
    smashed_train = (smashed_train - mu) / sigma
    smashed_test = (raw_smashed_test - mu) / sigma
    in_dim = int(np.prod(smashed_train.shape[1:]))
    out_dim = int(np.prod(shadow_images.shape[1:]))

    if hidden > 0:
        decoder = nn.Sequential(
            nn.Flatten(),
            nn.Linear(in_dim, hidden, seed=int(rng.integers(2**31))),
            nn.ReLU(),
            nn.Linear(hidden, out_dim, seed=int(rng.integers(2**31))),
        )
    else:
        # ``hidden=0``: linear decoder (the classic linear probe) — less
        # expressive but far more sample-efficient.
        decoder = nn.Sequential(
            nn.Flatten(),
            nn.Linear(in_dim, out_dim, seed=int(rng.integers(2**31))),
        )
    optimizer = nn.Adam(decoder.parameters(), lr=lr)
    loss_fn = nn.MSELoss()
    flat_targets = shadow_images.reshape(len(shadow_images), -1)

    batch = min(32, len(shadow_images))
    for _ in range(steps):
        idx = rng.choice(len(shadow_images), size=batch, replace=False)
        optimizer.zero_grad()
        preds = decoder(Tensor(smashed_train[idx]))
        loss = loss_fn(preds, flat_targets[idx])
        loss.backward()
        optimizer.step()

    with no_grad():
        recon = decoder(Tensor(smashed_test)).data
    flat_test = test_images.reshape(len(test_images), -1)
    attack_mse = float(((recon - flat_test) ** 2).mean())

    mean_image = flat_targets.mean(axis=0)
    baseline_mse = float(((mean_image[None, :] - flat_test) ** 2).mean())

    dcor = distance_correlation(test_images, raw_smashed_test)
    return PrivacyReport(
        cut_layer=cut_layer,
        attack_mse=attack_mse,
        baseline_mse=baseline_mse,
        distance_corr=dcor,
    )


def sweep_cut_privacy(
    model: nn.Sequential,
    shadow_images: np.ndarray,
    test_images: np.ndarray,
    cuts: list[int] | None = None,
    **attack_kwargs: object,
) -> list[PrivacyReport]:
    """Run the inversion attack at every candidate cut of ``model``."""
    from repro.nn.split import split_model

    cuts = cuts if cuts is not None else list(range(1, len(model)))
    reports = []
    for cut in cuts:
        sm = split_model(model, cut)
        reports.append(
            reconstruction_attack(
                sm.client, shadow_images, test_images, cut_layer=cut, **attack_kwargs
            )
        )
    return reports
