"""``repro.analysis`` — post-hoc analyses of trained split models.

Privacy leakage of the smashed-data channel (inversion attack + distance
correlation) — the standard split-learning concern the cut layer also
controls.
"""

from repro.analysis.privacy import (
    PrivacyReport,
    distance_correlation,
    reconstruction_attack,
    sweep_cut_privacy,
)

__all__ = [
    "PrivacyReport",
    "distance_correlation",
    "reconstruction_attack",
    "sweep_cut_privacy",
]
