"""Vanilla split learning (SL) baseline.

Gupta & Raskar's sequential protocol: one client-side model is relayed
client-to-client (through the AP, as in the paper's model-sharing step)
while a single server-side model at the edge absorbs every client's
smashed data in turn.  All N clients train *sequentially* within a round
— the "long training latency" (§I) that motivates GSFL.  The whole round
is one serial track, with the full system bandwidth available to the
single active transmitter.
"""

from __future__ import annotations

from repro import nn
from repro.nn.split import split_model
from repro.schemes.base import Activity, Scheme, Stage
from repro.schemes.pricing import LatencyModel
from repro.schemes.split_common import (
    price_model_downlink,
    price_model_uplink,
    split_local_round,
)

__all__ = ["SplitLearning"]


class SplitLearning(Scheme):
    """SL: sequential relay split learning with a single server model."""

    name = "SL"

    def __init__(self, *args: object, cut_layer: int = 1, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self.cut_layer = cut_layer
        self.split = split_model(self.model, cut_layer)
        self._client_opt = self._make_sgd(self.split.client.parameters())
        self._server_opt = self._make_sgd(self.split.server.parameters())
        self._loss_fn = nn.CrossEntropyLoss()
        self._pricing = LatencyModel(
            self.system,
            self.profile,
            self.config.batch_size,
            quantize_bits=self.config.quantize_bits,
            transport=self.config.transport,
        )

    def _code_client_half(self) -> None:
        """Round-trip the client half through a lossy wire codec in place.

        ``load_state_dict`` rebinds parameter data without changing
        parameter identity, so the persistent optimizer keeps stepping
        the same parameters.
        """
        codec = self._pricing.codec
        if codec.lossy:
            self.split.client.load_state_dict(
                codec.apply_state(self.split.client.state_dict())
            )

    def _run_round(self, round_index: int) -> list[Stage]:
        pricing = self._pricing
        bandwidth = pricing.total_bandwidth_hz  # sole transmitter gets all of it
        client_model_bytes = pricing.client_model_nbytes(self.cut_layer)
        lossy = pricing.codec.lossy
        wire_bytes = pricing.model_wire_nbytes(client_model_bytes)
        scalars = pricing.model_scalars(client_model_bytes) if lossy else 0
        participants = self._round_participants()
        if not participants:
            return []
        stage = Stage("sequential_training")
        track = "sl-relay"
        total_loss = 0.0

        for position, client in enumerate(participants):
            if position == 0:
                # Round start: AP sends the client-side model to the first
                # client (paper §II-A model distribution).
                stage.extend(
                    track,
                    price_model_downlink(
                        pricing, client, client_model_bytes, bandwidth
                    ),
                )
                self._code_client_half()
            loss, activities = split_local_round(
                client_id=client,
                split=self.split,
                client_opt=self._client_opt,
                server_opt=self._server_opt,
                loader=self.client_loaders[client],
                loss_fn=self._loss_fn,
                local_steps=self.config.local_steps,
                pricing=pricing,
                bandwidth_hz=bandwidth,
            )
            total_loss += loss
            stage.extend(track, activities)

            if position < len(participants) - 1:
                # Relay the client-side model to the next client via the AP.
                nxt = participants[position + 1]
                if lossy:
                    stage.add(
                        track,
                        Activity(
                            pricing.client_encode_demand(client, scalars),
                            "encode",
                            f"client-{client}",
                            detail="relay model",
                        ),
                    )
                stage.add(
                    track,
                    Activity(
                        pricing.relay_model_demand(
                            client,
                            nxt,
                            wire_bytes,
                            bandwidth,
                        ),
                        "model_relay",
                        f"client-{client}",
                        nbytes=2 * wire_bytes,
                    ),
                )
                if lossy:
                    stage.add(
                        track,
                        Activity(
                            pricing.client_decode_demand(nxt, scalars),
                            "decode",
                            f"client-{nxt}",
                            detail="relay model",
                        ),
                    )
                self._code_client_half()
            else:
                # Last client returns the client-side model to the AP
                # (paper §II-B-3).
                stage.extend(
                    track,
                    price_model_uplink(
                        pricing, client, client_model_bytes, bandwidth
                    ),
                )
                self._code_client_half()

        self._last_train_loss = total_loss / len(participants)
        return [stage]

    def server_side_replicas(self) -> int:
        """Vanilla SL hosts a single server-side model."""
        return 1

    def server_storage_bytes(self) -> int:
        if not self._pricing.enabled:
            return 0
        return self.profile.server_model_bytes(self.cut_layer)
