"""Centralized learning (CL) baseline.

All client data is pooled at the edge server (a one-time raw-data upload
in round 0 — the very cost FL/SL exist to avoid) and the full model is
trained there.  Each round the server processes ``N * local_steps``
mini-batches, matching the total data visited per round by the
distributed schemes, so accuracy-per-round curves are comparable
(Fig 2a's CL series).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data.dataset import ArrayDataset, DataLoader
from repro.nn.tensor import Tensor
from repro.schemes.base import Activity, Scheme, Stage
from repro.schemes.pricing import LatencyModel
from repro.utils.rng import new_rng

__all__ = ["CentralizedLearning"]


class CentralizedLearning(Scheme):
    """CL: pooled-data training at the edge server."""

    name = "CL"

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        xs, ys = zip(*(ds.arrays() for ds in self.client_datasets))
        pooled = ArrayDataset(np.concatenate(xs), np.concatenate(ys))
        self._pooled_loader = DataLoader(
            pooled,
            batch_size=self.config.batch_size,
            shuffle=True,
            seed=new_rng(self.config.seed + 104729),
        )
        self._optimizer = nn.SGD(
            self.model.parameters(),
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self._loss_fn = nn.CrossEntropyLoss()
        self._pricing = LatencyModel(self.system, self.profile, self.config.batch_size)

    def _run_round(self, round_index: int) -> list[Stage]:
        stages: list[Stage] = []

        if round_index == 0 and self._pricing.enabled:
            # One-time raw-data upload, all clients concurrently at B/N.
            # (CL ignores population dynamics: after this pooling step the
            # clients play no further part in training.)
            upload = Stage("data_upload")
            share = self._pricing.total_bandwidth_hz / self.num_clients
            for c, ds in enumerate(self.client_datasets):
                upload.add(
                    f"client-{c}",
                    Activity(
                        self._pricing.uplink_data_demand(c, len(ds), share),
                        "data_upload",
                        f"client-{c}",
                        nbytes=self._pricing.dataset_nbytes(len(ds)),
                    ),
                )
            stages.append(upload)

        train = Stage("training")
        steps = self.num_clients * self.config.local_steps
        total_loss = 0.0
        for _ in range(steps):
            xb, yb = self._pooled_loader.sample_batch()
            self._optimizer.zero_grad()
            loss = self._loss_fn(self.model(Tensor(xb)), yb)
            loss.backward()
            self._optimizer.step()
            total_loss += float(loss.item())
            train.add(
                "edge-server",
                Activity(
                    self._pricing.server_full_step_demand(),
                    "server_compute",
                    "edge-server",
                ),
            )
        self._last_train_loss = total_loss / steps
        stages.append(train)
        return stages
