"""Federated learning (FL / FedAvg) baseline.

Per round: the AP broadcasts the global model, every client trains the
*full* model locally for ``local_steps`` mini-batches in parallel, all
clients upload their full models concurrently (sharing the uplink), and
the server FedAvg-aggregates.  This is the scheme the paper beats by
"nearly 500% in convergence speed": FL takes only ``local_steps`` serial
SGD steps per round (parallel training then averaging) where GSFL's
groups take ``(N/M) * local_steps`` sequential steps, and FL moves the
whole model over the air every round.
"""

from __future__ import annotations

from repro import nn
from repro.core.aggregation import fedavg, mix_states
from repro.nn.tensor import Tensor
from repro.schemes.base import Activity, Scheme, Stage
from repro.schemes.pricing import LatencyModel
from repro.schemes.split_common import price_model_downlink, price_model_uplink
from repro.sim.server import RetryAt, UnitRoundWork

__all__ = ["FederatedLearning"]


class FederatedLearning(Scheme):
    """FL: parallel full-model local training + FedAvg."""

    name = "FL"
    supports_async = True
    #: mid-activity failure recovery: a preempted download/compute/upload
    #: is re-attempted after the client's ``next_recovery_s``, up to the
    #: retry budget; a client that stays unreachable surrenders its round
    #: (no commit — there is no other member to fall back on).
    _recovery_mode = "retry"

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self._loss_fn = nn.CrossEntropyLoss()
        self._pricing = LatencyModel(
            self.system,
            self.profile,
            self.config.batch_size,
            quantize_bits=self.config.quantize_bits,
            transport=self.config.transport,
        )
        self._global_state = self.model.state_dict()

    def _run_round(self, round_index: int) -> list[Stage]:
        cfg = self.config
        pricing = self._pricing
        participants = self._round_participants()
        if not participants:
            return []
        model_bytes = pricing.full_model_nbytes()
        lossy = pricing.codec.lossy
        wire_bytes = pricing.model_wire_nbytes(model_bytes)
        scalars = pricing.model_scalars(model_bytes) if lossy else 0

        # --- stage 1: model distribution (single AP broadcast) --------
        distribution = Stage("distribution")
        if pricing.enabled:
            if lossy:
                distribution.add(
                    "access-point",
                    Activity(
                        pricing.server_encode_demand(scalars),
                        "encode",
                        "access-point",
                        detail="model broadcast",
                    ),
                )
            distribution.add(
                "access-point",
                Activity(
                    pricing.broadcast_model_demand(
                        participants, wire_bytes, pricing.total_bandwidth_hz
                    ),
                    "model_distribution",
                    "access-point",
                    nbytes=wire_bytes,
                ),
            )

        # --- stage 2: parallel local training --------------------------
        local = Stage("local_training")
        local_states = []
        total_loss = 0.0
        for c in participants:
            if pricing.enabled and lossy:
                # Each client unpacks the coded broadcast before training.
                local.add(
                    f"client-{c}",
                    Activity(
                        pricing.client_decode_demand(c, scalars),
                        "decode",
                        f"client-{c}",
                        detail="model",
                    ),
                )
            state, step_losses, activities = self._local_training_round(c)
            for activity in activities:
                local.add(f"client-{c}", activity)
            local_states.append(state)
            for step_loss in step_losses:  # one running sum, legacy order
                total_loss += step_loss
        self._last_train_loss = total_loss / (len(participants) * cfg.local_steps)

        # --- stage 3: concurrent full-model uploads at B/N -------------
        upload = Stage("upload")
        if pricing.enabled:
            share = pricing.total_bandwidth_hz / len(participants)
            for c in participants:
                upload.extend(
                    f"client-{c}",
                    price_model_uplink(pricing, c, model_bytes, share),
                )

        # --- stage 4: FedAvg at the server ------------------------------
        aggregation = Stage("aggregation")
        weights = self._client_sample_counts(participants)
        self._global_state = fedavg(local_states, weights)
        self.model.load_state_dict(self._global_state)
        aggregation.add(
            "edge-server",
            Activity(
                pricing.aggregation_demand(
                    len(participants), self.model.num_parameters()
                ),
                "aggregation",
                "edge-server",
            ),
        )

        return [distribution, local, upload, aggregation]

    def _local_training_round(
        self, client: int
    ) -> tuple[dict, float, list[Activity]]:
        """One client's local round from the current global state.

        Shared by the barriered and barrier-free paths (same op order —
        and per-step losses returned unreduced so the sync driver can
        keep its legacy one-running-sum accumulation across clients,
        bitwise): returns ``(trained_state, step_losses, activities)``.

        With a lossy transport codec the client trains from what the
        codec preserved of the broadcast global, and the returned state
        is the coded upload the server will actually average.
        """
        codec = self._pricing.codec
        start_state = self._global_state
        if codec.lossy:
            start_state = codec.apply_state(start_state)
        self.model.load_state_dict(start_state)
        optimizer = self._make_sgd(self.model.parameters())
        step_losses: list[float] = []
        activities: list[Activity] = []
        for _ in range(self.config.local_steps):
            xb, yb = self.client_loaders[client].sample_batch()
            optimizer.zero_grad()
            loss = self._loss_fn(self.model(Tensor(xb)), yb)
            loss.backward()
            optimizer.step()
            step_losses.append(float(loss.item()))
            activities.append(
                Activity(
                    self._pricing.client_full_step_demand(client),
                    "client_compute",
                    f"client-{client}",
                    detail="local step",
                )
            )
        trained = self.model.state_dict()
        if codec.lossy:
            trained = codec.apply_state(trained)
        return trained, step_losses, activities

    # ------------------------------------------------------------------
    # asynchronous aggregation (barrier-free policies)
    # ------------------------------------------------------------------
    def _async_units(self) -> list[int]:
        return list(range(self.num_clients))

    def _async_unit_weight(self, unit: int) -> float:
        return float(len(self.client_datasets[unit]))

    def _async_unit_round(
        self, unit: int, unit_round: int
    ) -> "UnitRoundWork | RetryAt":
        """One client's barrier-free round: download → train → upload.

        The broadcast distribution stage of the sync protocol has no
        barrier-free analogue — each client fetches the current global
        model over its own downlink at the nominal ``B/N`` share.
        """
        resolved = self._async_unit_dynamics([unit])
        if isinstance(resolved, RetryAt):
            return resolved
        present, slowdowns = resolved
        if not present:
            return UnitRoundWork(activities=[], payload=None, weight=0.0)

        pricing = self._pricing
        share = pricing.total_bandwidth_hz / self.num_clients
        model_bytes = pricing.full_model_nbytes()
        activities = price_model_downlink(
            pricing, unit, model_bytes, share, phase="model_download"
        )
        state, step_losses, compute = self._local_training_round(unit)
        activities.extend(compute)
        total_loss = 0.0
        for step_loss in step_losses:
            total_loss += step_loss
        activities.extend(price_model_uplink(pricing, unit, model_bytes, share))
        activities.append(
            Activity(
                pricing.aggregation_demand(2, self.model.num_parameters()),
                "aggregation",
                "edge-server",
                detail=f"async merge client-{unit}",
            )
        )
        return UnitRoundWork(
            activities=activities,
            payload=state,
            weight=float(len(self.client_datasets[unit])),
            slowdowns=slowdowns or None,
            loss_sum=total_loss / self.config.local_steps,
            num_contributors=1,
        )

    def _async_apply_update(self, payload: object, alpha: float) -> None:
        self._global_state = mix_states(self._global_state, payload, alpha)

    def _async_load_eval_model(self) -> None:
        # mix_states allocates fresh arrays and the global is only read
        # afterwards, so the model can adopt them without re-copying.
        self.model.load_state_dict(self._global_state, copy=False)
