"""Federated learning (FL / FedAvg) baseline.

Per round: the AP broadcasts the global model, every client trains the
*full* model locally for ``local_steps`` mini-batches in parallel, all
clients upload their full models concurrently (sharing the uplink), and
the server FedAvg-aggregates.  This is the scheme the paper beats by
"nearly 500% in convergence speed": FL takes only ``local_steps`` serial
SGD steps per round (parallel training then averaging) where GSFL's
groups take ``(N/M) * local_steps`` sequential steps, and FL moves the
whole model over the air every round.
"""

from __future__ import annotations

from repro import nn
from repro.core.aggregation import fedavg
from repro.nn.tensor import Tensor
from repro.schemes.base import Activity, Scheme, Stage
from repro.schemes.pricing import LatencyModel

__all__ = ["FederatedLearning"]


class FederatedLearning(Scheme):
    """FL: parallel full-model local training + FedAvg."""

    name = "FL"

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self._loss_fn = nn.CrossEntropyLoss()
        self._pricing = LatencyModel(self.system, self.profile, self.config.batch_size)
        self._global_state = self.model.state_dict()

    def _run_round(self, round_index: int) -> list[Stage]:
        cfg = self.config
        pricing = self._pricing
        participants = self._round_participants()
        if not participants:
            return []
        model_bytes = pricing.full_model_nbytes()

        # --- stage 1: model distribution (single AP broadcast) --------
        distribution = Stage("distribution")
        if pricing.enabled:
            distribution.add(
                "access-point",
                Activity(
                    pricing.broadcast_model_demand(
                        participants, model_bytes, pricing.total_bandwidth_hz
                    ),
                    "model_distribution",
                    "access-point",
                    nbytes=model_bytes,
                ),
            )

        # --- stage 2: parallel local training --------------------------
        local = Stage("local_training")
        local_states = []
        total_loss = 0.0
        for c in participants:
            self.model.load_state_dict(self._global_state)
            optimizer = self._make_sgd(self.model.parameters())
            for _ in range(cfg.local_steps):
                xb, yb = self.client_loaders[c].sample_batch()
                optimizer.zero_grad()
                loss = self._loss_fn(self.model(Tensor(xb)), yb)
                loss.backward()
                optimizer.step()
                total_loss += float(loss.item())
                local.add(
                    f"client-{c}",
                    Activity(
                        pricing.client_full_step_demand(c),
                        "client_compute",
                        f"client-{c}",
                        detail="local step",
                    ),
                )
            local_states.append(self.model.state_dict())
        self._last_train_loss = total_loss / (len(participants) * cfg.local_steps)

        # --- stage 3: concurrent full-model uploads at B/N -------------
        upload = Stage("upload")
        if pricing.enabled:
            share = pricing.total_bandwidth_hz / len(participants)
            for c in participants:
                upload.add(
                    f"client-{c}",
                    Activity(
                        pricing.uplink_model_demand(c, model_bytes, share),
                        "model_upload",
                        f"client-{c}",
                        nbytes=model_bytes,
                    ),
                )

        # --- stage 4: FedAvg at the server ------------------------------
        aggregation = Stage("aggregation")
        weights = self._client_sample_counts(participants)
        self._global_state = fedavg(local_states, weights)
        self.model.load_state_dict(self._global_state)
        aggregation.add(
            "edge-server",
            Activity(
                pricing.aggregation_demand(
                    len(participants), self.model.num_parameters()
                ),
                "aggregation",
                "edge-server",
            ),
        )

        return [distribution, local, upload, aggregation]
