"""Latency pricing for scheme activities.

:class:`LatencyModel` converts protocol actions (client forward pass,
smashed-data upload, model relay, ...) into seconds using the wireless
system and the static model profile.  Constructed with ``system=None`` it
prices everything at zero — "pure algorithm" mode for accuracy-only runs
and fast tests.

Fading realizations are drawn per transmission through the channel's own
generator, so latency traces are reproducible for a fixed scenario seed.
"""

from __future__ import annotations

import numpy as np

from repro.nn.profile import ModelProfile
from repro.nn.serialize import WIRE_BYTES_PER_SCALAR
from repro.wireless.system import WirelessSystem

__all__ = ["LatencyModel"]

#: FLOPs charged per parameter for a FedAvg aggregation pass
AGGREGATION_FLOPS_PER_PARAM = 2.0


class LatencyModel:
    """Prices protocol actions in seconds (zero-priced when no system)."""

    def __init__(
        self,
        system: WirelessSystem | None,
        profile: ModelProfile | None,
        batch_size: int,
        quantize_bits: int | None = None,
    ) -> None:
        if (system is None) != (profile is None):
            raise ValueError(
                "system and profile must be given together (or both omitted)"
            )
        if quantize_bits is not None and not 1 <= quantize_bits <= 16:
            raise ValueError(f"quantize_bits must be in [1, 16], got {quantize_bits}")
        self.system = system
        self.profile = profile
        self.batch_size = batch_size
        self.quantize_bits = quantize_bits
        # Payload sizes are pure functions of the cut layer but were
        # recomputed from full profile traversals inside every activity of
        # every batch of every round — memoize them per cut.
        self._smashed_nbytes: dict[int, int] = {}
        self._client_model_nbytes: dict[int, int] = {}
        self._full_model_nbytes: int | None = None

    @property
    def enabled(self) -> bool:
        return self.system is not None

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def client_forward_s(self, client: int, cut_layer: int) -> float:
        if not self.enabled:
            return 0.0
        flops = self.profile.client_forward_flops(cut_layer) * self.batch_size
        return self.system.client_compute_seconds(client, flops)

    def client_backward_s(self, client: int, cut_layer: int) -> float:
        if not self.enabled:
            return 0.0
        flops = self.profile.client_backward_flops(cut_layer) * self.batch_size
        return self.system.client_compute_seconds(client, flops)

    def client_full_step_s(self, client: int) -> float:
        """Full-model forward+backward on the client (FL local step)."""
        if not self.enabled:
            return 0.0
        per_sample = self.profile.total_forward_flops
        flops = 3.0 * per_sample * self.batch_size  # fwd + ~2x bwd
        return self.system.client_compute_seconds(client, flops)

    def server_split_step_s(self, cut_layer: int) -> float:
        """Server-side forward+backward for one smashed batch."""
        if not self.enabled:
            return 0.0
        flops = (
            self.profile.server_forward_flops(cut_layer)
            + self.profile.server_backward_flops(cut_layer)
        ) * self.batch_size
        return self.system.server_compute_seconds(flops)

    def server_full_step_s(self) -> float:
        """Full-model forward+backward on the server (CL step)."""
        if not self.enabled:
            return 0.0
        flops = 3.0 * self.profile.total_forward_flops * self.batch_size
        return self.system.server_compute_seconds(flops)

    def aggregation_s(self, num_participants: int, num_params: int) -> float:
        if not self.enabled:
            return 0.0
        flops = AGGREGATION_FLOPS_PER_PARAM * num_params * num_participants
        return self.system.server_compute_seconds(flops)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def smashed_nbytes(self, cut_layer: int) -> int:
        if not self.enabled:
            return 0
        cached = self._smashed_nbytes.get(cut_layer)
        if cached is not None:
            return cached
        full = self.profile.smashed_bytes(cut_layer, self.batch_size)
        if self.quantize_bits is None:
            nbytes = full
        else:
            scalars = full // WIRE_BYTES_PER_SCALAR
            nbytes = int(np.ceil(scalars * self.quantize_bits / 8)) + 8
        self._smashed_nbytes[cut_layer] = nbytes
        return nbytes

    def uplink_smashed_s(self, client: int, cut_layer: int, bandwidth_hz: float) -> float:
        if not self.enabled:
            return 0.0
        nbits = 8 * self.smashed_nbytes(cut_layer)
        return self.system.uplink_seconds(client, nbits, bandwidth_hz)

    def downlink_gradient_s(self, client: int, cut_layer: int, bandwidth_hz: float) -> float:
        if not self.enabled:
            return 0.0
        nbits = 8 * self.smashed_nbytes(cut_layer)
        return self.system.downlink_seconds(client, nbits, bandwidth_hz)

    def client_model_nbytes(self, cut_layer: int) -> int:
        if not self.enabled:
            return 0
        cached = self._client_model_nbytes.get(cut_layer)
        if cached is None:
            cached = self.profile.client_model_bytes(cut_layer)
            self._client_model_nbytes[cut_layer] = cached
        return cached

    def full_model_nbytes(self) -> int:
        if not self.enabled:
            return 0
        if self._full_model_nbytes is None:
            self._full_model_nbytes = self.profile.total_param_bytes
        return self._full_model_nbytes

    def uplink_model_s(self, client: int, nbytes: int, bandwidth_hz: float) -> float:
        if not self.enabled or nbytes == 0:
            return 0.0
        return self.system.uplink_seconds(client, 8 * nbytes, bandwidth_hz)

    def downlink_model_s(self, client: int, nbytes: int, bandwidth_hz: float) -> float:
        if not self.enabled or nbytes == 0:
            return 0.0
        return self.system.downlink_seconds(client, 8 * nbytes, bandwidth_hz)

    def broadcast_model_s(self, clients: list[int], nbytes: int, bandwidth_hz: float) -> float:
        """One AP broadcast decoded by every listed client.

        The transmission must close at the *weakest* listener's rate.
        """
        if not self.enabled or nbytes == 0:
            return 0.0
        return max(
            self.system.downlink_seconds(c, 8 * nbytes, bandwidth_hz) for c in clients
        )

    def dataset_nbytes(self, num_samples: int) -> int:
        """Raw-data payload for CL's one-time upload."""
        if not self.enabled:
            return 0
        per_sample = int(np.prod(self.profile.input_shape)) + 1  # pixels + label
        return num_samples * per_sample * WIRE_BYTES_PER_SCALAR

    def uplink_data_s(self, client: int, num_samples: int, bandwidth_hz: float) -> float:
        if not self.enabled:
            return 0.0
        return self.system.uplink_seconds(
            client, 8 * self.dataset_nbytes(num_samples), bandwidth_hz
        )

    @property
    def total_bandwidth_hz(self) -> float:
        if not self.enabled:
            return 1.0
        return self.system.allocator.total_bandwidth_hz
