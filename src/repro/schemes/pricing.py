"""Demand calculation (and analytic pricing) for scheme activities.

:class:`LatencyModel` converts protocol actions (client forward pass,
smashed-data upload, model relay, ...) into **demands** — FLOPs against a
device for compute, bytes + frozen channel realization + nominal
bandwidth for transmission (:mod:`repro.sim.runtime` vocabulary).  The
runtime resolves demand durations during replay, so a transmission's
actual airtime depends on the instantaneous state of the shared medium,
not on what the scheme assumed when it emitted the activity.

Fading realizations are drawn per transmission through the channel's own
generator *at demand-construction time*, in protocol order — exactly
where the old pre-priced pipeline drew them — so latency traces stay
reproducible for a fixed scenario seed and the static-share resolution
is bit-identical to the legacy analytic pricing.

The ``*_s`` methods retain that legacy analytic model (each also drawing
fading on call); they back the cut-layer sweep and other closed-form
analyses.  Constructed with ``system=None`` everything is priced at
zero — "pure algorithm" mode for accuracy-only runs and fast tests.
"""

from __future__ import annotations

import numpy as np

from repro.nn.profile import ModelProfile
from repro.nn.serialize import WIRE_BYTES_PER_SCALAR
from repro.sim.runtime import (
    ComputeDemand,
    Demand,
    TransmitDemand,
    TransmitLeg,
    demand_lower_bound_s,
)
from repro.sim.transport import Float32Codec, IntKCodec, TransportCodec, parse_transport
from repro.wireless.channel import WirelessChannel
from repro.wireless.system import WirelessSystem

__all__ = ["LatencyModel"]

#: FLOPs charged per parameter for a FedAvg aggregation pass
AGGREGATION_FLOPS_PER_PARAM = 2.0


class LatencyModel:
    """Builds demands for protocol actions (zero-priced when no system)."""

    def __init__(
        self,
        system: WirelessSystem | None,
        profile: ModelProfile | None,
        batch_size: int,
        quantize_bits: int | None = None,
        transport: str | TransportCodec | None = None,
    ) -> None:
        if (system is None) != (profile is None):
            raise ValueError(
                "system and profile must be given together (or both omitted)"
            )
        codec = parse_transport(transport) if transport is not None else None
        if quantize_bits is not None:
            if not 1 <= quantize_bits <= 16:
                raise ValueError(
                    f"quantize_bits must be in [1, 16], got {quantize_bits}"
                )
            if codec is None:
                codec = IntKCodec(quantize_bits)
            elif not (isinstance(codec, IntKCodec) and codec.num_bits == quantize_bits):
                raise ValueError(
                    f"transport {codec.name!r} conflicts with "
                    f"quantize_bits={quantize_bits}"
                )
        self.system = system
        self.profile = profile
        self.batch_size = batch_size
        self.codec: TransportCodec = codec if codec is not None else Float32Codec()
        self.quantize_bits = (
            self.codec.num_bits if isinstance(self.codec, IntKCodec) else None
        )
        # Payload sizes are pure functions of the cut layer but were
        # recomputed from full profile traversals inside every activity of
        # every batch of every round — memoize them per cut.
        self._smashed_nbytes: dict[int, int] = {}
        self._client_model_nbytes: dict[int, int] = {}
        self._full_model_nbytes: int | None = None

    @property
    def enabled(self) -> bool:
        return self.system is not None

    # ------------------------------------------------------------------
    # compute demands
    # ------------------------------------------------------------------
    def _client_compute(self, client: int, flops: float) -> Demand:
        return ComputeDemand(
            flops=flops,
            flops_per_s=self.system.fleet.client(client).flops_per_second,
            client=client,
        )

    def _server_compute(self, flops: float, multiplier: float = 1.0) -> Demand:
        return ComputeDemand(
            flops=flops,
            flops_per_s=self.system.fleet.server.flops_per_second,
            client=None,
            multiplier=multiplier,
        )

    def client_forward_demand(self, client: int, cut_layer: int) -> Demand:
        if not self.enabled:
            return 0.0
        flops = self.profile.client_forward_flops(cut_layer) * self.batch_size
        return self._client_compute(client, flops)

    def client_backward_demand(self, client: int, cut_layer: int) -> Demand:
        if not self.enabled:
            return 0.0
        flops = self.profile.client_backward_flops(cut_layer) * self.batch_size
        return self._client_compute(client, flops)

    def client_full_step_demand(self, client: int) -> Demand:
        """Full-model forward+backward on the client (FL local step)."""
        if not self.enabled:
            return 0.0
        flops = 3.0 * self.profile.total_forward_flops * self.batch_size
        return self._client_compute(client, flops)

    def server_split_step_demand(self, cut_layer: int, multiplier: float = 1.0) -> Demand:
        """Server-side forward+backward for one smashed batch.

        ``multiplier`` prices a fused batch (PSL: ``N×`` one batch).
        """
        if not self.enabled:
            return 0.0
        flops = (
            self.profile.server_forward_flops(cut_layer)
            + self.profile.server_backward_flops(cut_layer)
        ) * self.batch_size
        return self._server_compute(flops, multiplier)

    def server_full_step_demand(self) -> Demand:
        """Full-model forward+backward on the server (CL step)."""
        if not self.enabled:
            return 0.0
        flops = 3.0 * self.profile.total_forward_flops * self.batch_size
        return self._server_compute(flops)

    def aggregation_demand(self, num_participants: int, num_params: int) -> Demand:
        if not self.enabled:
            return 0.0
        flops = AGGREGATION_FLOPS_PER_PARAM * num_params * num_participants
        return self._server_compute(flops)

    # ------------------------------------------------------------------
    # transport codec demands (zero for the lossless identity codec)
    # ------------------------------------------------------------------
    def client_encode_demand(self, client: int, num_scalars: int) -> Demand:
        if not self.enabled:
            return 0.0
        flops = self.codec.encode_flops(num_scalars)
        return self._client_compute(client, flops) if flops > 0.0 else 0.0

    def client_decode_demand(self, client: int, num_scalars: int) -> Demand:
        if not self.enabled:
            return 0.0
        flops = self.codec.decode_flops(num_scalars)
        return self._client_compute(client, flops) if flops > 0.0 else 0.0

    def server_encode_demand(self, num_scalars: int) -> Demand:
        if not self.enabled:
            return 0.0
        flops = self.codec.encode_flops(num_scalars)
        return self._server_compute(flops) if flops > 0.0 else 0.0

    def server_decode_demand(self, num_scalars: int) -> Demand:
        if not self.enabled:
            return 0.0
        flops = self.codec.decode_flops(num_scalars)
        return self._server_compute(flops) if flops > 0.0 else 0.0

    # ------------------------------------------------------------------
    # transmission demands
    # ------------------------------------------------------------------
    def _uplink_leg(self, client: int, nbits: float) -> TransmitLeg:
        """One client→AP hop; freezes a fading draw from the shared stream."""
        channel = self.system.channel
        fading = channel.draw_fading()
        return TransmitLeg(
            nbits=nbits,
            client=client,
            rate_fn=lambda hz, _ch=channel, _c=client, _f=fading: _ch.uplink_rate_bps(
                _c, hz, fading=_f
            ),
            direction="uplink",
        )

    def _downlink_leg(self, client: int, nbits: float) -> TransmitLeg:
        """One AP→client hop; freezes a fading draw from the shared stream."""
        channel = self.system.channel
        fading = channel.draw_fading()
        return TransmitLeg(
            nbits=nbits,
            client=client,
            rate_fn=lambda hz, _ch=channel, _c=client, _f=fading: _ch.downlink_rate_bps(
                _c, hz, fading=_f
            ),
            direction="downlink",
        )

    def _transmit(self, legs: list[TransmitLeg], nominal_hz: float) -> TransmitDemand:
        return TransmitDemand(
            legs=tuple(legs),
            nominal_hz=nominal_hz,
            total_hz=self.total_bandwidth_hz,
        )

    def uplink_smashed_demand(
        self, client: int, cut_layer: int, nominal_hz: float
    ) -> Demand:
        if not self.enabled:
            return 0.0
        nbits = 8 * self.smashed_nbytes(cut_layer)
        return self._transmit([self._uplink_leg(client, nbits)], nominal_hz)

    def downlink_gradient_demand(
        self, client: int, cut_layer: int, nominal_hz: float
    ) -> Demand:
        if not self.enabled:
            return 0.0
        nbits = 8 * self.smashed_nbytes(cut_layer)
        return self._transmit([self._downlink_leg(client, nbits)], nominal_hz)

    def uplink_model_demand(self, client: int, nbytes: int, nominal_hz: float) -> Demand:
        if not self.enabled or nbytes == 0:
            return 0.0
        return self._transmit([self._uplink_leg(client, 8 * nbytes)], nominal_hz)

    def downlink_model_demand(
        self, client: int, nbytes: int, nominal_hz: float
    ) -> Demand:
        if not self.enabled or nbytes == 0:
            return 0.0
        return self._transmit([self._downlink_leg(client, 8 * nbytes)], nominal_hz)

    def relay_model_demand(
        self, from_client: int, to_client: int, nbytes: int, nominal_hz: float
    ) -> Demand:
        """Client→AP→client model relay: two sequential hops, one demand."""
        if not self.enabled or nbytes == 0:
            return 0.0
        return self._transmit(
            [
                self._uplink_leg(from_client, 8 * nbytes),
                self._downlink_leg(to_client, 8 * nbytes),
            ],
            nominal_hz,
        )

    def broadcast_model_demand(
        self, clients: list[int], nbytes: int, nominal_hz: float
    ) -> Demand:
        """One AP broadcast decoded by every listed client.

        The transmission closes at the *weakest* listener's rate; the flow
        is attributed to that listener for client-aware share policies.
        """
        if not self.enabled or nbytes == 0:
            return 0.0
        channel = self.system.channel
        pairs = [(c, channel.draw_fading()) for c in clients]

        def weakest_rate(
            hz: float,
            _pairs: "tuple[tuple[int, float], ...]" = tuple(pairs),
            _ch: "WirelessChannel" = channel,
        ) -> float:
            return min(_ch.downlink_rate_bps(c, hz, fading=f) for c, f in _pairs)

        nominal_rates = [
            channel.downlink_rate_bps(c, nominal_hz, fading=f) for c, f in pairs
        ]
        weakest = clients[int(np.argmin(nominal_rates))]
        return self._transmit(
            [
                TransmitLeg(
                    nbits=8 * nbytes,
                    client=weakest,
                    rate_fn=weakest_rate,
                    direction="downlink",
                )
            ],
            nominal_hz,
        )

    def uplink_data_demand(
        self, client: int, num_samples: int, nominal_hz: float
    ) -> Demand:
        """Raw-data upload demand for CL's one-time pooling."""
        if not self.enabled:
            return 0.0
        nbits = 8 * self.dataset_nbytes(num_samples)
        return self._transmit([self._uplink_leg(client, nbits)], nominal_hz)

    # ------------------------------------------------------------------
    # payload sizes
    # ------------------------------------------------------------------
    def smashed_nbytes(self, cut_layer: int) -> int:
        if not self.enabled:
            return 0
        cached = self._smashed_nbytes.get(cut_layer)
        if cached is not None:
            return cached
        full = self.profile.smashed_bytes(cut_layer, self.batch_size)
        if not self.codec.lossy:
            nbytes = full
        else:
            nbytes = self.codec.wire_bytes(full // WIRE_BYTES_PER_SCALAR)
        self._smashed_nbytes[cut_layer] = nbytes
        return nbytes

    def smashed_scalars(self, cut_layer: int) -> int:
        """Scalar count of one smashed-data batch (codec FLOP input)."""
        if not self.enabled:
            return 0
        full = self.profile.smashed_bytes(cut_layer, self.batch_size)
        return full // WIRE_BYTES_PER_SCALAR

    def model_scalars(self, nbytes: int) -> int:
        """Scalar count of a model payload (codec FLOP input)."""
        return nbytes // WIRE_BYTES_PER_SCALAR

    def model_wire_nbytes(self, nbytes: int) -> int:
        """Wire size of a model payload whose raw float32 size is ``nbytes``.

        Identity for the lossless codec, so codec-unaware callers (and
        the golden float32 path) see the raw byte count unchanged.
        """
        if not self.enabled or not self.codec.lossy or nbytes == 0:
            return nbytes
        return self.codec.wire_bytes(nbytes // WIRE_BYTES_PER_SCALAR)

    def client_model_nbytes(self, cut_layer: int) -> int:
        if not self.enabled:
            return 0
        cached = self._client_model_nbytes.get(cut_layer)
        if cached is None:
            cached = self.profile.client_model_bytes(cut_layer)
            self._client_model_nbytes[cut_layer] = cached
        return cached

    def full_model_nbytes(self) -> int:
        if not self.enabled:
            return 0
        if self._full_model_nbytes is None:
            self._full_model_nbytes = self.profile.total_param_bytes
        return self._full_model_nbytes

    def dataset_nbytes(self, num_samples: int) -> int:
        """Raw-data payload for CL's one-time upload."""
        if not self.enabled:
            return 0
        per_sample = int(np.prod(self.profile.input_shape)) + 1  # pixels + label
        return num_samples * per_sample * WIRE_BYTES_PER_SCALAR

    @property
    def total_bandwidth_hz(self) -> float:
        if not self.enabled:
            return 1.0
        return self.system.allocator.total_bandwidth_hz

    # ------------------------------------------------------------------
    # legacy analytic pricing (closed-form analyses, cut sweep)
    #
    # Compute pricing derives from the demand constructors (one FLOP
    # formula, two views); transmission pricing must stay separate
    # because both paths draw fading from the shared stream.
    # ------------------------------------------------------------------
    def client_forward_s(self, client: int, cut_layer: int) -> float:
        return demand_lower_bound_s(self.client_forward_demand(client, cut_layer))

    def client_backward_s(self, client: int, cut_layer: int) -> float:
        return demand_lower_bound_s(self.client_backward_demand(client, cut_layer))

    def client_full_step_s(self, client: int) -> float:
        """Full-model forward+backward on the client (FL local step)."""
        return demand_lower_bound_s(self.client_full_step_demand(client))

    def server_split_step_s(self, cut_layer: int) -> float:
        """Server-side forward+backward for one smashed batch."""
        return demand_lower_bound_s(self.server_split_step_demand(cut_layer))

    def server_full_step_s(self) -> float:
        """Full-model forward+backward on the server (CL step)."""
        return demand_lower_bound_s(self.server_full_step_demand())

    def aggregation_s(self, num_participants: int, num_params: int) -> float:
        return demand_lower_bound_s(
            self.aggregation_demand(num_participants, num_params)
        )

    def uplink_smashed_s(self, client: int, cut_layer: int, bandwidth_hz: float) -> float:
        if not self.enabled:
            return 0.0
        nbits = 8 * self.smashed_nbytes(cut_layer)
        return self.system.uplink_seconds(client, nbits, bandwidth_hz)

    def downlink_gradient_s(self, client: int, cut_layer: int, bandwidth_hz: float) -> float:
        if not self.enabled:
            return 0.0
        nbits = 8 * self.smashed_nbytes(cut_layer)
        return self.system.downlink_seconds(client, nbits, bandwidth_hz)

    def uplink_model_s(self, client: int, nbytes: int, bandwidth_hz: float) -> float:
        if not self.enabled or nbytes == 0:
            return 0.0
        return self.system.uplink_seconds(client, 8 * nbytes, bandwidth_hz)

    def downlink_model_s(self, client: int, nbytes: int, bandwidth_hz: float) -> float:
        if not self.enabled or nbytes == 0:
            return 0.0
        return self.system.downlink_seconds(client, 8 * nbytes, bandwidth_hz)

    def broadcast_model_s(self, clients: list[int], nbytes: int, bandwidth_hz: float) -> float:
        """One AP broadcast decoded by every listed client.

        The transmission must close at the *weakest* listener's rate.
        """
        if not self.enabled or nbytes == 0:
            return 0.0
        return max(
            self.system.downlink_seconds(c, 8 * nbytes, bandwidth_hz) for c in clients
        )

    def uplink_data_s(self, client: int, num_samples: int, bandwidth_hz: float) -> float:
        if not self.enabled:
            return 0.0
        return self.system.uplink_seconds(
            client, 8 * self.dataset_nbytes(num_samples), bandwidth_hz
        )
