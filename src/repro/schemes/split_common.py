"""Shared split-training engine used by SL, SplitFed and GSFL.

:func:`split_local_round` executes one client's local training against a
server-side model half — the paper's §II-B loop: sample batch → client
forward → (uplink smashed) → server forward/backward → (downlink
gradient) → client backward → both sides step — and returns the mean loss
together with the priced activity list for the latency replay.
"""

from __future__ import annotations

from repro import nn
from repro.data.dataset import DataLoader
from repro.nn.quantize import simulate_wire
from repro.nn.split import SmashedBatch, SplitModel
from repro.nn.tensor import Tensor
from repro.schemes.base import Activity
from repro.schemes.pricing import LatencyModel

__all__ = ["split_local_round"]


def split_local_round(
    client_id: int,
    split: SplitModel,
    client_opt: nn.Optimizer,
    server_opt: nn.Optimizer,
    loader: DataLoader,
    loss_fn: object,
    local_steps: int,
    pricing: LatencyModel,
    bandwidth_hz: float,
) -> tuple[float, list[Activity]]:
    """One client's split-training round.

    Returns ``(mean_batch_loss, activities)`` where activities alternate
    client compute / uplink / server compute / downlink per batch.
    """
    cut = split.cut_layer
    actor = f"client-{client_id}"
    activities: list[Activity] = []
    total_loss = 0.0

    for _ in range(local_steps):
        xb, yb = loader.sample_batch()

        # --- client forward, smashed data crosses the cut -------------
        smashed = split.client.forward_to_smashed(Tensor(xb))
        if pricing.quantize_bits is not None:
            # The wire carries quantized activations; the server trains on
            # exactly what survived quantization.
            smashed = SmashedBatch(
                values=simulate_wire(smashed.values, pricing.quantize_bits)
            )
        activities.append(
            Activity(
                pricing.client_forward_s(client_id, cut),
                "client_compute",
                actor,
                detail="forward",
            )
        )
        activities.append(
            Activity(
                pricing.uplink_smashed_s(client_id, cut, bandwidth_hz),
                "uplink_smashed",
                actor,
                nbytes=pricing.smashed_nbytes(cut),
            )
        )

        # --- server forward + backward, gradient comes back -----------
        server_opt.zero_grad()
        loss_value, smashed_grad, _ = split.server.forward_backward(smashed, yb, loss_fn)
        server_opt.step()
        if pricing.quantize_bits is not None:
            smashed_grad = simulate_wire(smashed_grad, pricing.quantize_bits)
        activities.append(
            Activity(
                pricing.server_split_step_s(cut),
                "server_compute",
                "edge-server",
                detail=f"for {actor}",
            )
        )
        activities.append(
            Activity(
                pricing.downlink_gradient_s(client_id, cut, bandwidth_hz),
                "downlink_gradient",
                actor,
                nbytes=pricing.smashed_nbytes(cut),
            )
        )

        # --- client backward from the received gradient ---------------
        client_opt.zero_grad()
        split.client.backward_from_gradient(smashed_grad)
        client_opt.step()
        activities.append(
            Activity(
                pricing.client_backward_s(client_id, cut),
                "client_compute",
                actor,
                detail="backward",
            )
        )

        total_loss += loss_value

    return total_loss / local_steps, activities
