"""Shared split-training engine used by SL, SplitFed and GSFL.

Two layers:

* **math** — :func:`split_step_math` executes one client batch through
  the §II-B handshake (client forward → server forward/backward → client
  backward, both optimizers stepping).  It touches no shared randomness,
  so it can run on any :mod:`repro.exec` backend.
* **demands** — :func:`price_local_round` builds the per-batch activity
  list (client compute / uplink / server compute / downlink) as
  *demands* for the runtime to resolve during replay.  Demand
  construction draws fading realizations from the wireless system's
  shared stream, so it always runs in the scheme's (parent) thread, in
  protocol order; durations are resolved later by the DES from the
  instantaneous state of the shared medium.

:func:`split_local_round` composes both for the serial schemes (SL), and
:func:`train_split_group` is the executor work-function behind GSFL's and
SplitFed's parallel round engines: it receives a :class:`GroupTask` with
pre-sampled batches, trains a private :class:`~repro.nn.split.SplitModel`
replica, and returns the trained halves.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.data.dataset import DataLoader
from repro.exec import Executor
from repro.nn.split import SmashedBatch, SplitModel
from repro.nn.tensor import Tensor
from repro.schemes.base import Activity
from repro.schemes.pricing import LatencyModel
from repro.sim.transport import IntKCodec, TransportCodec, parse_transport

__all__ = [
    "split_step_math",
    "price_local_round",
    "price_model_downlink",
    "price_model_uplink",
    "split_local_round",
    "GroupTask",
    "GroupResult",
    "SplitHyperParams",
    "train_split_group",
    "run_group_tasks",
    "AsyncSplitStateMixin",
]


@dataclass(frozen=True)
class SplitHyperParams:
    """Per-round training hyper-parameters shipped to group workers."""

    lr: float
    momentum: float = 0.0
    weight_decay: float = 0.0
    quantize_bits: int | None = None
    transport: str = "float32"

    @classmethod
    def from_config(cls, config: "object") -> "SplitHyperParams":
        """Extract the worker-relevant knobs from a ``SchemeConfig``."""
        return cls(
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            quantize_bits=config.quantize_bits,
            transport=getattr(config, "transport", "float32"),
        )

    @property
    def codec(self) -> TransportCodec:
        """The resolved wire codec (``quantize_bits`` is intk sugar)."""
        codec = parse_transport(self.transport)
        if not codec.lossy and self.quantize_bits is not None:
            return IntKCodec(self.quantize_bits)
        return codec


@dataclass
class GroupTask:
    """One group's (or client's) independent share of a training round.

    ``batches`` holds the pre-sampled mini-batches — ``batches[m][s]`` is
    member ``m``'s batch for local step ``s`` — so workers consume no
    shared RNG stream and every executor backend replays identical data.
    ``split`` is the worker's model: the scheme passes its own
    :class:`SplitModel` for serial execution (reused task after task), a
    private replica per task for threads, and relies on pickling to copy
    it for processes.  ``client_state``/``server_state`` are the global
    halves to load before training; ``None`` means ``split`` already
    carries them (the private-replica backends clone/pickle the parent's
    already-loaded model, so re-shipping the state dicts would double the
    per-task payload for nothing).
    """

    index: int
    members: list[int]
    batches: list[list[tuple[np.ndarray, np.ndarray]]]
    client_state: "dict[str, np.ndarray] | None"
    server_state: "dict[str, np.ndarray] | None"
    weight: float
    split: SplitModel = field(repr=False, default=None)  # type: ignore[assignment]
    #: True when ``split`` is private to this task (skip defensive copies)
    private_replica: bool = True


@dataclass
class GroupResult:
    """Trained halves + bookkeeping returned by :func:`train_split_group`."""

    index: int
    client_state: dict[str, np.ndarray]
    server_state: dict[str, np.ndarray]
    weight: float
    loss_sum: float
    num_members: int


def split_step_math(
    split: SplitModel,
    client_opt: nn.Optimizer,
    server_opt: nn.Optimizer,
    xb: np.ndarray,
    yb: np.ndarray,
    loss_fn: object,
    codec: TransportCodec | None,
) -> float:
    """One batch through the split handshake; returns the batch loss."""
    lossy = codec is not None and codec.lossy
    smashed = split.client.forward_to_smashed(Tensor(xb))
    if lossy:
        # The wire carries encoded activations; the server trains on
        # exactly what the codec preserved.
        smashed = SmashedBatch(values=codec.apply(smashed.values))

    server_opt.zero_grad()
    loss_value, smashed_grad, _ = split.server.forward_backward(smashed, yb, loss_fn)
    server_opt.step()
    if lossy:
        smashed_grad = codec.apply(smashed_grad)

    client_opt.zero_grad()
    split.client.backward_from_gradient(smashed_grad)
    client_opt.step()
    return loss_value


def price_local_round(
    client_id: int,
    cut: int,
    local_steps: int,
    pricing: LatencyModel,
    bandwidth_hz: float,
) -> list[Activity]:
    """Demand activity list for one client's local round (no training).

    Activities alternate client compute / uplink / server compute /
    downlink / client compute per batch, in protocol order — the order
    matters because transmission demands freeze realizations from the
    channel's shared fading stream.  ``bandwidth_hz`` is the *nominal*
    share (the static-model allocation); the runtime may resolve a
    different instantaneous share under a contention-aware policy.
    """
    actor = f"client-{client_id}"
    # A lossy codec adds encode/decode compute on each side of every hop;
    # the identity codec adds no activities at all (bitwise-pinned path).
    lossy = pricing.codec.lossy
    scalars = pricing.smashed_scalars(cut) if lossy else 0
    activities: list[Activity] = []
    for _ in range(local_steps):
        activities.append(
            Activity(
                pricing.client_forward_demand(client_id, cut),
                "client_compute",
                actor,
                detail="forward",
            )
        )
        if lossy:
            activities.append(
                Activity(
                    pricing.client_encode_demand(client_id, scalars),
                    "encode",
                    actor,
                    detail="smashed",
                )
            )
        activities.append(
            Activity(
                pricing.uplink_smashed_demand(client_id, cut, bandwidth_hz),
                "uplink_smashed",
                actor,
                nbytes=pricing.smashed_nbytes(cut),
            )
        )
        if lossy:
            activities.append(
                Activity(
                    pricing.server_decode_demand(scalars),
                    "decode",
                    "edge-server",
                    detail=f"smashed from {actor}",
                )
            )
        activities.append(
            Activity(
                pricing.server_split_step_demand(cut),
                "server_compute",
                "edge-server",
                detail=f"for {actor}",
            )
        )
        if lossy:
            activities.append(
                Activity(
                    pricing.server_encode_demand(scalars),
                    "encode",
                    "edge-server",
                    detail=f"gradient for {actor}",
                )
            )
        activities.append(
            Activity(
                pricing.downlink_gradient_demand(client_id, cut, bandwidth_hz),
                "downlink_gradient",
                actor,
                nbytes=pricing.smashed_nbytes(cut),
            )
        )
        if lossy:
            activities.append(
                Activity(
                    pricing.client_decode_demand(client_id, scalars),
                    "decode",
                    actor,
                    detail="gradient",
                )
            )
        activities.append(
            Activity(
                pricing.client_backward_demand(client_id, cut),
                "client_compute",
                actor,
                detail="backward",
            )
        )
    return activities


def price_model_downlink(
    pricing: LatencyModel,
    client: int,
    nbytes: int,
    bandwidth_hz: float,
    phase: str = "model_distribution",
) -> list[Activity]:
    """AP → client model transfer at the codec's wire size.

    With a lossy codec the transfer is bracketed by a server-side encode
    and a client-side decode; the identity codec emits the bare transfer
    with the raw byte count (bitwise-pinned path).
    """
    actor = f"client-{client}"
    wire = pricing.model_wire_nbytes(nbytes)
    activities = []
    if pricing.codec.lossy:
        scalars = pricing.model_scalars(nbytes)
        activities.append(
            Activity(
                pricing.server_encode_demand(scalars),
                "encode",
                "edge-server",
                detail=f"model for {actor}",
            )
        )
    activities.append(
        Activity(
            pricing.downlink_model_demand(client, wire, bandwidth_hz),
            phase,
            actor,
            nbytes=wire,
        )
    )
    if pricing.codec.lossy:
        activities.append(
            Activity(
                pricing.client_decode_demand(client, scalars),
                "decode",
                actor,
                detail="model",
            )
        )
    return activities


def price_model_uplink(
    pricing: LatencyModel,
    client: int,
    nbytes: int,
    bandwidth_hz: float,
    phase: str = "model_upload",
) -> list[Activity]:
    """Client → AP model transfer at the codec's wire size (see above)."""
    actor = f"client-{client}"
    wire = pricing.model_wire_nbytes(nbytes)
    activities = []
    if pricing.codec.lossy:
        scalars = pricing.model_scalars(nbytes)
        activities.append(
            Activity(
                pricing.client_encode_demand(client, scalars),
                "encode",
                actor,
                detail="model upload",
            )
        )
    activities.append(
        Activity(
            pricing.uplink_model_demand(client, wire, bandwidth_hz),
            phase,
            actor,
            nbytes=wire,
        )
    )
    if pricing.codec.lossy:
        activities.append(
            Activity(
                pricing.server_decode_demand(scalars),
                "decode",
                "edge-server",
                detail=f"model from {actor}",
            )
        )
    return activities


def split_local_round(
    client_id: int,
    split: SplitModel,
    client_opt: nn.Optimizer,
    server_opt: nn.Optimizer,
    loader: DataLoader,
    loss_fn: object,
    local_steps: int,
    pricing: LatencyModel,
    bandwidth_hz: float,
) -> tuple[float, list[Activity]]:
    """One client's split-training round (math + pricing, in-line).

    Returns ``(mean_batch_loss, activities)`` where activities alternate
    client compute / uplink / server compute / downlink per batch.
    """
    total_loss = 0.0
    for _ in range(local_steps):
        xb, yb = loader.sample_batch()
        total_loss += split_step_math(
            split, client_opt, server_opt, xb, yb, loss_fn,
            pricing.codec,
        )
    activities = price_local_round(
        client_id, split.cut_layer, local_steps, pricing, bandwidth_hz
    )
    return total_loss / local_steps, activities


def train_split_group(task: GroupTask, hp: SplitHyperParams) -> GroupResult:
    """Executor work-function: train one group's pipeline sequentially.

    Loads the global halves into the task's split model, builds fresh SGD
    optimizers, and runs every member's pre-sampled batches through
    :func:`split_step_math` in relay order.  Pure math — no pricing, no
    shared RNG — so results are bitwise identical on every backend.
    """
    split = task.split
    if task.client_state is not None:
        split.client.load_state_dict(task.client_state)
    if task.server_state is not None:
        split.server.load_state_dict(task.server_state)
    codec = hp.codec
    if codec.lossy:
        # Model distribution crosses the air: the first member starts
        # from what the codec preserved of the global client half.  (The
        # server half is co-located with the edge server — never coded.)
        # This runs after the backend-specific state handoff, so every
        # executor sees the identical coded weights.
        split.client.load_state_dict(codec.apply_state(split.client.state_dict()))
    client_opt = nn.SGD(
        split.client.parameters(),
        lr=hp.lr,
        momentum=hp.momentum,
        weight_decay=hp.weight_decay,
    )
    server_opt = nn.SGD(
        split.server.parameters(),
        lr=hp.lr,
        momentum=hp.momentum,
        weight_decay=hp.weight_decay,
    )
    loss_fn = nn.CrossEntropyLoss()

    loss_sum = 0.0
    for position, member_batches in enumerate(task.batches):
        if codec.lossy and position > 0:
            # Client→AP→client relay: the next member receives the coded
            # client half (parameter identity is preserved, so the live
            # optimizer keeps stepping the same parameters).
            split.client.load_state_dict(
                codec.apply_state(split.client.state_dict())
            )
        member_loss = 0.0
        for xb, yb in member_batches:
            member_loss += split_step_math(
                split, client_opt, server_opt, xb, yb, loss_fn, codec
            )
        loss_sum += member_loss / len(member_batches)

    # A private replica is discarded after this call (and pickling copies
    # process results anyway), so exporting views is safe; the substrate
    # never mutates parameter/buffer arrays in place (updates rebind).
    copy = not task.private_replica
    client_state = split.client.state_dict(copy=copy)
    if codec.lossy:
        # The last member uploads its client half over the air.
        client_state = codec.apply_state(client_state)
    return GroupResult(
        index=task.index,
        client_state=client_state,
        server_state=split.server.state_dict(copy=copy),
        weight=task.weight,
        loss_sum=loss_sum,
        num_members=len(task.members),
    )


class AsyncSplitStateMixin:
    """Barrier-free server math shared by the split schemes (GSFL, SplitFed).

    Hosts the two global halves' async plumbing: commits mix the update
    into ``_global_client_state`` / ``_global_server_state`` and keep the
    scheme's :class:`~repro.nn.split.SplitModel` loaded with the mixed
    global (the halves share modules with the full evaluation model).

    Under the mid-activity failure model a unit-round whose track
    surrendered never reaches :meth:`_async_apply_update` — the
    aggregation server drops the payload before committing and records
    the loss as an :class:`~repro.sim.server.AbortRecord` instead, so the
    mixed global only ever contains updates whose uploads genuinely
    completed.
    """

    def _async_apply_update(self, payload: object, alpha: float) -> None:
        # Imported lazily: ``repro.core`` package init imports the GSFL
        # scheme, which imports this module — a top-level import here
        # would close that cycle mid-initialization.
        from repro.core.aggregation import mix_states

        client_state, server_state = payload
        self._global_client_state = mix_states(
            self._global_client_state, client_state, alpha
        )
        self._global_server_state = mix_states(
            self._global_server_state, server_state, alpha
        )
        # mix_states allocates fresh arrays and the globals are only read
        # afterwards, so the halves can adopt them without re-copying.
        self.split.client.load_state_dict(self._global_client_state, copy=False)
        self.split.server.load_state_dict(self._global_server_state, copy=False)

    def _async_load_eval_model(self) -> None:
        # Unit training mutates the shared split model in place; reload
        # the mixed global before every evaluation snapshot.
        self.split.client.load_state_dict(self._global_client_state, copy=False)
        self.split.server.load_state_dict(self._global_server_state, copy=False)


def run_group_tasks(
    tasks: list[GroupTask],
    executor: Executor,
    split: SplitModel,
    hp: SplitHyperParams,
) -> list[GroupResult]:
    """Dispatch group tasks on ``executor``; results in task order.

    Model ownership per backend (``split`` must already hold the round's
    global halves — the schemes maintain that invariant by loading the
    aggregated state after every round):

    * serial — every task reuses ``split``; a task must reload the
      global states because the previous task trained the same module;
    * thread — each task gets a private :meth:`SplitModel.clone` replica,
      which already carries the global weights (states not re-shipped);
    * process — tasks reference ``split`` and pickling gives each worker
      its own pre-loaded copy for free (states not re-shipped).
    """
    if executor.concurrent and executor.shares_address_space:
        for task in tasks:
            task.split = split.clone()
            task.client_state = task.server_state = None
            task.private_replica = True
    elif executor.concurrent:
        split.client._last_output = None  # keep pickled payloads lean
        for task in tasks:
            task.split = split
            task.client_state = task.server_state = None
            task.private_replica = True
    else:
        for task in tasks:
            task.split = split
            task.private_replica = False
    return executor.map_groups(functools.partial(train_split_group, hp=hp), tasks)
