"""``repro.schemes`` — the training schemes compared in the paper.

* :class:`CentralizedLearning` (CL) — pooled-data edge training;
* :class:`FederatedLearning` (FL) — FedAvg over full local models;
* :class:`SplitLearning` (SL) — sequential relay split learning;
* :class:`SplitFedLearning` — per-client-replica hybrid (the §I strawman).

GSFL itself lives in :mod:`repro.core.gsfl` (it is the paper's
contribution, not a baseline); import it from ``repro.core``.
"""

from repro.schemes.base import (
    Activity,
    RoundTiming,
    Scheme,
    SchemeConfig,
    Stage,
    replay_stages,
)
from repro.schemes.centralized import CentralizedLearning
from repro.schemes.federated import FederatedLearning
from repro.schemes.parallel_split import ParallelSplitLearning
from repro.schemes.pricing import LatencyModel
from repro.schemes.split import SplitLearning
from repro.schemes.split_common import split_local_round
from repro.schemes.splitfed import SplitFedLearning

__all__ = [
    "Activity",
    "Stage",
    "RoundTiming",
    "replay_stages",
    "Scheme",
    "SchemeConfig",
    "LatencyModel",
    "split_local_round",
    "CentralizedLearning",
    "FederatedLearning",
    "SplitLearning",
    "SplitFedLearning",
    "ParallelSplitLearning",
]
