"""SplitFed learning (SFL) — the hybrid scheme the paper argues against.

Thapa et al.'s SplitFed-V1: *every* client trains in parallel against its
*own* server-side model replica, then both halves are FedAvg-aggregated.
This removes SL's sequential latency but "when there are many clients,
the number of server-side models is large, consuming prohibitive storage
resources" (paper §I) — exactly the gap GSFL fills with M ≪ N replicas.

Included as (a) the storage-footprint comparator and (b) the M=N extreme
of the grouping ablation.  Protocol-wise it is GSFL with singleton
groups; convergence-wise it matches FL's averaging frequency (every
``local_steps`` updates) while moving only smashed data and half-models.
"""

from __future__ import annotations

from repro import nn
from repro.core.aggregation import fedavg
from repro.nn.split import split_model
from repro.schemes.base import Activity, Scheme, Stage
from repro.schemes.pricing import LatencyModel
from repro.schemes.split_common import (
    AsyncSplitStateMixin,
    GroupTask,
    SplitHyperParams,
    price_local_round,
    price_model_downlink,
    price_model_uplink,
    run_group_tasks,
    train_split_group,
)
from repro.sim.server import RetryAt, UnitRoundWork

__all__ = ["SplitFedLearning"]


class SplitFedLearning(AsyncSplitStateMixin, Scheme):
    """SplitFed-V1: fully parallel split learning, one replica per client."""

    name = "SplitFed"
    supports_async = True
    #: mid-activity failure recovery: singleton "chains" have no relay to
    #: fall back on, so SplitFed retries the aborted leg after the client
    #: recovers (bounded by the retry budget) and surrenders otherwise.
    _recovery_mode = "retry"

    def __init__(self, *args: object, cut_layer: int = 1, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self.cut_layer = cut_layer
        self.split = split_model(self.model, cut_layer)
        self._loss_fn = nn.CrossEntropyLoss()
        self._pricing = LatencyModel(
            self.system,
            self.profile,
            self.config.batch_size,
            quantize_bits=self.config.quantize_bits,
            transport=self.config.transport,
        )
        self._global_client_state = self.split.client.state_dict()
        self._global_server_state = self.split.server.state_dict()

    def _run_round(self, round_index: int) -> list[Stage]:
        pricing = self._pricing
        participants = self._round_participants()
        if not participants:
            return []
        share = pricing.total_bandwidth_hz / len(participants)
        client_model_bytes = pricing.client_model_nbytes(self.cut_layer)

        # Parent thread: sample every client's batches and build every
        # transmission demand (shared fading stream) in protocol order,
        # then hand the independent client pipelines to the executor —
        # SplitFed is GSFL with singleton groups, same round engine.
        training = Stage("parallel_training")
        tasks: list[GroupTask] = []
        for client in participants:
            track = f"client-{client}"
            training.extend(
                track,
                price_model_downlink(pricing, client, client_model_bytes, share),
            )
            batches = [
                self.client_loaders[client].sample_batch()
                for _ in range(self.config.local_steps)
            ]
            training.extend(
                track,
                price_local_round(
                    client, self.cut_layer, self.config.local_steps, pricing, share
                ),
            )
            training.extend(
                track,
                price_model_uplink(pricing, client, client_model_bytes, share),
            )
            tasks.append(
                GroupTask(
                    index=client,
                    members=[client],
                    batches=[batches],
                    client_state=self._global_client_state,
                    server_state=self._global_server_state,
                    weight=float(len(self.client_datasets[client])),
                )
            )

        results = run_group_tasks(
            tasks, self.executor, self.split, SplitHyperParams.from_config(self.config)
        )
        self._last_train_loss = sum(r.loss_sum for r in results) / len(participants)

        aggregation = Stage("aggregation")
        weights = self._client_sample_counts(participants)
        self._global_client_state = fedavg([r.client_state for r in results], weights)
        self._global_server_state = fedavg([r.server_state for r in results], weights)
        self.split.client.load_state_dict(self._global_client_state, copy=False)
        self.split.server.load_state_dict(self._global_server_state, copy=False)
        aggregation.add(
            "edge-server",
            Activity(
                pricing.aggregation_demand(
                    len(participants), self.model.num_parameters()
                ),
                "aggregation",
                "edge-server",
            ),
        )
        return [training, aggregation]

    # ------------------------------------------------------------------
    # asynchronous aggregation (barrier-free policies)
    # ------------------------------------------------------------------
    def _async_units(self) -> list[int]:
        return list(range(self.num_clients))

    def _async_unit_weight(self, unit: int) -> float:
        return float(len(self.client_datasets[unit]))

    def _async_unit_round(
        self, unit: int, unit_round: int
    ) -> "UnitRoundWork | RetryAt":
        resolved = self._async_unit_dynamics([unit])
        if isinstance(resolved, RetryAt):
            return resolved
        present, slowdowns = resolved
        if not present:
            return UnitRoundWork(activities=[], payload=None, weight=0.0)

        pricing = self._pricing
        share = pricing.total_bandwidth_hz / self.num_clients
        nbytes = pricing.client_model_nbytes(self.cut_layer)
        activities = price_model_downlink(pricing, unit, nbytes, share)
        batches = [
            [
                self.client_loaders[unit].sample_batch()
                for _ in range(self.config.local_steps)
            ]
        ]
        activities.extend(
            price_local_round(
                unit, self.cut_layer, self.config.local_steps, pricing, share
            )
        )
        activities.extend(price_model_uplink(pricing, unit, nbytes, share))
        task = GroupTask(
            index=unit,
            members=[unit],
            batches=batches,
            client_state=self._global_client_state,
            server_state=self._global_server_state,
            weight=float(len(self.client_datasets[unit])),
            split=self.split,
            private_replica=False,
        )
        result = train_split_group(task, SplitHyperParams.from_config(self.config))
        activities.append(
            Activity(
                pricing.aggregation_demand(2, self.model.num_parameters()),
                "aggregation",
                "edge-server",
                detail=f"async merge client-{unit}",
            )
        )
        return UnitRoundWork(
            activities=activities,
            payload=(result.client_state, result.server_state),
            weight=result.weight,
            slowdowns=slowdowns or None,
            loss_sum=result.loss_sum,
            num_contributors=1,
        )

    # ------------------------------------------------------------------
    # storage accounting (the paper's §I argument)
    # ------------------------------------------------------------------
    def server_side_replicas(self) -> int:
        """SplitFed hosts one server-side replica per client (= N)."""
        return self.num_clients

    def server_storage_bytes(self) -> int:
        if not self._pricing.enabled:
            return 0
        return self.num_clients * self.profile.server_model_bytes(self.cut_layer)
