"""Scheme framework: timed activities, parallel stages, DES replay.

Every training scheme produces, per round, a sequence of **stages**; a
stage holds one **track** (list of sequential :class:`Activity`) per
concurrently executing actor.  Tracks inside a stage run in parallel,
stages are separated by barriers (exactly the structure of GSFL: parallel
group training → barrier → aggregation).

The actual numpy training runs when the scheme builds its activities
(on the scheme's :mod:`repro.exec` executor for the parallel-pipeline
schemes); the discrete-event kernel then **replays** the timing
structure to compose wall-clock latency and emit the global trace.  This
split keeps learning math and latency simulation decoupled while both
stay exact: groups never share state inside a round, so host execution
order cannot change the learned weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.data.dataset import DataLoader, Dataset
from repro.exec import Executor, SerialExecutor
from repro.metrics.evaluate import evaluate_model
from repro.metrics.history import TrainingHistory
from repro.sim.engine import Environment
from repro.sim.trace import TraceRecorder
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_positive

__all__ = ["Activity", "Stage", "replay_stages", "SchemeConfig", "Scheme"]


@dataclass(frozen=True)
class Activity:
    """One timed, attributed unit of simulated work."""

    duration_s: float
    phase: str
    actor: str
    nbytes: int = 0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError(f"negative duration: {self}")


@dataclass
class Stage:
    """Parallel tracks separated from neighbouring stages by barriers."""

    name: str
    tracks: dict[str, list[Activity]] = field(default_factory=dict)

    def add(self, track: str, activity: Activity) -> None:
        self.tracks.setdefault(track, []).append(activity)

    def extend(self, track: str, activities: list[Activity]) -> None:
        self.tracks.setdefault(track, []).extend(activities)

    @property
    def duration_s(self) -> float:
        """Analytic stage latency: max over tracks of summed durations."""
        if not self.tracks:
            return 0.0
        return max(sum(a.duration_s for a in acts) for acts in self.tracks.values())


def replay_stages(
    stages: list[Stage],
    recorder: TraceRecorder | None,
    round_index: int,
    start_time_s: float,
) -> float:
    """Replay a round's stages on the DES; returns the round duration.

    One process per track; an all-of barrier between stages.  Trace events
    carry absolute timestamps (``start_time_s`` offsets the kernel clock,
    which restarts per round).
    """
    env = Environment()

    def track_process(activities: list[Activity]):
        for act in activities:
            begin = env.now
            yield env.timeout(act.duration_s)
            if recorder is not None:
                recorder.record(
                    start=start_time_s + begin,
                    end=start_time_s + env.now,
                    phase=act.phase,
                    actor=act.actor,
                    round_index=round_index,
                    nbytes=act.nbytes,
                    detail=act.detail,
                )

    def round_process():
        for stage in stages:
            if not stage.tracks:
                continue
            procs = [env.process(track_process(acts)) for acts in stage.tracks.values()]
            yield env.all_of(procs)

    done = env.process(round_process())
    env.run(done)
    return env.now


@dataclass
class SchemeConfig:
    """Hyper-parameters shared by all schemes.

    ``local_steps`` is the number of mini-batches each client processes
    per round (the paper's "training epoch" per client, scaled to the
    synthetic dataset).  Momentum defaults to 0 so optimizer state need
    not ride along with relayed models in the split schemes.

    ``quantize_bits`` (extension beyond the paper) compresses the
    smashed-data / smashed-gradient wire payloads to the given bit width;
    training genuinely sees the quantization error, and the latency model
    prices the smaller payloads.
    """

    batch_size: int = 16
    local_steps: int = 2
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    eval_every: int = 1
    eval_batch_size: int = 256
    quantize_bits: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("batch_size", self.batch_size)
        check_positive("local_steps", self.local_steps)
        check_positive("lr", self.lr)
        check_positive("eval_every", self.eval_every)
        if self.quantize_bits is not None and not 1 <= self.quantize_bits <= 16:
            raise ValueError(
                f"quantize_bits must be in [1, 16] or None, got {self.quantize_bits}"
            )


class Scheme:
    """Base class for the training schemes (CL / FL / SL / SplitFed / GSFL).

    Subclasses implement :meth:`_run_round`, returning the round's stages;
    the base class owns the loop: eager training + DES replay + periodic
    evaluation into a :class:`~repro.metrics.history.TrainingHistory`.
    """

    name = "base"

    def __init__(
        self,
        model: nn.Sequential,
        client_datasets: list[Dataset],
        test_dataset: Dataset,
        system: "object | None" = None,
        profile: nn.ModelProfile | None = None,
        config: SchemeConfig | None = None,
        recorder: TraceRecorder | None = None,
        executor: Executor | None = None,
    ) -> None:
        if not client_datasets:
            raise ValueError("need at least one client dataset")
        self.model = model
        self.client_datasets = client_datasets
        self.test_dataset = test_dataset
        self.system = system
        self.profile = profile
        self.config = config or SchemeConfig()
        self.recorder = recorder if recorder is not None else TraceRecorder()
        # Round-execution backend for schemes with independent per-group /
        # per-client pipelines (GSFL, SplitFed, PSL); inherently sequential
        # schemes (SL, CL) ignore it.
        self.executor = executor if executor is not None else SerialExecutor()
        self.history = TrainingHistory(scheme=self.name)
        self._elapsed_s = 0.0
        self._last_train_loss = float("nan")

        rngs = spawn_rngs(self.config.seed, len(client_datasets))
        self.client_loaders = [
            DataLoader(
                ds, batch_size=self.config.batch_size, shuffle=True, seed=rng
            )
            for ds, rng in zip(client_datasets, rngs)
        ]

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    @property
    def num_clients(self) -> int:
        return len(self.client_datasets)

    def _run_round(self, round_index: int) -> list[Stage]:
        """Train one round eagerly and return its timing stages."""
        raise NotImplementedError

    def _evaluation_model(self) -> nn.Module:
        """Model to evaluate after a round (global/aggregated view)."""
        return self.model

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, num_rounds: int) -> TrainingHistory:
        """Train for ``num_rounds`` rounds; returns the filled history."""
        check_positive("num_rounds", num_rounds)
        for r in range(num_rounds):
            stages = self._run_round(r)
            duration = replay_stages(stages, self.recorder, r, self._elapsed_s)
            analytic = sum(s.duration_s for s in stages)
            if not np.isclose(duration, analytic, rtol=1e-9, atol=1e-9):
                raise AssertionError(
                    f"DES replay ({duration}) disagrees with analytic stage "
                    f"latency ({analytic}) — kernel or stage construction bug"
                )
            self._elapsed_s += duration
            if (r + 1) % self.config.eval_every == 0 or r == num_rounds - 1:
                self._record_eval(r)
        return self.history

    def _record_eval(self, round_index: int) -> None:
        _, acc = evaluate_model(
            self._evaluation_model(),
            self.test_dataset,
            batch_size=self.config.eval_batch_size,
        )
        self.history.add(
            round_index=round_index + 1,
            latency_s=self._elapsed_s,
            train_loss=self._last_train_loss,
            test_accuracy=acc,
        )

    # ------------------------------------------------------------------
    # shared helpers for subclasses
    # ------------------------------------------------------------------
    def _make_sgd(self, params: "object") -> nn.SGD:
        return nn.SGD(
            params,
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    def _client_sample_counts(self) -> np.ndarray:
        return np.array([len(ds) for ds in self.client_datasets], dtype=np.float64)
