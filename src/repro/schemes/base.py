"""Scheme framework: demand-based activities, parallel stages, DES runtime.

Every training scheme produces, per round, a sequence of **stages**; a
stage holds one **track** (list of sequential :class:`Activity`) per
concurrently executing actor.  Tracks inside a stage run in parallel,
stages are separated by barriers (exactly the structure of GSFL: parallel
group training → barrier → aggregation).

Activities no longer carry pre-priced durations: they carry **demands**
(FLOPs for compute, bytes + channel context for transmission — see
:mod:`repro.sim.runtime`), and a persistent per-run
:class:`~repro.sim.runtime.Runtime` resolves each demand *during replay*
— against a shared :class:`~repro.sim.resources.FairShareLink` medium
whose bandwidth division reacts to the instantaneously active
transmitter set, per-device compute resources, and per-round straggler
multipliers.  The actual numpy training still runs when the scheme
builds its activities (on the scheme's :mod:`repro.exec` executor for
the parallel-pipeline schemes); the runtime then resolves the timing
structure to compose wall-clock latency and emit the global trace.  This
split keeps learning math and latency simulation decoupled while both
stay exact: groups never share state inside a round, so neither host
execution order nor the timing model can change the learned weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import nn
from repro.data.dataset import DataLoader, Dataset
from repro.exec import Executor, SerialExecutor
from repro.metrics.evaluate import evaluate_model
from repro.metrics.history import TrainingHistory
from repro.sim.cross_traffic import CrossTrafficConfig, start_cross_traffic
from repro.sim.failures import FailureInjector
from repro.sim.runtime import (
    Demand,
    Runtime,
    TrackRecovery,
    demand_lower_bound_s,
    demand_nominal_s,
)
from repro.sim.server import (
    AggregationServer,
    RetryAt,
    StalenessPolicy,
    UnitRoundWork,
    UpdateRecord,
    parse_aggregation,
)
from repro.sim.trace import TraceRecorder
from repro.sim.transport import IntKCodec, TransportCodec, parse_transport
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_in_choices, check_positive

if TYPE_CHECKING:  # pragma: no cover - type-only (experiments imports us)
    from repro.experiments.dynamics import ClientDynamics, RoundConditions

__all__ = [
    "Activity",
    "Stage",
    "RoundTiming",
    "replay_stages",
    "SchemeConfig",
    "Scheme",
    "MEDIUM_POLICIES",
]

#: medium share policies selectable via :class:`SchemeConfig`
MEDIUM_POLICIES = ("static", "contended")


@dataclass(frozen=True)
class Activity:
    """One attributed unit of simulated work, described by its demand.

    ``demand`` may be a plain float — shorthand for a fixed, pre-resolved
    duration (zero-priced mode, waits, tests).
    """

    demand: "Demand"
    phase: str
    actor: str
    nbytes: int = 0
    detail: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.demand, (int, float)) and self.demand < 0:
            raise ValueError(f"negative duration: {self}")

    @property
    def duration_s(self) -> float:
        """Analytic *lower bound* on the resolved duration.

        Transmissions are priced with the whole medium to themselves and
        compute without straggler slowdown, so no share policy or
        injected disturbance can resolve the activity faster.  The
        DES-resolved duration is exact; this is the floor it never
        undercuts.
        """
        return demand_lower_bound_s(self.demand)

    @property
    def nominal_s(self) -> float:
        """Static-share analytic duration (the pre-runtime pricing model)."""
        return demand_nominal_s(self.demand)


@dataclass
class Stage:
    """Parallel tracks separated from neighbouring stages by barriers."""

    name: str
    tracks: dict[str, list[Activity]] = field(default_factory=dict)

    def add(self, track: str, activity: Activity) -> None:
        self.tracks.setdefault(track, []).append(activity)

    def extend(self, track: str, activities: list[Activity]) -> None:
        self.tracks.setdefault(track, []).extend(activities)

    @property
    def duration_s(self) -> float:
        """Analytic stage-latency *lower bound*: max over tracks of summed
        per-activity lower bounds.  The DES-resolved stage span is always
        at least this long (see :attr:`Activity.duration_s`)."""
        if not self.tracks:
            return 0.0
        return max(
            sum(a.duration_s for a in acts) for acts in self.tracks.values()
        )

    @property
    def nominal_duration_s(self) -> float:
        """Static-share analytic stage latency (pre-runtime model)."""
        if not self.tracks:
            return 0.0
        return max(
            sum(a.nominal_s for a in acts) for acts in self.tracks.values()
        )


@dataclass(frozen=True)
class RoundTiming:
    """Per-round timing triple kept by the scheme driver.

    ``des_s`` is the runtime-resolved duration, ``analytic_s`` the
    static-share model (sum of stage nominal durations — what the old
    pricing pipeline would have reported), ``lower_bound_s`` the
    contention-free floor.  Under the static policy with no dynamics,
    ``des_s == analytic_s``; a contention-aware policy or straggler
    injection makes them diverge while ``des_s >= lower_bound_s`` always
    holds.
    """

    round_index: int
    des_s: float
    analytic_s: float
    lower_bound_s: float


def replay_stages(
    stages: list[Stage],
    recorder: TraceRecorder | None = None,
    round_index: int = 0,
    runtime: Runtime | None = None,
) -> float:
    """Resolve one round's stages on a runtime; returns the round duration.

    Convenience wrapper for standalone use (tests, benchmarks): creates a
    throwaway static :class:`~repro.sim.runtime.Runtime` when none is
    given.  Training schemes instead hold one persistent runtime per run
    so the clock never restarts and trace timestamps are absolute.
    """
    if runtime is None:
        runtime = Runtime()
    return runtime.execute_round(stages, recorder, round_index)


@dataclass
class SchemeConfig:
    """Hyper-parameters shared by all schemes.

    ``local_steps`` is the number of mini-batches each client processes
    per round (the paper's "training epoch" per client, scaled to the
    synthetic dataset).  Momentum defaults to 0 so optimizer state need
    not ride along with relayed models in the split schemes.

    ``transport`` (extension beyond the paper) names the wire codec for
    everything that crosses the air — smashed data, gradients, and model
    payloads: ``"float32"`` (identity, the default), ``"int8"`` /
    ``"intk:K"`` uniform affine quantization, ``"topk:F"`` magnitude
    sparsification.  Training genuinely sees the codec's error, the
    latency model prices the smaller payloads, and encode/decode FLOPs
    are charged to the owning device — see :mod:`repro.sim.transport`.
    ``quantize_bits`` is retained as sugar for ``transport="intk:K"``
    (setting both to conflicting values is an error).

    ``medium`` selects how the runtime's shared wireless medium divides
    bandwidth: ``"static"`` gives every transmission exactly its nominal
    allocation (the analytic model — subchannels sit idle when their
    owner computes), ``"contended"`` re-runs the system's bandwidth
    allocator over the *instantaneously active* transmitter set on every
    flow arrival/departure, so shares change as group pipelines drift
    apart.

    ``aggregation`` selects when the server folds unit updates into the
    global model: ``"sync"`` is the paper's per-round barrier,
    ``"async"`` FedAsync-style barrier-free aggregation with polynomial
    staleness decay, ``"bounded:K"`` barrier-free with an SSP-style
    max-lag gate (``bounded:0`` *is* the sync barrier) — see
    :mod:`repro.sim.server`.

    ``regroup`` / ``regroup_every`` select how group-structured schemes
    (GSFL) re-partition the fleet between rounds: ``"static"`` keeps the
    construction-time partition forever (today's behaviour, golden-pinned
    bitwise), ``"availability_aware"`` re-deals by expected remaining
    up-time from the churn trace, ``"abort_history"`` by an EWMA of the
    fault telemetry — see :mod:`repro.core.regroup`.  ``regroup_every``
    is the round period of the re-partition (evaluated from round 1 on).
    Schemes without group structure ignore both knobs.
    """

    batch_size: int = 16
    local_steps: int = 2
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    eval_every: int = 1
    eval_batch_size: int = 256
    quantize_bits: int | None = None
    transport: str = "float32"
    medium: str = "static"
    aggregation: str = "sync"
    regroup: str = "static"
    regroup_every: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        # Function-level import: repro.core.gsfl imports this module, so a
        # top-level import of repro.core.* here would cycle at package init.
        from repro.core.regroup import REGROUP_POLICIES

        check_positive("batch_size", self.batch_size)
        check_positive("local_steps", self.local_steps)
        check_positive("lr", self.lr)
        check_positive("eval_every", self.eval_every)
        check_in_choices("medium", self.medium, MEDIUM_POLICIES)
        check_in_choices("regroup", self.regroup, REGROUP_POLICIES)
        check_positive("regroup_every", self.regroup_every)
        parse_aggregation(self.aggregation)  # raises on malformed specs
        if self.quantize_bits is not None and not 1 <= self.quantize_bits <= 16:
            raise ValueError(
                f"quantize_bits must be in [1, 16] or None, got {self.quantize_bits}"
            )
        codec = parse_transport(self.transport)  # raises on malformed specs
        if self.quantize_bits is not None:
            if not codec.lossy:
                codec = IntKCodec(self.quantize_bits)  # sugar for intk:K
            elif not (
                isinstance(codec, IntKCodec)
                and codec.num_bits == self.quantize_bits
            ):
                raise ValueError(
                    f"transport {self.transport!r} conflicts with "
                    f"quantize_bits={self.quantize_bits}"
                )
        elif isinstance(codec, IntKCodec):
            self.quantize_bits = codec.num_bits
        self.transport = codec.name

    @property
    def codec(self) -> TransportCodec:
        """The resolved wire codec (:mod:`repro.sim.transport`)."""
        return parse_transport(self.transport)


class Scheme:
    """Base class for the training schemes (CL / FL / SL / SplitFed / GSFL).

    Subclasses implement :meth:`_run_round`, returning the round's stages;
    the base class owns the loop: round conditions (churn / participation
    / stragglers) → eager training → runtime resolution → periodic
    evaluation into a :class:`~repro.metrics.history.TrainingHistory`.
    """

    name = "base"
    #: whether the scheme implements the barrier-free unit-pipeline
    #: contract (set by subclasses that override the ``_async_*`` hooks)
    supports_async = False
    #: how the scheme recovers from a mid-activity preemption once the
    #: retry budget is spent: ``"retry"`` surrenders the round (FL /
    #: SplitFed — the unit *is* the dead client), ``"reroute"`` skips the
    #: dead client's pipeline section and continues with the survivors
    #: (GSFL relay chains)
    _recovery_mode = "retry"

    def __init__(
        self,
        model: nn.Sequential,
        client_datasets: list[Dataset],
        test_dataset: Dataset,
        system: "object | None" = None,
        profile: nn.ModelProfile | None = None,
        config: SchemeConfig | None = None,
        recorder: TraceRecorder | None = None,
        executor: Executor | None = None,
        dynamics: "ClientDynamics | None" = None,
        cross_traffic: "CrossTrafficConfig | None" = None,
    ) -> None:
        if not client_datasets:
            raise ValueError("need at least one client dataset")
        self.model = model
        self.client_datasets = client_datasets
        self.test_dataset = test_dataset
        self.system = system
        self.profile = profile
        self.config = config or SchemeConfig()
        self.recorder = recorder if recorder is not None else TraceRecorder()
        # Round-execution backend for schemes with independent per-group /
        # per-client pipelines (GSFL, SplitFed, PSL); inherently sequential
        # schemes (SL, CL) ignore it.
        self.executor = executor if executor is not None else SerialExecutor()
        self.dynamics = dynamics
        self.history = TrainingHistory(scheme=self.name)
        self.runtime = self._make_runtime()
        # Background cross-traffic competes with the protocol's flows for
        # raw link capacity (scenario-catalog worlds); None leaves the
        # medium untouched, so every historical run is byte-for-byte
        # unaffected.
        self.cross_traffic = cross_traffic
        if cross_traffic is not None and self.runtime.medium is not None:
            if self.config.medium != "static":
                raise ValueError(
                    "cross-traffic requires the 'static' medium: allocator-"
                    "backed contended policies index flows by client id and "
                    "cannot host anonymous background transmitters"
                )
            start_cross_traffic(self.runtime, cross_traffic)
        # Mid-activity failure model: arm the runtime's preemption source.
        # ``none``/``round`` leave the injector unset, so demand
        # resolution is event-for-event identical to the historical path
        # (the golden-history suite pins that bitwise).
        self.failure_model = (
            dynamics.config.failure_model if dynamics is not None else "none"
        )
        if (
            dynamics is not None
            and self.failure_model == "mid-activity"
            and dynamics.config.has_churn
        ):
            self.runtime.failure_injector = FailureInjector(dynamics)
        self.aggregation_policy: StalenessPolicy = parse_aggregation(
            self.config.aggregation
        )
        self._aggregation_server: AggregationServer | None = None
        self.round_timings: list[RoundTiming] = []
        self._round_conditions: "RoundConditions | None" = None
        self._elapsed_s = 0.0
        self._last_train_loss = float("nan")

        rngs = spawn_rngs(self.config.seed, len(client_datasets))
        self.client_loaders = [
            DataLoader(
                ds, batch_size=self.config.batch_size, shuffle=True, seed=rng
            )
            for ds, rng in zip(client_datasets, rngs)
        ]

    def _make_runtime(self) -> Runtime:
        """One persistent runtime per run; contended medium on request."""
        if self.system is None:
            return Runtime()
        total_hz = self.system.allocator.total_bandwidth_hz
        if self.config.medium == "contended":
            from repro.wireless.bandwidth import as_share_policy

            policy = as_share_policy(self.system.allocator, self.system.channel)
            return Runtime(total_hz, policy)
        return Runtime(total_hz)

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    @property
    def num_clients(self) -> int:
        return len(self.client_datasets)

    def _run_round(self, round_index: int) -> list[Stage]:
        """Train one round eagerly and return its timing stages."""
        raise NotImplementedError

    def _evaluation_model(self) -> nn.Module:
        """Model to evaluate after a round (global/aggregated view)."""
        return self.model

    def _round_participants(self) -> list[int]:
        """Clients taking part in the current round (all, without dynamics)."""
        if self._round_conditions is None:
            return list(range(self.num_clients))
        return list(self._round_conditions.participants)

    # ------------------------------------------------------------------
    # asynchronous-aggregation contract (opt-in per scheme)
    # ------------------------------------------------------------------
    def _async_units(self) -> list[int]:
        """Independent pipelines for barrier-free aggregation.

        Schemes with parallel unit pipelines (GSFL groups, SplitFed/FL
        clients) override this together with :meth:`_async_unit_round`,
        :meth:`_async_apply_update` and :meth:`_async_load_eval_model`
        and set ``supports_async``; inherently sequential schemes keep
        the barrier.
        """
        raise ValueError(
            f"scheme {self.name!r} does not support "
            f"aggregation={self.config.aggregation!r}; only 'sync'"
        )

    def _async_unit_round(
        self, unit: int, unit_round: int
    ) -> "UnitRoundWork | RetryAt":
        """Eagerly train one unit-round at the current simulated time."""
        raise NotImplementedError

    def _async_apply_update(self, payload: object, alpha: float) -> None:
        """Merge one committed update into the global state (server math)."""
        raise NotImplementedError

    def _async_load_eval_model(self) -> None:
        """Load the mixed global state into the evaluation model."""
        raise NotImplementedError

    def _async_unit_dynamics(
        self, members: list[int]
    ) -> "tuple[list[int], dict[int, float]] | RetryAt":
        """Resolve churn/participation/stragglers for one unit-round.

        Returns the surviving members plus straggler slowdowns, or a
        :class:`RetryAt` when every member is inside a churn down-window.
        """
        if self.dynamics is None:
            return list(members), {}
        now = self.runtime.now
        present, slowdowns = self.dynamics.unit_round_conditions(members, now)
        if not present:
            resume = self.dynamics.next_recovery_s(now, clients=members)
            if resume is not None and resume > now:
                return RetryAt(resume)
        return present, slowdowns

    def _track_recovery(self) -> "TrackRecovery | None":
        """Recovery semantics for preempted tracks (``None`` = disabled)."""
        injector = self.runtime.failure_injector
        if injector is None or self.dynamics is None:
            return None
        return TrackRecovery(
            resume_s=injector.recovery_s,
            max_retries=self.dynamics.config.max_retries,
            mode=self._recovery_mode,
        )

    @property
    def aggregation_updates(self) -> "list[UpdateRecord]":
        """Per-commit staleness log of a barrier-free run (empty for sync)."""
        if self._aggregation_server is None:
            return []
        return list(self._aggregation_server.updates)

    @property
    def aggregation_aborts(self) -> "list":
        """Aborted/partial unit-round contributions of a barrier-free run
        (:class:`~repro.sim.server.AbortRecord`; empty for sync)."""
        if self._aggregation_server is None:
            return []
        return list(self._aggregation_server.aborted)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, num_rounds: int) -> TrainingHistory:
        """Train for ``num_rounds`` rounds; returns the filled history.

        The configured :class:`~repro.sim.server.StalenessPolicy` decides
        the round structure: the sync barrier replays the classic
        stage-by-stage loop; barrier-free policies hand the scheme's unit
        pipelines to a DES-resident :class:`AggregationServer`.
        """
        check_positive("num_rounds", num_rounds)
        if self.aggregation_policy.synchronous:
            return self._run_sync(num_rounds)
        return self._run_async(num_rounds)

    def _run_sync(self, num_rounds: int) -> TrainingHistory:
        """Classic barriered loop (the paper's per-round protocol)."""
        for r in range(num_rounds):
            if self.dynamics is not None:
                conditions = self.dynamics.begin_round(r, self.runtime.now)
                if not conditions.participants:
                    # Everybody is down: a zero-cost round would freeze
                    # the clock and replay the same all-down snapshot
                    # forever.  Wait out the churn window instead.
                    next_up = getattr(self.dynamics, "next_recovery_s", None)
                    resume = next_up(self.runtime.now) if next_up else None
                    if resume is not None and resume > self.runtime.now:
                        self.runtime.advance_to(resume)
                        conditions = self.dynamics.begin_round(r, self.runtime.now)
                self._round_conditions = conditions
                slowdowns = conditions.slowdowns
            else:
                slowdowns = None
            stages = self._run_round(r)
            aborts_before = len(self.recorder.aborts)
            duration = self.aggregation_policy.resolve_round(
                self.runtime, stages, self.recorder, r,
                compute_slowdown=slowdowns, recovery=self._track_recovery(),
            )
            lower = sum(s.duration_s for s in stages)
            analytic = sum(s.nominal_duration_s for s in stages)
            if (
                len(self.recorder.aborts) == aborts_before
                and duration < lower * (1.0 - 1e-9) - 1e-12
            ):
                # Mid-activity preemption legitimately cuts tracks short
                # (a surrendered/rerouted track skips activities), so the
                # floor only binds on rounds in which no abort fired.
                raise AssertionError(
                    f"DES-resolved round duration ({duration}) undercuts the "
                    f"analytic lower bound ({lower}) — kernel or demand bug"
                )
            self.round_timings.append(RoundTiming(r, duration, analytic, lower))
            self._elapsed_s = self.runtime.now
            if (r + 1) % self.config.eval_every == 0 or r == num_rounds - 1:
                self._record_eval(r)
        return self.history

    def _run_async(self, num_rounds: int) -> TrainingHistory:
        """Barrier-free loop: unit pipelines + the DES aggregation server.

        Every unit (group or client) runs ``num_rounds`` rounds as its
        own free-running DES process; the server merges each update the
        moment it lands, weighted by staleness.  History points keep the
        sync semantics: global round ``r`` completes when the *slowest*
        unit finishes its ``r``-th round, and evaluation snapshots the
        mixed global model at that instant (which may already contain
        later-round contributions from faster units — the point of
        dropping the barrier).
        """
        units = self._async_units()
        weights = [self._async_unit_weight(u) for u in units]
        server = AggregationServer(
            self.runtime,
            self.aggregation_policy,
            num_units=len(units),
            total_weight=sum(weights),
            apply_update=self._async_apply_update,
        )
        self._aggregation_server = server

        loss_sums = [0.0] * num_rounds
        loss_counts = [0] * num_rounds
        nominal_s = [0.0] * num_rounds
        recorded = 0
        last_end = self.runtime.now

        def work_fn(unit_index: int, unit_round: int) -> "UnitRoundWork | RetryAt":
            work = self._async_unit_round(units[unit_index], unit_round)
            if isinstance(work, UnitRoundWork) and work.recovery is None:
                work.recovery = self._track_recovery()
            return work

        def on_commit(
            unit_index: int,
            unit_round: int,
            work: UnitRoundWork,
            record: "UpdateRecord | None",
        ) -> None:
            nonlocal recorded, last_end
            loss_sums[unit_round] += work.loss_sum
            loss_counts[unit_round] += work.num_contributors
            nominal_s[unit_round] = max(
                nominal_s[unit_round], sum(a.nominal_s for a in work.activities)
            )
            finished = min(server.completed)
            while recorded < finished:
                r = recorded
                now = self.runtime.now
                # Rounds overlap under barrier-free policies, so the
                # contention-free per-round floor is vacuous (0); the
                # analytic column keeps the static barrier model's
                # estimate for sync-vs-async latency comparisons.
                self.round_timings.append(
                    RoundTiming(r, now - last_end, nominal_s[r], 0.0)
                )
                last_end = now
                self._elapsed_s = now
                if loss_counts[r]:
                    self._last_train_loss = loss_sums[r] / loss_counts[r]
                if (r + 1) % self.config.eval_every == 0 or r == num_rounds - 1:
                    self._async_load_eval_model()
                    self._record_eval(r)
                recorded += 1

        server.run(work_fn, num_rounds, recorder=self.recorder, on_commit=on_commit)
        self._elapsed_s = self.runtime.now
        return self.history

    def _async_unit_weight(self, unit: int) -> float:
        """Static FedAvg sample weight of one unit (normalizes mixing)."""
        raise NotImplementedError

    def _record_eval(self, round_index: int) -> None:
        _, acc = evaluate_model(
            self._evaluation_model(),
            self.test_dataset,
            batch_size=self.config.eval_batch_size,
        )
        self.history.add(
            round_index=round_index + 1,
            latency_s=self._elapsed_s,
            train_loss=self._last_train_loss,
            test_accuracy=acc,
        )

    # ------------------------------------------------------------------
    # shared helpers for subclasses
    # ------------------------------------------------------------------
    def _make_sgd(self, params: "object") -> nn.SGD:
        return nn.SGD(
            params,
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    def _client_sample_counts(self, clients: list[int] | None = None) -> np.ndarray:
        if clients is None:
            clients = range(len(self.client_datasets))
        return np.array(
            [len(self.client_datasets[c]) for c in clients], dtype=np.float64
        )
