"""Parallel split learning (PSL) — the paper's reference [2] baseline.

Wu et al. (JSAC 2023) parallelize split learning differently from both
SplitFed and GSFL: all clients run their client-side forward **in
parallel**, upload smashed data concurrently, and the edge server
processes the *concatenated* batch through a **single** server-side
model (one replica — minimal storage, like vanilla SL).  Gradients fan
back out to the clients, whose client-side models are then aggregated.

Comparison axes against the other schemes:

================  ==================  ====================  ============
scheme            client parallelism  server-side replicas  averaging
================  ==================  ====================  ============
SL                none (serial)       1                     never
SplitFed          full                N                     every round
GSFL              M groups            M                     every round
PSL (this)        full                1                     every round
================  ==================  ====================  ============

PSL's server step uses an effective batch of ``N × batch_size``, so its
gradient is lower-variance than GSFL's but it averages client halves as
often as FL — convergence sits between FL and GSFL.  Included as an
extension baseline (the paper cites it as the state of the art its
grouping improves on).
"""

from __future__ import annotations

import copy
import functools
from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.core.aggregation import fedavg
from repro.nn.split import ClientHalf, SmashedBatch, split_model
from repro.nn.tensor import Tensor
from repro.schemes.base import Activity, Scheme, Stage
from repro.schemes.pricing import LatencyModel
from repro.schemes.split_common import (
    SplitHyperParams,
    price_model_downlink,
    price_model_uplink,
)

__all__ = ["ParallelSplitLearning"]


@dataclass
class _ClientPhaseTask:
    """One client's share of a PSL lockstep phase (forward or backward)."""

    client: int
    state: dict[str, np.ndarray]
    xb: np.ndarray
    grad: np.ndarray | None = None  # None → forward-only phase
    half: ClientHalf = field(repr=False, default=None)  # type: ignore[assignment]
    private_replica: bool = True


def _client_forward(task: _ClientPhaseTask) -> np.ndarray:
    """Forward phase: produce the smashed values that go on the wire."""
    task.half.load_state_dict(task.state)
    return task.half.forward_to_smashed(Tensor(task.xb)).values


def _client_backward(
    task: _ClientPhaseTask, hp: SplitHyperParams
) -> dict[str, np.ndarray]:
    """Backward phase: re-run the forward to rebuild this client's graph,
    inject the fused gradient slice, step, and return the new half-state.

    (The re-run is inherent to PSL's single-server design: the worker's
    module may have served another client since the forward phase.
    Deterministic layers reproduce the same smashed values; batch-norm
    running stats are touched twice per step, which only perturbs the
    aggregated buffers slightly.)
    """
    task.half.load_state_dict(task.state)
    task.half.forward_to_smashed(Tensor(task.xb))
    opt = nn.SGD(
        task.half.parameters(),
        lr=hp.lr,
        momentum=hp.momentum,
        weight_decay=hp.weight_decay,
    )
    opt.zero_grad()
    task.half.backward_from_gradient(task.grad)
    opt.step()
    return task.half.state_dict(copy=not task.private_replica)


class ParallelSplitLearning(Scheme):
    """PSL: concurrent client forward, single server model, FedAvg of
    client halves."""

    name = "PSL"

    def __init__(self, *args: object, cut_layer: int = 1, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self.cut_layer = cut_layer
        self.split = split_model(self.model, cut_layer)
        self._loss_fn = nn.CrossEntropyLoss()
        self._pricing = LatencyModel(
            self.system,
            self.profile,
            self.config.batch_size,
            quantize_bits=self.config.quantize_bits,
            transport=self.config.transport,
        )
        self._server_opt = self._make_sgd(self.split.server.parameters())
        self._global_client_state = self.split.client.state_dict()
        self._client_replicas: list[ClientHalf] | None = None

    def _phase_tasks(
        self, tasks: list[_ClientPhaseTask]
    ) -> list[_ClientPhaseTask]:
        """Attach a client-half model to each lockstep task (see
        :func:`repro.schemes.split_common.run_group_tasks` for the
        per-backend ownership rules)."""
        ex = self.executor
        if ex.concurrent and ex.shares_address_space:
            if self._client_replicas is None or len(self._client_replicas) < len(tasks):
                self.split.client._last_output = None
                self._client_replicas = [
                    copy.deepcopy(self.split.client) for _ in tasks
                ]
            for task, replica in zip(tasks, self._client_replicas):
                task.half = replica
                task.private_replica = True
        else:
            self.split.client._last_output = None
            for task in tasks:
                task.half = self.split.client
                task.private_replica = ex.concurrent
        return tasks

    def _run_round(self, round_index: int) -> list[Stage]:
        cfg = self.config
        pricing = self._pricing
        participants = self._round_participants()
        if not participants:
            return []
        share = pricing.total_bandwidth_hz / len(participants)
        client_model_bytes = pricing.client_model_nbytes(self.cut_layer)
        codec = pricing.codec
        lossy = codec.lossy
        smashed_scalars = pricing.smashed_scalars(self.cut_layer) if lossy else 0

        distribution = Stage("distribution")
        if pricing.enabled:
            for c in participants:
                distribution.extend(
                    f"client-{c}",
                    price_model_downlink(pricing, c, client_model_bytes, share),
                )

        training = Stage("parallel_steps")
        client_states: list[dict[str, np.ndarray]] = []
        total_loss = 0.0
        hp = SplitHyperParams.from_config(cfg)
        # Every client starts from what the codec preserved of the
        # broadcast global half (identity codec: the global itself).
        distributed_state = (
            codec.apply_state(self._global_client_state)
            if lossy
            else self._global_client_state
        )

        # Per-client working copies of the client half, trained in
        # lockstep; the server half is shared and sees the fused batch.
        # Each lockstep phase (client forwards, client backwards) is a set
        # of independent per-client tasks dispatched on the executor; the
        # fused server step between them stays in the parent.
        for step in range(cfg.local_steps):
            step_batches = []
            for c in participants:
                xb, yb = self.client_loaders[c].sample_batch()
                step_batches.append((xb, yb))

            def state_for(position: int) -> dict[str, np.ndarray]:
                return (
                    distributed_state if step == 0 else client_states[position]
                )

            # --- parallel client forwards; smashed data crosses the cut --
            forward_tasks = self._phase_tasks(
                [
                    _ClientPhaseTask(client=c, state=state_for(i), xb=xb)
                    for i, (c, (xb, _)) in enumerate(zip(participants, step_batches))
                ]
            )
            smashed_per_client = self.executor.map_groups(
                _client_forward, forward_tasks
            )
            if lossy:
                smashed_per_client = [
                    codec.apply(values) for values in smashed_per_client
                ]
            for c in participants:
                training.add(
                    f"client-{c}",
                    Activity(
                        pricing.client_forward_demand(c, self.cut_layer),
                        "client_compute",
                        f"client-{c}",
                        detail="forward",
                    ),
                )
                if lossy:
                    training.add(
                        f"client-{c}",
                        Activity(
                            pricing.client_encode_demand(c, smashed_scalars),
                            "encode",
                            f"client-{c}",
                            detail="smashed",
                        ),
                    )
                training.add(
                    f"client-{c}",
                    Activity(
                        pricing.uplink_smashed_demand(c, self.cut_layer, share),
                        "uplink_smashed",
                        f"client-{c}",
                        nbytes=pricing.smashed_nbytes(self.cut_layer),
                    ),
                )
            if lossy:
                # The server decodes all N arrivals before the fused step.
                training.add(
                    "edge-server",
                    Activity(
                        pricing.server_decode_demand(
                            smashed_scalars * len(participants)
                        ),
                        "decode",
                        "edge-server",
                        detail="fused smashed",
                    ),
                )

            # --- single server step over the fused batch ----------------
            fused = SmashedBatch(values=np.concatenate(smashed_per_client, axis=0))
            fused_targets = np.concatenate([yb for _, yb in step_batches])
            self._server_opt.zero_grad()
            loss, fused_grad, _ = self.split.server.forward_backward(
                fused, fused_targets, self._loss_fn
            )
            self._server_opt.step()
            if lossy:
                fused_grad = codec.apply(fused_grad)
            total_loss += loss
            # Server compute scales with the fused batch (N x batch).
            training.add(
                "edge-server",
                Activity(
                    pricing.server_split_step_demand(
                        self.cut_layer, multiplier=len(participants)
                    ),
                    "server_compute",
                    "edge-server",
                    detail="fused batch",
                ),
            )
            if lossy:
                # One fused encode for all N gradient slices.
                training.add(
                    "edge-server",
                    Activity(
                        pricing.server_encode_demand(
                            smashed_scalars * len(participants)
                        ),
                        "encode",
                        "edge-server",
                        detail="fused gradient",
                    ),
                )

            # --- gradients fan back out; client halves step in parallel --
            backward_tasks = []
            offset = 0
            for i, (c, (xb, _)) in enumerate(zip(participants, step_batches)):
                batch = xb.shape[0]
                backward_tasks.append(
                    _ClientPhaseTask(
                        client=c,
                        state=state_for(i),
                        xb=xb,
                        grad=fused_grad[offset : offset + batch],
                    )
                )
                offset += batch
            client_states = self.executor.map_groups(
                functools.partial(_client_backward, hp=hp),
                self._phase_tasks(backward_tasks),
            )
            for c in participants:
                training.add(
                    f"client-{c}",
                    Activity(
                        pricing.downlink_gradient_demand(c, self.cut_layer, share),
                        "downlink_gradient",
                        f"client-{c}",
                        nbytes=pricing.smashed_nbytes(self.cut_layer),
                    ),
                )
                if lossy:
                    training.add(
                        f"client-{c}",
                        Activity(
                            pricing.client_decode_demand(c, smashed_scalars),
                            "decode",
                            f"client-{c}",
                            detail="gradient",
                        ),
                    )
                training.add(
                    f"client-{c}",
                    Activity(
                        pricing.client_backward_demand(c, self.cut_layer),
                        "client_compute",
                        f"client-{c}",
                        detail="backward",
                    ),
                )

        self._last_train_loss = total_loss / cfg.local_steps

        upload = Stage("upload")
        if pricing.enabled:
            for c in participants:
                upload.extend(
                    f"client-{c}",
                    price_model_uplink(pricing, c, client_model_bytes, share),
                )

        aggregation = Stage("aggregation")
        if lossy:
            # The server averages what survived the uplink codec.
            client_states = [codec.apply_state(s) for s in client_states]
        self._global_client_state = fedavg(
            client_states, self._client_sample_counts(participants)
        )
        self.split.client.load_state_dict(self._global_client_state, copy=False)
        aggregation.add(
            "edge-server",
            Activity(
                pricing.aggregation_demand(
                    len(participants), self.model.num_parameters()
                ),
                "aggregation",
                "edge-server",
            ),
        )
        return [distribution, training, upload, aggregation]

    def server_side_replicas(self) -> int:
        """PSL keeps a single server-side model (like vanilla SL)."""
        return 1

    def server_storage_bytes(self) -> int:
        if not self._pricing.enabled:
            return 0
        return self.profile.server_model_bytes(self.cut_layer)
