"""Parallel split learning (PSL) — the paper's reference [2] baseline.

Wu et al. (JSAC 2023) parallelize split learning differently from both
SplitFed and GSFL: all clients run their client-side forward **in
parallel**, upload smashed data concurrently, and the edge server
processes the *concatenated* batch through a **single** server-side
model (one replica — minimal storage, like vanilla SL).  Gradients fan
back out to the clients, whose client-side models are then aggregated.

Comparison axes against the other schemes:

================  ==================  ====================  ============
scheme            client parallelism  server-side replicas  averaging
================  ==================  ====================  ============
SL                none (serial)       1                     never
SplitFed          full                N                     every round
GSFL              M groups            M                     every round
PSL (this)        full                1                     every round
================  ==================  ====================  ============

PSL's server step uses an effective batch of ``N × batch_size``, so its
gradient is lower-variance than GSFL's but it averages client halves as
often as FL — convergence sits between FL and GSFL.  Included as an
extension baseline (the paper cites it as the state of the art its
grouping improves on).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.aggregation import fedavg
from repro.nn.quantize import simulate_wire
from repro.nn.split import SmashedBatch, split_model
from repro.nn.tensor import Tensor
from repro.schemes.base import Activity, Scheme, Stage
from repro.schemes.pricing import LatencyModel

__all__ = ["ParallelSplitLearning"]


class ParallelSplitLearning(Scheme):
    """PSL: concurrent client forward, single server model, FedAvg of
    client halves."""

    name = "PSL"

    def __init__(self, *args: object, cut_layer: int = 1, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)
        self.cut_layer = cut_layer
        self.split = split_model(self.model, cut_layer)
        self._loss_fn = nn.CrossEntropyLoss()
        self._pricing = LatencyModel(
            self.system,
            self.profile,
            self.config.batch_size,
            quantize_bits=self.config.quantize_bits,
        )
        self._server_opt = self._make_sgd(self.split.server.parameters())
        self._global_client_state = self.split.client.state_dict()

    def _run_round(self, round_index: int) -> list[Stage]:
        cfg = self.config
        pricing = self._pricing
        share = pricing.total_bandwidth_hz / self.num_clients
        client_model_bytes = pricing.client_model_nbytes(self.cut_layer)

        distribution = Stage("distribution")
        if pricing.enabled:
            for c in range(self.num_clients):
                distribution.add(
                    f"client-{c}",
                    Activity(
                        pricing.downlink_model_s(c, client_model_bytes, share),
                        "model_distribution",
                        f"client-{c}",
                        nbytes=client_model_bytes,
                    ),
                )

        training = Stage("parallel_steps")
        client_states: list[dict[str, np.ndarray]] = []
        total_loss = 0.0

        # Per-client working copies of the client half (trained in
        # lockstep; the server half is shared and sees the fused batch).
        for step in range(cfg.local_steps):
            step_batches = []
            for c in range(self.num_clients):
                xb, yb = self.client_loaders[c].sample_batch()
                step_batches.append((xb, yb))

            smashed_per_client = []
            client_outputs = []
            for c, (xb, yb) in enumerate(step_batches):
                state = (
                    self._global_client_state if step == 0 else client_states[c]
                )
                self.split.client.load_state_dict(state)
                out = self.split.client.forward(Tensor(xb))
                wire_values = out.data.copy()
                if pricing.quantize_bits is not None:
                    wire_values = simulate_wire(wire_values, pricing.quantize_bits)
                smashed_per_client.append(wire_values)
                client_outputs.append((c, out, yb))
                training.add(
                    f"client-{c}",
                    Activity(
                        pricing.client_forward_s(c, self.cut_layer),
                        "client_compute",
                        f"client-{c}",
                        detail="forward",
                    ),
                )
                training.add(
                    f"client-{c}",
                    Activity(
                        pricing.uplink_smashed_s(c, self.cut_layer, share),
                        "uplink_smashed",
                        f"client-{c}",
                        nbytes=pricing.smashed_nbytes(self.cut_layer),
                    ),
                )

            # --- single server step over the fused batch ----------------
            fused = SmashedBatch(values=np.concatenate(smashed_per_client, axis=0))
            fused_targets = np.concatenate([yb for _, _, yb in client_outputs])
            self._server_opt.zero_grad()
            loss, fused_grad, _ = self.split.server.forward_backward(
                fused, fused_targets, self._loss_fn
            )
            self._server_opt.step()
            if pricing.quantize_bits is not None:
                fused_grad = simulate_wire(fused_grad, pricing.quantize_bits)
            total_loss += loss
            # Server compute scales with the fused batch (N x batch).
            training.add(
                "edge-server",
                Activity(
                    pricing.server_split_step_s(self.cut_layer) * self.num_clients,
                    "server_compute",
                    "edge-server",
                    detail="fused batch",
                ),
            )

            # --- gradients fan back out; client halves step --------------
            new_states = []
            offset = 0
            for c, out, _ in client_outputs:
                batch = out.shape[0]
                grad_slice = fused_grad[offset : offset + batch]
                offset += batch
                state = (
                    self._global_client_state if step == 0 else client_states[c]
                )
                self.split.client.load_state_dict(state)
                # Re-run the forward to rebuild this client's graph (the
                # shared working module was overwritten by later clients).
                # Deterministic layers reproduce the same smashed values;
                # batch-norm running stats are touched twice per step,
                # which only perturbs the (aggregated) buffers slightly.
                xb, _ = step_batches[c]
                self.split.client.forward_to_smashed(Tensor(xb))
                opt = self._make_sgd(self.split.client.parameters())
                opt.zero_grad()
                self.split.client.backward_from_gradient(grad_slice)
                opt.step()
                new_states.append(self.split.client.state_dict())
                training.add(
                    f"client-{c}",
                    Activity(
                        pricing.downlink_gradient_s(c, self.cut_layer, share),
                        "downlink_gradient",
                        f"client-{c}",
                        nbytes=pricing.smashed_nbytes(self.cut_layer),
                    ),
                )
                training.add(
                    f"client-{c}",
                    Activity(
                        pricing.client_backward_s(c, self.cut_layer),
                        "client_compute",
                        f"client-{c}",
                        detail="backward",
                    ),
                )
            client_states = new_states

        self._last_train_loss = total_loss / cfg.local_steps

        upload = Stage("upload")
        if pricing.enabled:
            for c in range(self.num_clients):
                upload.add(
                    f"client-{c}",
                    Activity(
                        pricing.uplink_model_s(c, client_model_bytes, share),
                        "model_upload",
                        f"client-{c}",
                        nbytes=client_model_bytes,
                    ),
                )

        aggregation = Stage("aggregation")
        self._global_client_state = fedavg(
            client_states, self._client_sample_counts()
        )
        self.split.client.load_state_dict(self._global_client_state)
        aggregation.add(
            "edge-server",
            Activity(
                pricing.aggregation_s(self.num_clients, self.model.num_parameters()),
                "aggregation",
                "edge-server",
            ),
        )
        return [distribution, training, upload, aggregation]

    def server_side_replicas(self) -> int:
        """PSL keeps a single server-side model (like vanilla SL)."""
        return 1

    def server_storage_bytes(self) -> int:
        if not self._pricing.enabled:
            return 0
        return self.profile.server_model_bytes(self.cut_layer)
