"""``repro.exec`` — pluggable executors for provably independent work.

The paper's wall-clock argument is that GSFL's ``M`` group pipelines run
*in parallel*; this package makes the reproduction actually exploit that
independence on real hardware.  One interface —
:meth:`~repro.exec.executors.Executor.map_groups` — with three backends:

* :class:`SerialExecutor` — in-order execution in the calling thread
  (zero overhead; the default everywhere);
* :class:`ThreadPoolExecutor` — shared-memory workers; numpy's BLAS
  kernels release the GIL, so group pipelines genuinely overlap;
* :class:`ProcessPoolExecutor` — one OS process per worker for full
  parallelism; tasks and results cross via pickle.

All backends guarantee deterministic, input-ordered results and
per-task seeding, so training histories are bitwise identical across
backends (the executor parity tests assert exactly that).
"""

from repro.exec.executors import (
    EXECUTOR_KINDS,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "EXECUTOR_KINDS",
]
