"""Executor backends behind one deterministic ``map_groups`` interface.

Contract (all backends):

* ``map_groups(fn, items)`` returns ``[fn(item) for item in items]`` —
  results always come back in *input order*, regardless of completion
  order, so downstream aggregation (FedAvg over group states, sweep
  tables, multi-seed summaries) is reproducible across backends.
* With ``seed=...``, each task is called ``fn(item, rng)`` where ``rng``
  is a ``numpy`` generator derived from ``SeedSequence([seed, index])``
  — per-task streams are stable across backends and worker counts.
* The caller's default compute dtype (:mod:`repro.nn.dtype`) is
  captured at submission time and re-applied inside process workers, so
  a ``--dtype float64`` run stays float64 end-to-end.

Process-backend tasks and results cross a pickle boundary: ``fn`` must
be a module-level callable (or ``functools.partial`` over one) and items
must be picklable.  The split-scheme work items satisfy this by
construction (numpy arrays + plain dataclasses + leaf modules).
"""

from __future__ import annotations

import concurrent.futures as cf
import os
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.nn.dtype import default_dtype, get_default_dtype

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "EXECUTOR_KINDS",
]


def _task_rng(seed: int, index: int) -> np.random.Generator:
    """Stable per-task generator (independent streams per index)."""
    return np.random.default_rng(np.random.SeedSequence([seed, index]))


class _Task:
    """Picklable closure: one task with optional seeding + dtype pinning.

    Used by the process backend so the worker re-applies the parent's
    compute dtype before running ``fn``; the in-process backends skip the
    dtype dance (the global default is already the caller's).
    """

    __slots__ = ("fn", "item", "index", "seed", "dtype")

    def __init__(
        self,
        fn: Callable[..., Any],
        item: Any,
        index: int,
        seed: int | None,
        dtype: str | None,
    ) -> None:
        self.fn = fn
        self.item = item
        self.index = index
        self.seed = seed
        self.dtype = dtype

    def __call__(self) -> Any:
        args = (self.item,) if self.seed is None else (
            self.item,
            _task_rng(self.seed, self.index),
        )
        if self.dtype is None:
            return self.fn(*args)
        with default_dtype(self.dtype):
            return self.fn(*args)


def _run_task(task: _Task) -> Any:
    """Module-level trampoline so process workers can unpickle the call."""
    return task()


class Executor:
    """Base class: deterministic fan-out over independent work items."""

    #: registry name ("serial" / "thread" / "process")
    kind: str = "base"
    #: True when tasks may run concurrently (callers must hand each task
    #: its own mutable state, e.g. a private model replica)
    concurrent: bool = False
    #: True when tasks share the caller's address space (serial/thread);
    #: False when tasks are pickled to another process
    shares_address_space: bool = True

    def map_groups(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        seed: int | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every item; results in input order.

        With ``seed`` given, ``fn`` is called as ``fn(item, rng)`` with a
        per-task generator; otherwise as ``fn(item)``.
        """
        raise NotImplementedError

    def _tasks(
        self, fn: Callable[..., Any], items: Sequence[Any], seed: int | None
    ) -> Iterator[_Task]:
        dtype = None if self.shares_address_space else get_default_dtype().name
        for index, item in enumerate(items):
            yield _Task(fn, item, index, seed, dtype)

    def shutdown(self) -> None:
        """Release worker resources (no-op for the serial backend)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run every task inline, in order — the reference semantics."""

    kind = "serial"
    concurrent = False

    def map_groups(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        seed: int | None = None,
    ) -> list[Any]:
        return [task() for task in self._tasks(fn, items, seed)]


class _PoolExecutor(Executor):
    """Shared machinery for the thread/process pools (lazy, reusable)."""

    concurrent = True

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self._pool: "cf.Executor | None" = None

    def _make_pool(self) -> "cf.Executor":
        raise NotImplementedError

    def map_groups(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        seed: int | None = None,
    ) -> list[Any]:
        if self._pool is None:
            self._pool = self._make_pool()
        # submit + gather (not pool.map): tasks are already materialized
        # and results must come back in input order — as_completed order
        # is irrelevant because we index futures positionally.
        futures = [self._pool.submit(_run_task, t) for t in self._tasks(fn, items, seed)]
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadPoolExecutor(_PoolExecutor):
    """Thread-backed workers sharing the caller's address space.

    Effective when task time is dominated by numpy/BLAS kernels (which
    release the GIL); callers must give each concurrent task its own
    mutable state.
    """

    kind = "thread"
    shares_address_space = True

    def _make_pool(self) -> "cf.Executor":
        return cf.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-exec"
        )


class ProcessPoolExecutor(_PoolExecutor):
    """Process-backed workers; tasks/results cross via pickle."""

    kind = "process"
    shares_address_space = False

    def _make_pool(self) -> "cf.Executor":
        return cf.ProcessPoolExecutor(max_workers=self.workers)


EXECUTOR_KINDS: dict[str, type[Executor]] = {
    "serial": SerialExecutor,
    "thread": ThreadPoolExecutor,
    "process": ProcessPoolExecutor,
}


def make_executor(kind: str, workers: int | None = None) -> Executor:
    """Build an executor by registry name (``serial``/``thread``/``process``)."""
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor {kind!r}; available: {sorted(EXECUTOR_KINDS)}"
        )
    if kind == "serial":
        if workers not in (None, 1):
            raise ValueError("the serial executor runs exactly one worker")
        return SerialExecutor()
    return EXECUTOR_KINDS[kind](workers)
