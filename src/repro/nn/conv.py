"""Convolutional and pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import Layer
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng

__all__ = ["Conv2d", "MaxPool2d", "AvgPool2d"]


class Conv2d(Layer):
    """2-D convolution with square kernels.

    Input/output layout is ``(N, C, H, W)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError(
                f"channel counts must be positive, got ({in_channels}, {out_channels})"
            )
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError(
                f"invalid geometry: kernel={kernel_size}, stride={stride}, padding={padding}"
            )
        rng = new_rng(seed)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            )
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"Conv2d expects {self.in_channels} channels, got {c}")
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        _, out_h, out_w = self.output_shape(input_shape)
        macs_per_pixel = self.in_channels * self.kernel_size**2
        return 2 * macs_per_pixel * self.out_channels * out_h * out_w

    def __repr__(self) -> str:
        return (
            f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class MaxPool2d(Layer):
    """Max pooling with square window."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, 0)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, 0)
        return (c, out_h, out_w)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        c, out_h, out_w = self.output_shape(input_shape)
        return c * out_h * out_w * self.kernel_size**2

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Layer):
    """Average pooling with square window."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, 0)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, 0)
        return (c, out_h, out_w)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        c, out_h, out_w = self.output_shape(input_shape)
        return c * out_h * out_w * self.kernel_size**2

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"
