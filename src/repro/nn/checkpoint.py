"""Model checkpointing and gradient utilities.

``save_checkpoint``/``load_checkpoint`` persist a module's state dict to
a compressed ``.npz`` — enough to hand a trained GSFL model to a
downstream user or resume an interrupted sweep.  ``clip_grad_norm``
implements global-norm gradient clipping, useful when ablating larger
learning rates.
"""

from __future__ import annotations

import os
from typing import Iterable

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["save_checkpoint", "load_checkpoint", "clip_grad_norm", "grad_norm"]

#: reserved npz key carrying format metadata
_META_KEY = "__repro_checkpoint_version__"
_VERSION = 1


def save_checkpoint(model: Module, path: str) -> None:
    """Write the model's parameters and buffers to ``path`` (.npz)."""
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"state dict may not use the reserved key {_META_KEY!r}")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state, **{_META_KEY: np.array(_VERSION)})


def load_checkpoint(model: Module, path: str) -> None:
    """Restore a checkpoint written by :func:`save_checkpoint`.

    Shape/key mismatches raise (via ``load_state_dict``) rather than
    silently partial-loading.
    """
    with np.load(path) as archive:
        version = int(archive[_META_KEY]) if _META_KEY in archive else None
        if version != _VERSION:
            raise ValueError(
                f"{path!r} is not a repro checkpoint (version {version!r})"
            )
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    model.load_state_dict(state)


def grad_norm(params: Iterable[Parameter]) -> float:
    """Global L2 norm over all present gradients."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    return float(np.sqrt(total))


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (like torch).  Parameters without
    gradients are ignored.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = [p for p in params if p.grad is not None]
    norm = grad_norm(params)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm
