"""Uniform affine quantization for over-the-air payload compression.

An extension beyond the paper: split learning's per-batch smashed-data
exchange is the dominant traffic in SL/GSFL, and quantizing activations
(and the returned gradients) to ``k`` bits cuts that payload ``32/k``-fold
at a small accuracy cost.  The schemes apply it symmetrically — what the
"wire" carries is ``dequantize(quantize(x))``, so training genuinely sees
the quantization error.

Implements standard uniform affine (asymmetric) quantization::

    q   = clip(round(x / scale) + zero_point, 0, 2^k - 1)
    x'  = (q - zero_point) * scale

with per-tensor scale/zero-point from the observed min/max.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizedArray", "quantize_uniform", "dequantize", "simulate_wire"]


@dataclass(frozen=True)
class QuantizedArray:
    """A quantized payload plus the metadata needed to reconstruct it.

    ``constant=True`` marks a degenerate constant tensor whose value is
    carried in ``scale`` (an explicit flag — a sentinel ``zero_point``
    would collide with legitimately negative zero points, e.g.
    ``[1.0, 12.0]`` at 4 bits rounds to zero point -1).
    """

    codes: np.ndarray  # unsigned integer codes
    scale: float
    zero_point: int
    num_bits: int
    shape: tuple[int, ...]
    constant: bool = False

    #: wire overhead of the two per-tensor parameters (scale, zero_point),
    #: 8 bytes each
    PARAMS_BYTES = 16

    @property
    def payload_bytes(self) -> int:
        """Wire size: packed codes plus the two 8-byte parameters.

        Constant and empty tensors carry no codes at all — their value
        (if any) lives entirely in the parameters, so only the parameter
        overhead hits the wire.
        """
        if self.constant or self.codes.size == 0:
            return self.PARAMS_BYTES
        return int(np.ceil(self.codes.size * self.num_bits / 8)) + self.PARAMS_BYTES

    def __post_init__(self) -> None:
        if not 1 <= self.num_bits <= 16:
            raise ValueError(f"num_bits must be in [1, 16], got {self.num_bits}")


def quantize_uniform(x: np.ndarray, num_bits: int = 8) -> QuantizedArray:
    """Quantize ``x`` to ``num_bits`` with per-tensor affine parameters."""
    if not 1 <= num_bits <= 16:
        raise ValueError(f"num_bits must be in [1, 16], got {num_bits}")
    x = np.asarray(x, dtype=np.float64)
    levels = (1 << num_bits) - 1
    if x.size == 0:
        return QuantizedArray(
            codes=np.zeros(0, dtype=np.uint16),
            scale=1.0,
            zero_point=0,
            num_bits=num_bits,
            shape=x.shape,
        )
    if not np.isfinite(x).all():
        raise ValueError(
            "quantize_uniform: input contains non-finite values (NaN/inf); "
            "refusing to emit undefined wire codes"
        )
    lo, hi = float(x.min()), float(x.max())
    if hi <= lo:
        # Constant tensor: encode the constant in ``scale`` (dequantize
        # returns full(scale)).
        return QuantizedArray(
            codes=np.zeros(x.shape, dtype=np.uint16),
            scale=lo,
            zero_point=0,
            num_bits=num_bits,
            shape=x.shape,
            constant=True,
        )
    scale = (hi - lo) / levels
    zero_point = int(np.round(-lo / scale))
    codes = np.clip(np.round(x / scale) + zero_point, 0, levels).astype(np.uint16)
    return QuantizedArray(
        codes=codes, scale=scale, zero_point=zero_point, num_bits=num_bits, shape=x.shape
    )


def dequantize(q: QuantizedArray) -> np.ndarray:
    """Reconstruct the float array from a :class:`QuantizedArray`."""
    if q.codes.size == 0:
        return np.zeros(q.shape)
    if q.constant:
        return np.full(q.shape, q.scale)
    return ((q.codes.astype(np.float64) - q.zero_point) * q.scale).reshape(q.shape)


def simulate_wire(x: np.ndarray, num_bits: int | None) -> np.ndarray:
    """Round-trip ``x`` through the wire at ``num_bits`` (None = lossless).

    This is what the schemes call: the receiver sees exactly what
    quantization preserved.  The result keeps the input's dtype (the
    quantization grid itself is computed in float64 for precision).
    """
    x = np.asarray(x)
    if num_bits is None:
        return x
    return dequantize(quantize_uniform(x, num_bits)).astype(x.dtype, copy=False)
