"""First-order optimizers and learning-rate schedules.

The paper trains both model halves with SGD (§II-B-2: "The update of the
server-side model parameters can be accomplished through methods such as
stochastic gradient descent").  SGD with optional momentum/weight-decay is
the workhorse; Adam is provided for the centralized baseline and ablations.

Optimizers hold per-parameter state keyed by ``id(param)``; state can be
exported/imported so it can follow a client-side model as it is relayed
between clients in split learning.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineAnnealingLR", "ConstantLR"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError

    def state_export(self) -> list[dict[str, np.ndarray]]:
        """Per-parameter optimizer state, ordered like ``self.params``."""
        return [{} for _ in self.params]

    def state_import(self, state: list[dict[str, np.ndarray]]) -> None:
        """Restore state exported by :meth:`state_export`."""
        if len(state) != len(self.params):
            raise ValueError(
                f"state has {len(state)} entries for {len(self.params)} parameters"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay.

    ``velocity`` buffers are created lazily on the first step.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + grad
                self._velocity[id(p)] = v
                grad = grad + self.momentum * v if self.nesterov else v
            p.data = p.data - self.lr * grad

    def state_export(self) -> list[dict[str, np.ndarray]]:
        return [
            {"velocity": self._velocity[id(p)].copy()} if id(p) in self._velocity else {}
            for p in self.params
        ]

    def state_import(self, state: list[dict[str, np.ndarray]]) -> None:
        super().state_import(state)
        self._velocity = {}
        for p, entry in zip(self.params, state):
            if "velocity" in entry:
                self._velocity[id(p)] = np.array(entry["velocity"], copy=True)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad**2
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_export(self) -> list[dict[str, np.ndarray]]:
        out = []
        for p in self.params:
            entry: dict[str, np.ndarray] = {}
            if id(p) in self._m:
                entry["m"] = self._m[id(p)].copy()
                entry["v"] = self._v[id(p)].copy()
                entry["t"] = np.array(self._t)
            out.append(entry)
        return out

    def state_import(self, state: list[dict[str, np.ndarray]]) -> None:
        super().state_import(state)
        self._m, self._v = {}, {}
        for p, entry in zip(self.params, state):
            if "m" in entry:
                self._m[id(p)] = np.array(entry["m"], copy=True)
                self._v[id(p)] = np.array(entry["v"], copy=True)
                self._t = int(entry["t"])


class ConstantLR:
    """Schedule that leaves the learning rate unchanged."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer

    def step(self) -> None:
        """No-op; present for interface uniformity."""


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch, decaying the LR at each boundary."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineAnnealingLR:
    """Cosine decay from the initial LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch along the cosine curve."""
        self._epoch = min(self._epoch + 1, self.t_max)
        cos = (1 + np.cos(np.pi * self._epoch / self.t_max)) / 2
        self.optimizer.lr = self.eta_min + (self._base_lr - self.eta_min) * cos
