"""Additional layers: alternative activations, LayerNorm, global pooling.

These extend the core zoo for architecture ablations (e.g. BN-free
models, GELU variants) without touching the layers the paper's
experiments depend on.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.layers import Layer
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor

__all__ = ["LeakyReLU", "GELU", "Softmax", "LayerNorm", "GlobalAvgPool2d"]


class LeakyReLU(Layer):
    """ReLU with a small negative-side slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        mask = x.data > 0
        slope = self.negative_slope
        out = Tensor(
            np.where(mask, x.data, slope * x.data),
            requires_grad=x.requires_grad,
            _parents=(x,),
            _op="leaky_relu",
        )

        def _bw(grad: np.ndarray) -> None:
            x._accumulate(grad * np.where(mask, 1.0, slope))

        out._backward = _bw
        return out

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape))

    def __repr__(self) -> str:
        return f"LeakyReLU(slope={self.negative_slope})"


class GELU(Layer):
    """Gaussian error linear unit (tanh approximation)."""

    _C = float(np.sqrt(2.0 / np.pi))

    def forward(self, x: Tensor) -> Tensor:
        inner = self._C * (x + 0.044715 * x * x * x)
        return x * 0.5 * (inner.tanh() + 1.0)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 8 * int(np.prod(input_shape))

    def __repr__(self) -> str:
        return "GELU()"


class Softmax(Layer):
    """Softmax along the last axis (for probability heads)."""

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return x.softmax(axis=self.axis)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 5 * int(np.prod(input_shape))

    def __repr__(self) -> str:
        return f"Softmax(axis={self.axis})"


class LayerNorm(Layer):
    """Layer normalization over the trailing feature axis.

    Unlike batch norm it carries no running statistics, so nothing extra
    travels with relayed client-side models — a relevant alternative for
    split learning deployments.
    """

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(init.zeros((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"expected trailing dim {self.num_features}, got shape {x.shape}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.gamma + self.beta

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 6 * int(np.prod(input_shape))

    def __repr__(self) -> str:
        return f"LayerNorm(features={self.num_features})"


class GlobalAvgPool2d(Layer):
    """Average over all spatial positions: ``(N, C, H, W) -> (N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        return x.mean(axis=(2, 3))

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        return (c,)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape))

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"
