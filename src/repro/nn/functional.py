"""Functional neural-network operations over :class:`repro.nn.tensor.Tensor`.

Convolution and pooling are implemented with im2col/col2im so the heavy
lifting is a single BLAS matmul per layer — the standard way to get a
usable CNN out of pure numpy.

All functions are autograd-aware: they return graph-connected tensors with
correct backward closures.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "pad2d",
    "dropout",
    "im2col",
    "col2im",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a conv/pool along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output size: input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    # Strided sliding-window view: (N, C, out_h, out_w, kernel_h, kernel_w)
    s_n, s_c, s_h, s_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel_h, kernel_w),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    # (N, out_h, out_w, C, kh, kw) -> rows are receptive fields
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * out_h * out_w, c * kernel_h * kernel_w
    )
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)

    reshaped = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 1, 2, 4, 5
    )  # (N, C, out_h, out_w, kh, kw)
    for i in range(kernel_h):
        h_end = i + stride * out_h
        for j in range(kernel_w):
            w_end = j + stride * out_w
            padded[:, :, i:h_end:stride, j:w_end:stride] += reshaped[:, :, :, :, i, j]

    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation.

    Parameters
    ----------
    x:
        Input tensor, shape ``(N, C_in, H, W)``.
    weight:
        Filters, shape ``(C_out, C_in, kH, kW)``.
    bias:
        Optional per-channel bias of shape ``(C_out,)``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input has {c_in} channels but weight expects {c_in_w}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, kh, kw, stride, padding)  # (N*oh*ow, C_in*kh*kw)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C_in*kh*kw)
    out_data = cols @ w_mat.T  # (N*oh*ow, C_out)
    if bias is not None:
        out_data = out_data + bias.data
    out_data = out_data.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    requires = x.requires_grad or weight.requires_grad or (
        bias is not None and bias.requires_grad
    )
    parents = (x, weight) if bias is None else (x, weight, bias)
    out = Tensor(out_data, requires_grad=requires, _parents=parents, _op="conv2d")

    def _bw(grad: np.ndarray) -> None:
        # grad: (N, C_out, oh, ow) -> (N*oh*ow, C_out)
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)
        if weight.requires_grad:
            gw = grad_mat.T @ cols  # (C_out, C_in*kh*kw)
            weight._accumulate(gw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=0))
        if x.requires_grad:
            gcols = grad_mat @ w_mat  # (N*oh*ow, C_in*kh*kw)
            x._accumulate(col2im(gcols, (n, c_in, h, w), kh, kw, stride, padding))

    out._backward = _bw
    return out


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling with square window.  ``stride`` defaults to ``kernel``."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)

    # Treat each channel independently: fold C into N for im2col.
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    # cols: (N*C*oh*ow, k*k)
    argmax = cols.argmax(axis=1)
    out_data = cols[np.arange(cols.shape[0]), argmax].reshape(n, c, out_h, out_w)
    out = Tensor(out_data, requires_grad=x.requires_grad, _parents=(x,), _op="max_pool2d")

    def _bw(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gcols = np.zeros_like(cols)
        gcols[np.arange(cols.shape[0]), argmax] = grad.reshape(-1)
        gx = col2im(gcols, (n * c, 1, h, w), kernel, kernel, stride, 0)
        x._accumulate(gx.reshape(n, c, h, w))

    out._backward = _bw
    return out


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling with square window.  ``stride`` defaults to ``kernel``."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)

    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    out = Tensor(out_data, requires_grad=x.requires_grad, _parents=(x,), _op="avg_pool2d")

    def _bw(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g = grad.reshape(-1, 1) / (kernel * kernel)
        gcols = np.broadcast_to(g, (g.shape[0], kernel * kernel)).astype(grad.dtype)
        gx = col2im(np.ascontiguousarray(gcols), (n * c, 1, h, w), kernel, kernel, stride, 0)
        x._accumulate(gx.reshape(n, c, h, w))

    out._backward = _bw
    return out


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing spatial dimensions symmetrically."""
    if padding == 0:
        return x
    pads = ((0, 0),) * (x.ndim - 2) + ((padding, padding), (padding, padding))
    out = Tensor(
        np.pad(x.data, pads), requires_grad=x.requires_grad, _parents=(x,), _op="pad2d"
    )

    def _bw(grad: np.ndarray) -> None:
        sl = (slice(None),) * (x.ndim - 2) + (
            slice(padding, -padding),
            slice(padding, -padding),
        )
        x._accumulate(grad[sl])

    out._backward = _bw
    return out


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` at train time."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    mask = mask.astype(x.dtype)
    out = Tensor(x.data * mask, requires_grad=x.requires_grad, _parents=(x,), _op="dropout")

    def _bw(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    out._backward = _bw
    return out
