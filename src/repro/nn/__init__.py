"""``repro.nn`` — a from-scratch numpy deep-learning framework.

Provides reverse-mode autodiff (:mod:`repro.nn.tensor`), standard layers
(dense, conv, pooling, batch norm, dropout), losses, optimizers, weight
initialization, model profiling (shapes/FLOPs/payload bytes), parameter
serialization, and the split-model machinery used by split learning.

It exists because the reproduction sandbox has no PyTorch; the public
surface intentionally mirrors familiar ``torch.nn`` idioms.
"""

from repro.nn import functional
from repro.nn.checkpoint import clip_grad_norm, grad_norm, load_checkpoint, save_checkpoint
from repro.nn.dtype import default_dtype, get_default_dtype, set_default_dtype
from repro.nn.conv import AvgPool2d, Conv2d, MaxPool2d
from repro.nn.extra_layers import GELU, GlobalAvgPool2d, LayerNorm, LeakyReLU, Softmax
from repro.nn.layers import (
    Dropout,
    Flatten,
    Identity,
    Layer,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss, NLLLoss, accuracy_from_logits
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.norm import BatchNorm1d, BatchNorm2d
from repro.nn.optim import SGD, Adam, ConstantLR, CosineAnnealingLR, Optimizer, StepLR
from repro.nn.profile import LayerProfile, ModelProfile, profile_model
from repro.nn.quantize import QuantizedArray, dequantize, quantize_uniform, simulate_wire
from repro.nn.serialize import (
    WIRE_BYTES_PER_SCALAR,
    activation_nbits,
    activation_nbytes,
    clone_state,
    model_nbits,
    model_nbytes,
    pack_state,
    state_nbits,
    state_nbytes,
    state_num_scalars,
    states_allclose,
    unpack_state,
)
from repro.nn.split import ClientHalf, ServerHalf, SmashedBatch, SplitModel, split_model
from repro.nn.tensor import Tensor, concatenate, no_grad, stack, unbroadcast

__all__ = [
    "functional",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "Tensor",
    "no_grad",
    "stack",
    "concatenate",
    "unbroadcast",
    "Module",
    "Parameter",
    "Sequential",
    "Layer",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Identity",
    "Dropout",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "LeakyReLU",
    "GELU",
    "Softmax",
    "LayerNorm",
    "GlobalAvgPool2d",
    "save_checkpoint",
    "load_checkpoint",
    "clip_grad_norm",
    "grad_norm",
    "QuantizedArray",
    "quantize_uniform",
    "dequantize",
    "simulate_wire",
    "CrossEntropyLoss",
    "NLLLoss",
    "MSELoss",
    "accuracy_from_logits",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineAnnealingLR",
    "ConstantLR",
    "LayerProfile",
    "ModelProfile",
    "profile_model",
    "WIRE_BYTES_PER_SCALAR",
    "state_num_scalars",
    "state_nbytes",
    "state_nbits",
    "model_nbytes",
    "model_nbits",
    "activation_nbytes",
    "activation_nbits",
    "pack_state",
    "unpack_state",
    "clone_state",
    "states_allclose",
    "split_model",
    "SplitModel",
    "ClientHalf",
    "ServerHalf",
    "SmashedBatch",
]
