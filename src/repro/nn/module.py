"""Module containers: parameter registration, train/eval mode, state dicts.

Mirrors the familiar ``torch.nn.Module`` contract at the scale this library
needs: attribute assignment auto-registers :class:`Parameter` and
:class:`Module` children, ``state_dict`` flattens parameters (and buffers,
e.g. batch-norm running statistics) into an ordered mapping of numpy
arrays, and ``load_state_dict`` restores them by name with shape checking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn.dtype import get_default_dtype
from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A tensor that is a trainable parameter of a module.

    Allocated in the configured compute dtype
    (:func:`repro.nn.dtype.get_default_dtype`, float32 by default).
    """

    def __init__(self, data: object) -> None:
        super().__init__(
            np.asarray(data, dtype=get_default_dtype()), requires_grad=True
        )

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, dtype={self.dtype})"


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_num_params_cache", None)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            object.__setattr__(self, "_num_params_cache", None)
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. running stats).

        Buffers are allocated in the configured compute dtype (float32 by
        default); later updates keep whatever dtype the buffer was
        registered with.
        """
        self._buffers[name] = np.asarray(value, dtype=get_default_dtype())
        object.__setattr__(self, name, self._buffers[name])

    def _update_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace a registered buffer's contents, keeping registration."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        dtype = self._buffers[name].dtype
        self._buffers[name] = np.asarray(value, dtype=dtype)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters, depth-first."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs, depth-first."""
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def children(self) -> Iterator["Module"]:
        """Yield immediate child modules."""
        yield from self._modules.values()

    # ------------------------------------------------------------------
    # mode & grads
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set train/eval mode recursively; returns self for chaining."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode (affects dropout, batch norm)."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count.

        Each module caches its *own* parameters' scalar count (invalidated
        when a parameter is (re)assigned) and recursion only walks the
        module tree — latency pricing calls this every round, and the seed
        implementation re-walked every parameter of every layer each time.
        """
        own = self._num_params_cache
        if own is None:
            own = sum(p.size for p in self._parameters.values())
            object.__setattr__(self, "_num_params_cache", own)
        return own + sum(m.num_parameters() for m in self._modules.values())

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self, copy: bool = True) -> "OrderedDict[str, np.ndarray]":
        """All parameters and buffers as an ordered name→array map.

        ``copy=False`` returns the live arrays without copying.  This is
        safe whenever the module will not be trained or reloaded while the
        state dict is still in use — and in fact the substrate never
        mutates parameter or buffer arrays in place (optimizers and buffer
        updates *rebind* ``param.data`` / the buffer entry to a fresh
        array), so a no-copy snapshot stays valid across further training;
        it just stops tracking the module.  Use the default ``copy=True``
        when unsure.
        """
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        if copy:
            for name, param in self.named_parameters():
                state[name] = param.data.copy()
            for name, buf in self.named_buffers():
                state[name] = buf.copy()
        else:
            for name, param in self.named_parameters():
                state[name] = param.data
            for name, buf in self.named_buffers():
                state[name] = buf
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], copy: bool = True) -> None:
        """Restore parameters and buffers from :meth:`state_dict` output.

        Raises ``KeyError`` on missing entries and ``ValueError`` on shape
        mismatch — silent partial loads hide split/aggregation bugs.
        Values are cast to each parameter's/buffer's existing dtype.
        ``copy=False`` adopts the incoming arrays without copying (when no
        cast is needed); callers own the guarantee that they will not
        mutate ``state``'s arrays afterwards.
        """
        param_map = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        for name in param_map:
            if name not in state:
                raise KeyError(f"state dict is missing parameter {name!r}")
        for name in buffer_owners:
            if name not in state:
                raise KeyError(f"state dict is missing buffer {name!r}")
        for name, param in param_map.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data = value.astype(param.data.dtype, copy=copy)
        for name, (owner, local) in buffer_owners.items():
            value = np.asarray(state[name])
            if value.shape != owner._buffers[local].shape:
                raise ValueError(
                    f"shape mismatch for buffer {name!r}: expected "
                    f"{owner._buffers[local].shape}, got {value.shape}"
                )
            # _update_buffer adopts same-dtype arrays by reference; copy
            # here so copy=True keeps its promise for buffers too.
            if copy and value.dtype == owner._buffers[local].dtype:
                value = value.copy()
            owner._update_buffer(local, value)

    def _buffer_owners(
        self, prefix: str = ""
    ) -> "OrderedDict[str, tuple[Module, str]]":
        """Map dotted buffer names to their owning module and local name."""
        owners: OrderedDict[str, tuple[Module, str]] = OrderedDict()
        for name in self._buffers:
            owners[prefix + name] = (self, name)
        for mod_name, module in self._modules.items():
            owners.update(module._buffer_owners(prefix=f"{prefix}{mod_name}."))
        return owners

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


class Sequential(Module):
    """Chain of modules applied in order.

    Supports integer indexing and slicing; slicing returns a new
    ``Sequential`` sharing the same child modules (used by the split-model
    machinery to form client-side / server-side halves).
    """

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __getitem__(self, index: int | slice) -> "Module | Sequential":
        if isinstance(index, slice):
            return Sequential(*self.layers[index])
        return self.layers[index]

    def append(self, layer: Module) -> "Sequential":
        """Add a layer at the end; returns self for chaining."""
        self._modules[str(len(self.layers))] = layer
        self.layers.append(layer)
        return self
