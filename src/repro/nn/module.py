"""Module containers: parameter registration, train/eval mode, state dicts.

Mirrors the familiar ``torch.nn.Module`` contract at the scale this library
needs: attribute assignment auto-registers :class:`Parameter` and
:class:`Module` children, ``state_dict`` flattens parameters (and buffers,
e.g. batch-norm running statistics) into an ordered mapping of numpy
arrays, and ``load_state_dict`` restores them by name with shape checking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A tensor that is a trainable parameter of a module."""

    def __init__(self, data: object) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. running stats)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def _update_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace a registered buffer's contents, keeping registration."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters, depth-first."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs, depth-first."""
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def children(self) -> Iterator["Module"]:
        """Yield immediate child modules."""
        yield from self._modules.values()

    # ------------------------------------------------------------------
    # mode & grads
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set train/eval mode recursively; returns self for chaining."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode (affects dropout, batch norm)."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy all parameters and buffers into an ordered name→array map."""
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters and buffers from :meth:`state_dict` output.

        Raises ``KeyError`` on missing entries and ``ValueError`` on shape
        mismatch — silent partial loads hide split/aggregation bugs.
        """
        param_map = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        for name in param_map:
            if name not in state:
                raise KeyError(f"state dict is missing parameter {name!r}")
        for name in buffer_owners:
            if name not in state:
                raise KeyError(f"state dict is missing buffer {name!r}")
        for name, param in param_map.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data = value.astype(param.data.dtype).copy()
        for name, (owner, local) in buffer_owners.items():
            value = np.asarray(state[name])
            if value.shape != owner._buffers[local].shape:
                raise ValueError(
                    f"shape mismatch for buffer {name!r}: expected "
                    f"{owner._buffers[local].shape}, got {value.shape}"
                )
            owner._update_buffer(local, value)

    def _buffer_owners(
        self, prefix: str = ""
    ) -> "OrderedDict[str, tuple[Module, str]]":
        """Map dotted buffer names to their owning module and local name."""
        owners: OrderedDict[str, tuple[Module, str]] = OrderedDict()
        for name in self._buffers:
            owners[prefix + name] = (self, name)
        for mod_name, module in self._modules.items():
            owners.update(module._buffer_owners(prefix=f"{prefix}{mod_name}."))
        return owners

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


class Sequential(Module):
    """Chain of modules applied in order.

    Supports integer indexing and slicing; slicing returns a new
    ``Sequential`` sharing the same child modules (used by the split-model
    machinery to form client-side / server-side halves).
    """

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __getitem__(self, index: int | slice) -> "Module | Sequential":
        if isinstance(index, slice):
            return Sequential(*self.layers[index])
        return self.layers[index]

    def append(self, layer: Module) -> "Sequential":
        """Add a layer at the end; returns self for chaining."""
        self._modules[str(len(self.layers))] = layer
        self.layers.append(layer)
        return self
