"""Loss functions.

Each loss is a callable object mapping ``(logits_or_preds, targets)`` to a
scalar :class:`~repro.nn.tensor.Tensor`; targets are plain numpy arrays
(integer class labels for classification).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "NLLLoss", "accuracy_from_logits"]


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    Combines log-softmax and NLL in one numerically stable op, exactly like
    ``torch.nn.CrossEntropyLoss``.

    Parameters
    ----------
    reduction:
        ``"mean"`` (default) or ``"sum"`` over the batch.
    """

    def __init__(self, reduction: str = "mean") -> None:
        if reduction not in ("mean", "sum"):
            raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
        self.reduction = reduction

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = np.asarray(targets)
        if targets.ndim != 1:
            raise ValueError(f"targets must be 1-D class labels, got shape {targets.shape}")
        if logits.ndim != 2 or logits.shape[0] != targets.shape[0]:
            raise ValueError(
                f"logits shape {logits.shape} incompatible with targets {targets.shape}"
            )
        if targets.min() < 0 or targets.max() >= logits.shape[1]:
            raise ValueError(
                f"target labels out of range [0, {logits.shape[1]}): "
                f"[{targets.min()}, {targets.max()}]"
            )
        log_probs = logits.log_softmax(axis=1)
        batch = np.arange(targets.shape[0])
        picked = log_probs[batch, targets]
        loss = -(picked.sum())
        if self.reduction == "mean":
            loss = loss * (1.0 / targets.shape[0])
        return loss

    def __repr__(self) -> str:
        return f"CrossEntropyLoss(reduction={self.reduction!r})"


class NLLLoss:
    """Negative log-likelihood over pre-computed log-probabilities."""

    def __init__(self, reduction: str = "mean") -> None:
        if reduction not in ("mean", "sum"):
            raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
        self.reduction = reduction

    def __call__(self, log_probs: Tensor, targets: np.ndarray) -> Tensor:
        targets = np.asarray(targets)
        batch = np.arange(targets.shape[0])
        picked = log_probs[batch, targets]
        loss = -(picked.sum())
        if self.reduction == "mean":
            loss = loss * (1.0 / targets.shape[0])
        return loss

    def __repr__(self) -> str:
        return f"NLLLoss(reduction={self.reduction!r})"


class MSELoss:
    """Mean squared error between predictions and targets."""

    def __init__(self, reduction: str = "mean") -> None:
        if reduction not in ("mean", "sum"):
            raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
        self.reduction = reduction

    def __call__(self, preds: Tensor, targets: np.ndarray) -> Tensor:
        diff = preds - Tensor(np.asarray(targets, dtype=preds.dtype))
        sq = diff * diff
        return sq.mean() if self.reduction == "mean" else sq.sum()

    def __repr__(self) -> str:
        return f"MSELoss(reduction={self.reduction!r})"


def accuracy_from_logits(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1] from raw logits."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    preds = data.argmax(axis=1)
    return float((preds == np.asarray(targets)).mean())
