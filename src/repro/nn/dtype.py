"""Configurable numeric dtype for the whole compute substrate.

The paper's wire format is float32 (``WIRE_BYTES_PER_SCALAR = 4``) and
float32 halves the memory traffic and roughly doubles BLAS throughput of
the numpy substrate, so it is the default compute dtype.  Everything that
allocates numeric state — :class:`~repro.nn.module.Parameter`, registered
buffers, weight init, :class:`~repro.nn.tensor.Tensor` creation — consults
:func:`get_default_dtype`; users who need double precision (e.g. exact
reproduction of legacy float64 runs, or numeric gradient checks) opt back
in with :func:`set_default_dtype` or the :class:`default_dtype` context
manager::

    from repro import nn

    nn.set_default_dtype(np.float64)        # process-wide
    with nn.default_dtype(np.float64):      # scoped
        model = build_model("micro_cnn")

Only the dtype *at allocation time* matters: a model built under float64
keeps float64 parameters regardless of later default changes
(``load_state_dict`` casts incoming arrays to each parameter's own dtype).
"""

from __future__ import annotations

import numpy as np

__all__ = ["get_default_dtype", "set_default_dtype", "default_dtype"]

_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))

_default_dtype = np.dtype(np.float32)


def get_default_dtype() -> np.dtype:
    """The dtype used for new parameters, buffers and float tensors."""
    return _default_dtype


def set_default_dtype(dtype: "np.dtype | type | str") -> np.dtype:
    """Set the process-wide default compute dtype; returns the previous one.

    Only ``float32`` and ``float64`` are supported — integer or half
    dtypes would break the autodiff substrate.
    """
    global _default_dtype
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED:
        raise ValueError(
            f"default dtype must be float32 or float64, got {resolved}"
        )
    previous = _default_dtype
    _default_dtype = resolved
    return previous


class default_dtype:
    """Context manager scoping :func:`set_default_dtype` to a block."""

    def __init__(self, dtype: "np.dtype | type | str") -> None:
        self._dtype = dtype
        self._previous: np.dtype | None = None

    def __enter__(self) -> "default_dtype":
        self._previous = set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._previous is not None
        set_default_dtype(self._previous)
