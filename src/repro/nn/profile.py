"""Static model profiling: per-layer shapes, FLOPs, and payload sizes.

The wireless simulator never executes numpy to price a transmission or a
computation — it consults a :class:`ModelProfile` built once per model.
This keeps the discrete-event simulation decoupled from the training loop
and lets latency-only experiments (e.g. cut-layer sweeps over a large
model) run without training at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import Layer
from repro.nn.module import Sequential
from repro.nn.serialize import WIRE_BYTES_PER_SCALAR

__all__ = ["LayerProfile", "ModelProfile", "profile_model"]

#: backward pass costs roughly twice the forward FLOPs (standard estimate:
#: grad wrt inputs + grad wrt weights each cost about one forward)
BACKWARD_FLOP_FACTOR = 2.0


@dataclass(frozen=True)
class LayerProfile:
    """Static facts about one layer in a profiled model."""

    index: int
    name: str
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]
    forward_flops: int
    num_params: int

    @property
    def backward_flops(self) -> int:
        return int(BACKWARD_FLOP_FACTOR * self.forward_flops)

    @property
    def param_bytes(self) -> int:
        return self.num_params * WIRE_BYTES_PER_SCALAR

    @property
    def output_scalars(self) -> int:
        """Per-sample scalar count of the layer output."""
        return int(np.prod(self.output_shape))


@dataclass
class ModelProfile:
    """Whole-model profile with split-point queries.

    All per-sample quantities; multiply by batch size at the call site.
    """

    input_shape: tuple[int, ...]
    layers: list[LayerProfile] = field(default_factory=list)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_forward_flops(self) -> int:
        return sum(l.forward_flops for l in self.layers)

    @property
    def total_params(self) -> int:
        return sum(l.num_params for l in self.layers)

    @property
    def total_param_bytes(self) -> int:
        return self.total_params * WIRE_BYTES_PER_SCALAR

    def client_forward_flops(self, cut_layer: int) -> int:
        """Per-sample forward FLOPs of layers [0, cut_layer)."""
        self._check_cut(cut_layer)
        return sum(l.forward_flops for l in self.layers[:cut_layer])

    def server_forward_flops(self, cut_layer: int) -> int:
        """Per-sample forward FLOPs of layers [cut_layer, L)."""
        self._check_cut(cut_layer)
        return sum(l.forward_flops for l in self.layers[cut_layer:])

    def client_backward_flops(self, cut_layer: int) -> int:
        self._check_cut(cut_layer)
        return sum(l.backward_flops for l in self.layers[:cut_layer])

    def server_backward_flops(self, cut_layer: int) -> int:
        self._check_cut(cut_layer)
        return sum(l.backward_flops for l in self.layers[cut_layer:])

    def client_params(self, cut_layer: int) -> int:
        self._check_cut(cut_layer)
        return sum(l.num_params for l in self.layers[:cut_layer])

    def server_params(self, cut_layer: int) -> int:
        self._check_cut(cut_layer)
        return sum(l.num_params for l in self.layers[cut_layer:])

    def client_model_bytes(self, cut_layer: int) -> int:
        """Wire size of the client-side model (relayed between clients)."""
        return self.client_params(cut_layer) * WIRE_BYTES_PER_SCALAR

    def server_model_bytes(self, cut_layer: int) -> int:
        return self.server_params(cut_layer) * WIRE_BYTES_PER_SCALAR

    def smashed_shape(self, cut_layer: int) -> tuple[int, ...]:
        """Per-sample activation shape crossing the cut."""
        self._check_cut(cut_layer)
        return self.layers[cut_layer - 1].output_shape

    def smashed_bytes(self, cut_layer: int, batch_size: int) -> int:
        """Payload of one batch of smashed data (same size for gradients)."""
        per_sample = int(np.prod(self.smashed_shape(cut_layer)))
        return per_sample * batch_size * WIRE_BYTES_PER_SCALAR

    def _check_cut(self, cut_layer: int) -> None:
        if not 1 <= cut_layer <= self.num_layers - 1:
            raise ValueError(
                f"cut_layer must be in [1, {self.num_layers - 1}], got {cut_layer}"
            )

    def summary(self) -> str:
        """Human-readable per-layer table."""
        lines = [
            f"{'idx':>3}  {'layer':<34} {'output shape':<18} {'params':>10} {'fwd FLOPs':>12}"
        ]
        for l in self.layers:
            lines.append(
                f"{l.index:>3}  {l.name:<34} {str(l.output_shape):<18} "
                f"{l.num_params:>10} {l.forward_flops:>12}"
            )
        lines.append(
            f"total params={self.total_params}  total fwd FLOPs={self.total_forward_flops}"
        )
        return "\n".join(lines)


def profile_model(model: Sequential, input_shape: tuple[int, ...]) -> ModelProfile:
    """Profile a Sequential of :class:`~repro.nn.layers.Layer` modules.

    ``input_shape`` is per-sample (no batch dimension), e.g. ``(3, 32, 32)``.
    """
    profile = ModelProfile(input_shape=tuple(input_shape))
    shape = tuple(input_shape)
    for index, layer in enumerate(model):
        if not isinstance(layer, Layer):
            raise TypeError(
                f"layer {index} ({type(layer).__name__}) does not support profiling; "
                "all layers must subclass repro.nn.layers.Layer"
            )
        out_shape = layer.output_shape(shape)
        profile.layers.append(
            LayerProfile(
                index=index,
                name=repr(layer),
                input_shape=shape,
                output_shape=out_shape,
                forward_flops=layer.flops(shape),
                num_params=layer.num_parameters(),
            )
        )
        shape = out_shape
    return profile
