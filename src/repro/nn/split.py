"""Split-model machinery: cut a network into client-side and server-side
halves and run the split-learning forward/backward handshake.

Terminology follows the paper (§II):

* the **client-side model** is layers ``[0, cut_layer)``;
* the **server-side model** is layers ``[cut_layer, L)``;
* the client's forward output at the cut is the **smashed data**;
* the server returns the **smashed gradient** (dLoss/dSmashed) for the
  client's backward pass.

``ClientHalf.backward_from_gradient`` replays exactly what a real split
deployment does: the smashed gradient that arrived over the air is
injected into the retained client-side graph.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module, Sequential
from repro.nn.tensor import Tensor

__all__ = ["split_model", "SplitModel", "ClientHalf", "ServerHalf", "SmashedBatch"]


def split_model(model: Sequential, cut_layer: int) -> "SplitModel":
    """Split ``model`` at ``cut_layer`` into client/server halves.

    ``cut_layer`` counts layers assigned to the client; valid range is
    ``1 <= cut_layer <= len(model) - 1`` so both halves are non-empty.
    The halves *share* the underlying layer objects (and therefore
    parameters) with the original model.
    """
    if not isinstance(model, Sequential):
        raise TypeError(f"split_model requires a Sequential model, got {type(model).__name__}")
    if not 1 <= cut_layer <= len(model) - 1:
        raise ValueError(
            f"cut_layer must be in [1, {len(model) - 1}] for a {len(model)}-layer "
            f"model, got {cut_layer}"
        )
    return SplitModel(
        client=ClientHalf(model[:cut_layer]),
        server=ServerHalf(model[cut_layer:]),
        cut_layer=cut_layer,
    )


@dataclass
class SmashedBatch:
    """Activations crossing the cut layer for one mini-batch.

    ``values`` is detached from the client graph — on the wire only raw
    numbers travel.  ``batch_size`` and per-sample ``shape`` feed the
    payload-size accounting.
    """

    values: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.values.shape[0]

    @property
    def sample_shape(self) -> tuple[int, ...]:
        return self.values.shape[1:]


class ClientHalf(Module):
    """Client-side model half.

    Keeps the autograd graph of its most recent forward so the smashed
    gradient arriving from the server can be backpropagated into the
    client-side parameters.
    """

    def __init__(self, layers: Sequential) -> None:
        super().__init__()
        self.layers = layers
        self._last_output: Tensor | None = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.layers(x)
        self._last_output = out
        return out

    def forward_to_smashed(self, x: Tensor | np.ndarray) -> SmashedBatch:
        """Run the client forward pass and emit detached smashed data."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        out = self.forward(x)
        return SmashedBatch(values=out.data.copy())

    def backward_from_gradient(self, smashed_grad: np.ndarray) -> None:
        """Inject the server-provided gradient at the cut and backprop.

        Must follow a :meth:`forward_to_smashed` call on the same batch.
        """
        if self._last_output is None:
            raise RuntimeError(
                "backward_from_gradient called before forward_to_smashed; "
                "the split-learning handshake is forward -> upload -> gradient -> backward"
            )
        out = self._last_output
        self._last_output = None
        if smashed_grad.shape != out.shape:
            raise ValueError(
                f"smashed gradient shape {smashed_grad.shape} does not match "
                f"cut-layer activation shape {out.shape}"
            )
        out.backward(smashed_grad)


class ServerHalf(Module):
    """Server-side model half.

    ``forward_backward`` performs the server's whole step for one batch:
    ingest smashed data as a leaf tensor, forward through the server-side
    layers, compute the loss, backprop, and return the gradient at the cut
    (to be transmitted back to the client).
    """

    def __init__(self, layers: Sequential) -> None:
        super().__init__()
        self.layers = layers

    def forward(self, x: Tensor) -> Tensor:
        return self.layers(x)

    def forward_backward(
        self, smashed: SmashedBatch, targets: np.ndarray, loss_fn: object
    ) -> tuple[float, np.ndarray, Tensor]:
        """One server-side training step.

        Returns ``(loss_value, smashed_gradient, logits)``.  Parameter
        gradients are left accumulated on the server-side parameters; the
        caller decides when to step the optimizer.
        """
        cut_input = Tensor(smashed.values, requires_grad=True)
        logits = self.layers(cut_input)
        loss = loss_fn(logits, targets)
        loss.backward()
        assert cut_input.grad is not None  # requires_grad leaf always receives grad
        return float(loss.item()), cut_input.grad.copy(), logits


@dataclass
class SplitModel:
    """A model cut into client/server halves at ``cut_layer``."""

    client: ClientHalf
    server: ServerHalf
    cut_layer: int

    def full_forward(self, x: Tensor | np.ndarray) -> Tensor:
        """Uncut end-to-end forward (for evaluation)."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.server.forward(self.client.forward(x))

    def clone(self) -> "SplitModel":
        """Deep-copy both halves into an independent replica.

        Used by the parallel round engines to hand each shared-memory
        worker its own model (parameters are leaf tensors, so the copy is
        plain array duplication).  The replica's forward cache is cleared.
        """
        # Drop the forward cache first (cloning never happens mid-handshake)
        # so the deep copy moves only parameters and buffers.
        self.client._last_output = None
        return copy.deepcopy(self)

    def train(self, mode: bool = True) -> "SplitModel":
        """Propagate train/eval mode to both halves."""
        self.client.train(mode)
        self.server.train(mode)
        return self

    def eval(self) -> "SplitModel":
        return self.train(False)
