"""Dense and utility layers: Linear, activations, Flatten, Dropout.

Every layer implements :meth:`output_shape` (shape inference given an input
shape, batch dim excluded) and :meth:`flops` (multiply-accumulate cost per
sample) — both are consumed by the wireless latency model, which needs the
smashed-data payload size at the cut layer and the per-device compute load
on each side of the split.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng

__all__ = ["Linear", "ReLU", "Sigmoid", "Tanh", "Flatten", "Dropout", "Identity"]


class Layer(Module):
    """Base class adding shape/FLOP introspection to Module."""

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Per-sample output shape for a per-sample ``input_shape``."""
        raise NotImplementedError

    def flops(self, input_shape: tuple[int, ...]) -> int:
        """Approximate forward FLOPs for one sample (MACs counted as 2)."""
        raise NotImplementedError


class Linear(Layer):
    """Fully connected affine layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature counts must be positive, got ({in_features}, {out_features})"
            )
        rng = new_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if input_shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expects {self.in_features} input features, got shape {input_shape}"
            )
        return input_shape[:-1] + (self.out_features,)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 2 * self.in_features * self.out_features

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class ReLU(Layer):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape))

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Layer):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 4 * int(np.prod(input_shape))

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 4 * int(np.prod(input_shape))

    def __repr__(self) -> str:
        return "Tanh()"


class Flatten(Layer):
    """Collapse all per-sample dimensions into one feature vector."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 0

    def __repr__(self) -> str:
        return "Flatten()"


class Identity(Layer):
    """No-op layer (placeholder for ablations that remove a block)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 0

    def __repr__(self) -> str:
        return "Identity()"


class Dropout(Layer):
    """Inverted dropout; inert in eval mode."""

    def __init__(self, p: float = 0.5, seed: int | np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = new_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return int(np.prod(input_shape))

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
