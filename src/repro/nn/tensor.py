"""Reverse-mode automatic differentiation over numpy arrays.

``Tensor`` wraps a ``numpy.ndarray`` and records the operations applied to
it in a dynamic computation graph.  Calling :meth:`Tensor.backward` on a
scalar output walks the graph in reverse topological order, accumulating
gradients into every tensor created with ``requires_grad=True``.

The design mirrors the micro-autograd pattern (define-by-run tape with
per-op backward closures) but supports full numpy broadcasting: gradients
flowing into a broadcast operand are summed over the broadcast axes by
:func:`unbroadcast` so shapes always match the forward values.

Only float64/float32 data participates in differentiation; integer tensors
(labels, indices) can be wrapped but must not require grad.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nn.dtype import get_default_dtype

__all__ = ["Tensor", "unbroadcast", "no_grad", "is_grad_enabled"]


class _GradMode(threading.local):
    """Per-thread grad-recording flag.

    Thread-local (not a module global) so one worker's ``no_grad``
    evaluation window cannot disable graph construction in a concurrently
    training thread-pool worker.
    """

    enabled = True


_grad_mode = _GradMode()


class no_grad:
    """Context manager disabling graph construction (for eval/inference)."""

    def __enter__(self) -> "no_grad":
        self._prev = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, *exc: object) -> None:
        _grad_mode.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations are being recorded on the tape."""
    return _grad_mode.enabled


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches the pre-broadcast ``shape``.

    Numpy broadcasting may have (a) prepended axes and (b) stretched
    length-1 axes.  The adjoint of broadcasting is summation over exactly
    those axes.
    """
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched axes (forward dim was 1, grad dim is larger).
    axes = tuple(
        i for i, (g_dim, s_dim) in enumerate(zip(grad.shape, shape)) if s_dim == 1 and g_dim != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(data: object, dtype: np.dtype | None = None) -> np.ndarray:
    arr = np.asarray(data)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype.kind == "f":
        # Floating data enters the graph in the configured compute dtype
        # (float32 by default); integer/bool tensors pass through untouched.
        default = get_default_dtype()
        if arr.dtype != default:
            arr = arr.astype(default)
    return arr


class Tensor:
    """A numpy-backed array node in a dynamic autodiff graph.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.
    requires_grad:
        If True, gradients are accumulated into ``self.grad`` on backward.
    _parents, _backward, _op:
        Internal tape bookkeeping; library code only.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op")

    def __init__(
        self,
        data: object,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        _op: str = "",
    ) -> None:
        self.data = _as_array(data)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError(
                f"only floating-point tensors can require grad, got dtype {self.data.dtype}"
            )
        grad_enabled = _grad_mode.enabled
        self.requires_grad = bool(requires_grad and grad_enabled)
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = tuple(_parents) if grad_enabled else ()
        self._backward = _backward if grad_enabled else None
        self._op = _op

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        op = f", op={self._op!r}" if self._op else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag}{op})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a one-element tensor as a Python scalar."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_err()

    @staticmethod
    def _item_err() -> float:
        raise ValueError("item() only valid for one-element tensors")

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a graph-connected copy."""
        out = Tensor(
            self.data.copy(),
            requires_grad=self.requires_grad,
            _parents=(self,),
            _op="clone",
        )

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad)

        out._backward = _bw
        return out

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (lazily allocated)."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (the usual scalar-loss case requires a
        one-element tensor).
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar output; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
                )

        # Topological order via iterative DFS (avoids recursion limits on
        # deep models).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # Seed the output gradient and propagate in reverse topological
        # order.  Because children always precede their parents in the
        # reversed order, each node's ``.grad`` is fully accumulated before
        # its own backward closure fires.
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
        # Interior (non-leaf) gradients are transient; free them so only
        # leaves retain ``.grad`` and graph memory is released promptly.
        for node in topo:
            if node._parents and node is not self:
                node.grad = None
            node._parents = ()
            node._backward = None

    # ------------------------------------------------------------------
    # arithmetic ops
    # ------------------------------------------------------------------
    def _binary(self, other: object) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(_as_array(other, self.dtype))

    def __add__(self, other: object) -> "Tensor":
        other = self._binary(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
            _op="add",
        )

        def _bw(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad, other.shape))

        out._backward = _bw
        return out

    __radd__ = __add__

    def __mul__(self, other: object) -> "Tensor":
        other = self._binary(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
            _op="mul",
        )

        def _bw(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad * self.data, other.shape))

        out._backward = _bw
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, requires_grad=self.requires_grad, _parents=(self,), _op="neg")

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        out._backward = _bw
        return out

    def __sub__(self, other: object) -> "Tensor":
        other = self._binary(other)
        out = Tensor(
            self.data - other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
            _op="sub",
        )

        def _bw(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(-grad, other.shape))

        out._backward = _bw
        return out

    def __rsub__(self, other: object) -> "Tensor":
        return self._binary(other) - self

    def __truediv__(self, other: object) -> "Tensor":
        other = self._binary(other)
        out = Tensor(
            self.data / other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
            _op="div",
        )

        def _bw(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        out._backward = _bw
        return out

    def __rtruediv__(self, other: object) -> "Tensor":
        return self._binary(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor(
            self.data**exponent, requires_grad=self.requires_grad, _parents=(self,), _op="pow"
        )

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out._backward = _bw
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        if not isinstance(other, Tensor):
            other = Tensor(_as_array(other, self.dtype))
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
            _op="matmul",
        )

        def _bw(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.outer(grad, b) if a.ndim == 2 else grad * b
                else:
                    ga = grad @ np.swapaxes(b, -1, -2)
                self._accumulate(unbroadcast(np.asarray(ga), self.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.outer(a, grad) if b.ndim == 2 else grad * a
                else:
                    gb = np.swapaxes(a, -1, -2) @ grad
                other._accumulate(unbroadcast(np.asarray(gb), other.shape))

        out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,), _op="sum")

        def _bw(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                g = np.expand_dims(g, tuple(a % self.data.ndim for a in axes))
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        out._backward = _bw
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,), _op="max")

        def _bw(grad: np.ndarray) -> None:
            g = grad
            full = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                full = np.expand_dims(out_data, axis)
            mask = self.data == full
            # Split gradient equally among ties (matches numpy/torch behaviour
            # closely enough for training purposes).
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / denom)

        out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(
            self.data.reshape(shape),
            requires_grad=self.requires_grad,
            _parents=(self,),
            _op="reshape",
        )

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        out._backward = _bw
        return out

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.data.ndim)))
        out = Tensor(
            self.data.transpose(axes_t),
            requires_grad=self.requires_grad,
            _parents=(self,),
            _op="transpose",
        )
        inverse = tuple(np.argsort(axes_t))

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        out._backward = _bw
        return out

    def __getitem__(self, index: object) -> "Tensor":
        out = Tensor(
            self.data[index], requires_grad=self.requires_grad, _parents=(self,), _op="getitem"
        )

        def _bw(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,), _op="exp")

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        out._backward = _bw
        return out

    def log(self) -> "Tensor":
        out = Tensor(
            np.log(self.data), requires_grad=self.requires_grad, _parents=(self,), _op="log"
        )

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        out._backward = _bw
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor(
            self.data * mask, requires_grad=self.requires_grad, _parents=(self,), _op="relu"
        )

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        out._backward = _bw
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,), _op="sigmoid")

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        out._backward = _bw
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,), _op="tanh")

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        out._backward = _bw
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable log-softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z
        out = Tensor(
            out_data, requires_grad=self.requires_grad, _parents=(self,), _op="log_softmax"
        )
        softmax = np.exp(out_data)

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        out._backward = _bw
        return out

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (autograd-aware)."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _parents=tuple(tensors), _op="stack")

    def _bw(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(np.squeeze(piece, axis=axis))

    out._backward = _bw
    return out


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis (autograd-aware)."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _parents=tuple(tensors), _op="concat")
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _bw(grad: np.ndarray) -> None:
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(start, end)
                t._accumulate(grad[tuple(sl)])

    out._backward = _bw
    return out
