"""Batch-normalization layers with running statistics.

Running mean/var are registered buffers, so they travel with
``state_dict`` during split-model relay and FedAvg aggregation — in GSFL
the batch-norm state of the client-side model must follow the model as it
hops between clients, and the server aggregates it like any other state.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.layers import Layer
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor

__all__ = ["BatchNorm1d", "BatchNorm2d"]


class _BatchNorm(Layer):
    """Shared machinery for 1-D and 2-D batch norm."""

    #: axes to reduce over; subclasses set this
    _reduce_axes: tuple[int, ...]

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _param_shape(self, ndim: int) -> tuple[int, ...]:
        """Shape to broadcast per-channel params against the input."""
        shape = [1] * ndim
        shape[1] = self.num_features
        return tuple(shape)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim < 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected channel dim {self.num_features} at axis 1, got shape {x.shape}"
            )
        shape = self._param_shape(x.ndim)
        if self.training:
            # Statistics computed with Tensor ops so gradients flow exactly
            # through the batch mean and variance.
            mean = x.mean(axis=self._reduce_axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=self._reduce_axes, keepdims=True)
            m = self.momentum
            n = x.data.size / self.num_features
            unbiased = var.data.reshape(-1) * n / max(n - 1, 1)
            self._update_buffer(
                "running_mean", (1 - m) * self.running_mean + m * mean.data.reshape(-1)
            )
            self._update_buffer("running_var", (1 - m) * self.running_var + m * unbiased)
            normed = centered * (var + self.eps) ** -0.5
        else:
            centered = x - Tensor(self.running_mean.reshape(shape))
            inv_std = Tensor(1.0 / np.sqrt(self.running_var + self.eps).reshape(shape))
            normed = centered * inv_std
        return normed * self.gamma.reshape(*shape) + self.beta.reshape(*shape)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return 4 * int(np.prod(input_shape))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(features={self.num_features})"


class BatchNorm1d(_BatchNorm):
    """Batch norm over feature vectors ``(N, C)``."""

    _reduce_axes = (0,)


class BatchNorm2d(_BatchNorm):
    """Batch norm over images ``(N, C, H, W)``."""

    _reduce_axes = (0, 2, 3)
