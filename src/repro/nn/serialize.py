"""Parameter serialization and payload-size accounting.

The wireless latency model charges every transmission by its payload size
in bits: full client-side models (FL upload / SL relay), smashed-data
activations and their gradients (SL/GSFL per-batch exchange).  This module
is the single source of truth for those sizes.

``pack_state``/``unpack_state`` flatten a state dict into one contiguous
float vector — used by FedAvg aggregation and by tests asserting
aggregation linearity.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.nn.module import Module

__all__ = [
    "state_num_scalars",
    "state_nbytes",
    "state_nbits",
    "model_nbytes",
    "model_nbits",
    "activation_nbytes",
    "activation_nbits",
    "pack_state",
    "unpack_state",
    "clone_state",
    "states_allclose",
]

#: bytes per scalar on the wire; the paper's setting transmits float32
WIRE_BYTES_PER_SCALAR = 4


def state_num_scalars(state: dict[str, np.ndarray]) -> int:
    """Total number of scalars in a state dict."""
    return int(sum(np.asarray(v).size for v in state.values()))


def state_nbytes(state: dict[str, np.ndarray], bytes_per_scalar: int = WIRE_BYTES_PER_SCALAR) -> int:
    """Wire size of a state dict in bytes."""
    return state_num_scalars(state) * bytes_per_scalar


def state_nbits(state: dict[str, np.ndarray], bytes_per_scalar: int = WIRE_BYTES_PER_SCALAR) -> int:
    """Wire size of a state dict in bits."""
    return 8 * state_nbytes(state, bytes_per_scalar)


def model_nbytes(model: Module, bytes_per_scalar: int = WIRE_BYTES_PER_SCALAR) -> int:
    """Wire size of a model's full state (params + buffers) in bytes."""
    return state_nbytes(model.state_dict(), bytes_per_scalar)


def model_nbits(model: Module, bytes_per_scalar: int = WIRE_BYTES_PER_SCALAR) -> int:
    """Wire size of a model's full state in bits."""
    return 8 * model_nbytes(model, bytes_per_scalar)


def activation_nbytes(
    shape: tuple[int, ...], batch_size: int, bytes_per_scalar: int = WIRE_BYTES_PER_SCALAR
) -> int:
    """Wire size of one batch of activations (or activation gradients).

    ``shape`` is the per-sample shape at the cut layer.
    """
    per_sample = int(np.prod(shape))
    return per_sample * batch_size * bytes_per_scalar


def activation_nbits(
    shape: tuple[int, ...], batch_size: int, bytes_per_scalar: int = WIRE_BYTES_PER_SCALAR
) -> int:
    """Wire size of one batch of activations in bits."""
    return 8 * activation_nbytes(shape, batch_size, bytes_per_scalar)


def pack_state(state: dict[str, np.ndarray]) -> np.ndarray:
    """Flatten a state dict into one flat vector (key order preserved).

    The vector's dtype is the numpy promotion of the entries' dtypes — a
    uniformly float32 state packs to float32 (no silent float64 upcast).
    """
    if not state:
        return np.zeros(0)
    return np.concatenate([np.asarray(v).reshape(-1) for v in state.values()])


def unpack_state(
    vector: np.ndarray, template: dict[str, np.ndarray], copy: bool = True
) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`pack_state` given a template with target shapes.

    Each output entry is cast back to the template entry's dtype.  With
    ``copy=False`` entries may be views into ``vector`` (safe when the
    caller owns ``vector`` and will not mutate it — e.g. a freshly
    computed aggregation result).
    """
    vector = np.asarray(vector)
    expected = state_num_scalars(template)
    if vector.size != expected:
        raise ValueError(f"vector has {vector.size} scalars, template needs {expected}")
    out: OrderedDict[str, np.ndarray] = OrderedDict()
    offset = 0
    for key, value in template.items():
        arr = np.asarray(value)
        chunk = vector[offset : offset + arr.size].reshape(arr.shape)
        if chunk.dtype != arr.dtype:
            chunk = chunk.astype(arr.dtype)
        elif copy:
            chunk = chunk.copy()
        out[key] = chunk
        offset += arr.size
    return out


def clone_state(state: dict[str, np.ndarray]) -> "OrderedDict[str, np.ndarray]":
    """Deep-copy a state dict."""
    return OrderedDict((k, np.array(v, copy=True)) for k, v in state.items())


def states_allclose(
    a: dict[str, np.ndarray], b: dict[str, np.ndarray], atol: float = 1e-10
) -> bool:
    """True when two state dicts have identical keys and close values."""
    if set(a) != set(b):
        return False
    return all(np.allclose(a[k], b[k], atol=atol) for k in a)
