"""Weight-initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is deterministic under a fixed seed — a hard requirement for
comparing training schemes from identical starting weights (the paper's
Fig. 2 compares CL/SL/FL/GSFL from a common initial model).
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import get_default_dtype

__all__ = [
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
    "zeros",
    "fan_in_and_fan_out",
]


def fan_in_and_fan_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight tensor.

    For conv weights ``(C_out, C_in, kH, kW)`` the receptive-field size
    multiplies the channel counts, matching the standard definition.
    """
    if len(shape) < 2:
        raise ValueError(f"fan in/out undefined for shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He/Kaiming uniform init (suited to ReLU networks)."""
    fan_in, _ = fan_in_and_fan_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    # Draw in float64 (the generator's native precision, so streams are
    # identical across compute dtypes), then cast to the configured dtype.
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def kaiming_normal(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He/Kaiming normal init."""
    fan_in, _ = fan_in_and_fan_out(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init (suited to tanh/sigmoid networks)."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal init."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros(shape, dtype=get_default_dtype())
