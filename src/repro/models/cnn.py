"""Lightweight CNNs for traffic-sign classification.

``deepthin_cnn`` follows the DeepThin design philosophy (the paper's
reference [4]): a thin stack of small conv blocks sized for CPU-only
training.  ``micro_cnn`` is a two-block variant for fast tests and CI.

Both are plain :class:`~repro.nn.module.Sequential` stacks so they can be
cut at any layer boundary by :func:`repro.nn.split.split_model`; the
conventional cut (after the first pooling stage) is exposed through
:func:`repro.models.registry.default_cut_layer`.
"""

from __future__ import annotations

from repro import nn
from repro.utils.rng import spawn_rngs

__all__ = ["deepthin_cnn", "micro_cnn"]


def deepthin_cnn(
    num_classes: int = 43,
    in_channels: int = 3,
    image_size: int = 20,
    width: int = 16,
    seed: int | None = 0,
) -> nn.Sequential:
    """Thin 3-block CNN (conv-BN-ReLU-pool ×2, conv-ReLU, FC head).

    Parameters
    ----------
    width:
        Base channel count; blocks use ``width``, ``2*width``, ``2*width``.
    image_size:
        Input spatial size (square); must be divisible by 4 for the two
        pooling stages.
    """
    if image_size % 4 != 0:
        raise ValueError(f"image_size must be divisible by 4, got {image_size}")
    rngs = spawn_rngs(seed, 4)
    flat = 2 * width * (image_size // 4) ** 2
    return nn.Sequential(
        nn.Conv2d(in_channels, width, 3, padding=1, seed=rngs[0]),
        nn.BatchNorm2d(width),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(width, 2 * width, 3, padding=1, seed=rngs[1]),
        nn.BatchNorm2d(2 * width),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(2 * width, 2 * width, 3, padding=1, seed=rngs[2]),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(flat, num_classes, seed=rngs[3]),
    )


def micro_cnn(
    num_classes: int = 43,
    in_channels: int = 3,
    image_size: int = 16,
    width: int = 8,
    seed: int | None = 0,
) -> nn.Sequential:
    """Two-block CNN small enough for unit tests (~10k params)."""
    if image_size % 4 != 0:
        raise ValueError(f"image_size must be divisible by 4, got {image_size}")
    rngs = spawn_rngs(seed, 3)
    flat = 2 * width * (image_size // 4) ** 2
    return nn.Sequential(
        nn.Conv2d(in_channels, width, 3, padding=1, seed=rngs[0]),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(width, 2 * width, 3, padding=1, seed=rngs[1]),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(flat, num_classes, seed=rngs[2]),
    )
