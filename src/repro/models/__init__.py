"""``repro.models`` — reference architectures for the experiments.

The paper trains a lightweight CNN on GTSRB (its reference [4] is
DeepThin, a thin CNN designed for traffic-sign recognition without GPUs).
:func:`build_model` is the single factory the experiment configs name.
"""

from repro.models.cnn import deepthin_cnn, micro_cnn
from repro.models.mlp import mlp
from repro.models.registry import available_models, build_model, default_cut_layer

__all__ = [
    "deepthin_cnn",
    "micro_cnn",
    "mlp",
    "build_model",
    "available_models",
    "default_cut_layer",
]
