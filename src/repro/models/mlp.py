"""Multilayer perceptron for fast functional tests and ablations."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.utils.rng import spawn_rngs

__all__ = ["mlp"]


def mlp(
    num_classes: int = 43,
    input_shape: tuple[int, ...] = (3, 16, 16),
    hidden: tuple[int, ...] = (64, 32),
    seed: int | None = 0,
) -> nn.Sequential:
    """Flatten→(Linear→ReLU)*→Linear classifier.

    The first layer is ``Flatten`` so the model accepts the same image
    tensors as the CNNs; the natural cut points are after any hidden
    activation.
    """
    if not hidden:
        raise ValueError("mlp needs at least one hidden layer to be splittable")
    rngs = spawn_rngs(seed, len(hidden) + 1)
    in_features = int(np.prod(input_shape))
    layers: list[nn.Module] = [nn.Flatten()]
    prev = in_features
    for i, width in enumerate(hidden):
        layers.append(nn.Linear(prev, width, seed=rngs[i]))
        layers.append(nn.ReLU())
        prev = width
    layers.append(nn.Linear(prev, num_classes, seed=rngs[-1]))
    return nn.Sequential(*layers)
