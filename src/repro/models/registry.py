"""Model registry: build architectures by name with consistent kwargs.

Experiment configs reference models by registry name so experiment
descriptions stay serializable (plain strings + numbers).
"""

from __future__ import annotations

from typing import Callable

from repro import nn
from repro.models.cnn import deepthin_cnn, micro_cnn
from repro.models.mlp import mlp

__all__ = ["build_model", "available_models", "default_cut_layer"]

_BUILDERS: dict[str, Callable[..., nn.Sequential]] = {
    "deepthin": deepthin_cnn,
    "micro_cnn": micro_cnn,
    "mlp": mlp,
}

#: conventional client-side depth per architecture (after the first
#: pooling/activation stage — the shallow cut the paper's setting implies,
#: keeping client compute small)
_DEFAULT_CUTS = {
    "deepthin": 4,  # conv-bn-relu-pool on the client
    "micro_cnn": 3,  # conv-relu-pool on the client
    "mlp": 3,  # flatten-linear-relu on the client
}


def available_models() -> list[str]:
    """Registered model names."""
    return sorted(_BUILDERS)


def build_model(name: str, **kwargs: object) -> nn.Sequential:
    """Construct a registered model.

    ``kwargs`` pass through to the builder (``num_classes``,
    ``image_size``/``input_shape``, ``width``/``hidden``, ``seed``).
    """
    if name not in _BUILDERS:
        raise ValueError(f"unknown model {name!r}; available: {available_models()}")
    return _BUILDERS[name](**kwargs)


def default_cut_layer(name: str) -> int:
    """Conventional cut layer for a registered model."""
    if name not in _DEFAULT_CUTS:
        raise ValueError(f"unknown model {name!r}; available: {available_models()}")
    return _DEFAULT_CUTS[name]
