"""Physical-layer channel model: path loss, shadowing, fading, Shannon rate.

Standard urban-cellular abstractions (consistent with the parallel-SL
resource-management literature the paper builds on, e.g. Wu et al.,
JSAC 2023):

* log-distance path loss ``PL(d) = PL(d0) + 10 n log10(d/d0)`` dB,
* optional log-normal shadowing (frozen per client — devices are static),
* i.i.d. Rayleigh block fading per transmission (exponential power gain),
* AWGN with thermal noise density −174 dBm/Hz,
* achievable rate from the Shannon bound ``r = B log2(1 + SNR)``.

All the randomness flows through an explicit generator for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import new_rng
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["ChannelConfig", "WirelessChannel", "dbm_to_watts", "watts_to_dbm", "db_to_linear"]

#: thermal noise power spectral density at room temperature
NOISE_DBM_PER_HZ = -174.0


def dbm_to_watts(dbm: float) -> float:
    """Convert dBm to watts."""
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert watts to dBm."""
    if watts <= 0:
        raise ValueError(f"power must be positive, got {watts}")
    return 10.0 * np.log10(watts) + 30.0


def db_to_linear(db: float) -> float:
    """Convert a dB ratio to linear scale."""
    return 10.0 ** (db / 10.0)


@dataclass
class ChannelConfig:
    """Physical-layer parameters.

    Defaults describe a small urban cell on 2.4 GHz-class spectrum: 23 dBm
    mobile transmit power, path-loss exponent 3.5, 8 dB shadowing.
    """

    tx_power_dbm: float = 23.0
    ap_tx_power_dbm: float = 30.0
    path_loss_exponent: float = 3.2
    reference_distance_m: float = 1.0
    reference_loss_db: float = 40.0
    shadowing_std_db: float = 4.0
    noise_figure_db: float = 7.0
    rayleigh_fading: bool = True
    min_snr_db: float = -10.0

    def __post_init__(self) -> None:
        check_positive("path_loss_exponent", self.path_loss_exponent)
        check_positive("reference_distance_m", self.reference_distance_m)
        check_non_negative("shadowing_std_db", self.shadowing_std_db)
        check_non_negative("noise_figure_db", self.noise_figure_db)


class WirelessChannel:
    """Client↔AP channel realization for a fixed topology.

    Shadowing is drawn once per client at construction (static devices);
    fading is redrawn per call when enabled.  Uplink and downlink are
    symmetric in path loss but use the respective transmit powers.
    """

    def __init__(
        self,
        distances_m: np.ndarray,
        config: ChannelConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or ChannelConfig()
        self.distances_m = np.asarray(distances_m, dtype=np.float64)
        if np.any(self.distances_m <= 0):
            raise ValueError("all distances must be positive")
        if rng is None:
            # A forgotten seed would silently unpin every downstream run
            # (shadowing + fading come from this stream).  Callers that
            # genuinely want OS entropy must say so: new_rng(None).
            raise ValueError(
                "WirelessChannel requires an explicit seed or Generator; "
                "pass rng=<int seed> or rng=new_rng(seed) "
                "(use new_rng(None) if OS entropy is really intended)"
            )
        self._rng = new_rng(rng)
        n = len(self.distances_m)
        if self.config.shadowing_std_db > 0:
            self._shadowing_db = self._rng.normal(0.0, self.config.shadowing_std_db, size=n)
        else:
            self._shadowing_db = np.zeros(n)

    @property
    def num_clients(self) -> int:
        return len(self.distances_m)

    def path_loss_db(self, client: int) -> float:
        """Log-distance path loss plus the client's frozen shadowing term."""
        cfg = self.config
        d = max(self.distances_m[client], cfg.reference_distance_m)
        pl = cfg.reference_loss_db + 10.0 * cfg.path_loss_exponent * np.log10(
            d / cfg.reference_distance_m
        )
        return float(pl + self._shadowing_db[client])

    def draw_fading(self) -> float:
        """One Rayleigh block-fading power realization (1.0 when disabled).

        Consumes the channel's shared stream, so callers that freeze a
        realization for later rate evaluation (the demand-based runtime)
        draw in exactly the same protocol order as direct rate calls.
        """
        if self.config.rayleigh_fading:
            return float(self._rng.exponential(1.0))
        return 1.0

    def _snr_linear(
        self,
        client: int,
        tx_power_dbm: float,
        bandwidth_hz: float,
        fading: float | None = None,
    ) -> float:
        cfg = self.config
        rx_dbm = tx_power_dbm - self.path_loss_db(client)
        noise_dbm = (
            NOISE_DBM_PER_HZ + 10.0 * np.log10(bandwidth_hz) + cfg.noise_figure_db
        )
        snr = db_to_linear(rx_dbm - noise_dbm)
        if fading is None:
            fading = self.draw_fading()
        snr *= fading
        return float(max(snr, db_to_linear(cfg.min_snr_db)))

    def uplink_rate_bps(
        self, client: int, bandwidth_hz: float, fading: float | None = None
    ) -> float:
        """Achievable client→AP rate over ``bandwidth_hz``.

        ``fading`` fixes the block-fading realization (no stream draw);
        ``None`` draws a fresh one.
        """
        check_positive("bandwidth_hz", bandwidth_hz)
        snr = self._snr_linear(client, self.config.tx_power_dbm, bandwidth_hz, fading)
        return float(bandwidth_hz * np.log2(1.0 + snr))

    def downlink_rate_bps(
        self, client: int, bandwidth_hz: float, fading: float | None = None
    ) -> float:
        """Achievable AP→client rate over ``bandwidth_hz``.

        ``fading`` fixes the block-fading realization (no stream draw);
        ``None`` draws a fresh one.
        """
        check_positive("bandwidth_hz", bandwidth_hz)
        snr = self._snr_linear(client, self.config.ap_tx_power_dbm, bandwidth_hz, fading)
        return float(bandwidth_hz * np.log2(1.0 + snr))

    def mean_uplink_rate_bps(
        self, client: int, bandwidth_hz: float, num_draws: int = 200
    ) -> float:
        """Monte-Carlo mean uplink rate (used by channel-aware grouping)."""
        draws = [self.uplink_rate_bps(client, bandwidth_hz) for _ in range(num_draws)]
        return float(np.mean(draws))

    def expected_snr_db(self, client: int, bandwidth_hz: float) -> float:
        """Average SNR in dB ignoring fast fading (link-quality metric)."""
        cfg = self.config
        rx_dbm = cfg.tx_power_dbm - self.path_loss_db(client)
        noise_dbm = NOISE_DBM_PER_HZ + 10.0 * np.log10(bandwidth_hz) + cfg.noise_figure_db
        return float(rx_dbm - noise_dbm)
