"""``repro.wireless`` — wireless network substrate.

Topology (AP + uniformly dropped clients), log-distance path loss with
shadowing and Rayleigh fading, Shannon-rate links, heterogeneous device
compute model, bandwidth allocation policies, and the
:class:`~repro.wireless.system.WirelessSystem` facade the training schemes
consume.
"""

from repro.wireless.bandwidth import (
    BandwidthAllocator,
    EqualAllocation,
    InverseRateAllocation,
    ProportionalRateAllocation,
    make_allocator,
)
from repro.wireless.channel import (
    ChannelConfig,
    WirelessChannel,
    db_to_linear,
    dbm_to_watts,
    watts_to_dbm,
)
from repro.wireless.devices import (
    EDGE_SERVER_FLOPS,
    MOBILE_DEVICE_FLOPS,
    DeviceFleet,
    DeviceProfile,
)
from repro.wireless.energy import EnergyModel, EnergyReport
from repro.wireless.system import WirelessConfig, WirelessSystem
from repro.wireless.topology import NetworkTopology, Position

__all__ = [
    "Position",
    "NetworkTopology",
    "ChannelConfig",
    "WirelessChannel",
    "dbm_to_watts",
    "watts_to_dbm",
    "db_to_linear",
    "DeviceProfile",
    "DeviceFleet",
    "EDGE_SERVER_FLOPS",
    "MOBILE_DEVICE_FLOPS",
    "BandwidthAllocator",
    "EqualAllocation",
    "ProportionalRateAllocation",
    "InverseRateAllocation",
    "make_allocator",
    "WirelessConfig",
    "WirelessSystem",
    "EnergyModel",
    "EnergyReport",
]
