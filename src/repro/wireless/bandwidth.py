"""Bandwidth allocation policies over concurrent transmitters.

In GSFL up to ``M`` clients (one per group) transmit simultaneously and
must share the system bandwidth; SL and CL have a single active
transmitter; FL has all ``N`` uploading at round end.  The paper defers
allocation design to future work (§IV) — we implement the natural
candidates and expose them for the resource-allocation ablation:

* :class:`EqualAllocation` — uniform split (baseline used in the figures);
* :class:`ProportionalRateAllocation` — shares ∝ spectral efficiency, so
  strong links get more spectrum (throughput-maximizing tilt);
* :class:`InverseRateAllocation` — shares ∝ 1/spectral-efficiency, which
  equalizes transmission *times* across concurrent links and minimizes
  the slowest-straggler latency for equal payloads.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive
from repro.wireless.channel import WirelessChannel

__all__ = [
    "BandwidthAllocator",
    "EqualAllocation",
    "ProportionalRateAllocation",
    "InverseRateAllocation",
    "make_allocator",
]


class BandwidthAllocator:
    """Maps a set of concurrently active clients to bandwidth shares."""

    name: str = "base"

    def __init__(self, total_bandwidth_hz: float) -> None:
        check_positive("total_bandwidth_hz", total_bandwidth_hz)
        self.total_bandwidth_hz = total_bandwidth_hz

    def shares(self, active_clients: list[int], channel: WirelessChannel) -> dict[int, float]:
        """Bandwidth in Hz per active client; must sum to the total."""
        raise NotImplementedError

    def _weights_to_shares(
        self, active_clients: list[int], weights: np.ndarray
    ) -> dict[int, float]:
        weights = np.asarray(weights, dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise ValueError("allocation weights must have positive sum")
        return {
            c: float(self.total_bandwidth_hz * w / total)
            for c, w in zip(active_clients, weights)
        }


class EqualAllocation(BandwidthAllocator):
    """Uniform split among active transmitters."""

    name = "equal"

    def shares(self, active_clients: list[int], channel: WirelessChannel) -> dict[int, float]:
        if not active_clients:
            return {}
        return self._weights_to_shares(active_clients, np.ones(len(active_clients)))


class ProportionalRateAllocation(BandwidthAllocator):
    """Shares proportional to each link's spectral efficiency.

    Spectral efficiency uses the shadowed mean SNR (no fast fading) so the
    allocation is stable within a round.
    """

    name = "proportional_rate"

    def shares(self, active_clients: list[int], channel: WirelessChannel) -> dict[int, float]:
        if not active_clients:
            return {}
        eff = np.array(
            [self._spectral_efficiency(channel, c) for c in active_clients]
        )
        return self._weights_to_shares(active_clients, eff)

    @staticmethod
    def _spectral_efficiency(channel: WirelessChannel, client: int) -> float:
        snr_db = channel.expected_snr_db(client, bandwidth_hz=1e6)
        return float(np.log2(1.0 + 10.0 ** (snr_db / 10.0)))


class InverseRateAllocation(BandwidthAllocator):
    """Shares proportional to 1/spectral-efficiency (equalizes airtime).

    For equal payloads this minimizes the maximum transmission time across
    concurrent links, the straggler bound that gates a GSFL round.
    """

    name = "inverse_rate"

    def shares(self, active_clients: list[int], channel: WirelessChannel) -> dict[int, float]:
        if not active_clients:
            return {}
        eff = np.array(
            [
                ProportionalRateAllocation._spectral_efficiency(channel, c)
                for c in active_clients
            ]
        )
        return self._weights_to_shares(active_clients, 1.0 / np.maximum(eff, 1e-6))


_ALLOCATORS = {
    "equal": EqualAllocation,
    "proportional_rate": ProportionalRateAllocation,
    "inverse_rate": InverseRateAllocation,
}


def make_allocator(name: str, total_bandwidth_hz: float) -> BandwidthAllocator:
    """Factory by policy name (``equal`` / ``proportional_rate`` / ``inverse_rate``)."""
    if name not in _ALLOCATORS:
        raise ValueError(f"unknown allocator {name!r}; choose from {sorted(_ALLOCATORS)}")
    return _ALLOCATORS[name](total_bandwidth_hz)
