"""Bandwidth allocation policies over concurrent transmitters.

In GSFL up to ``M`` clients (one per group) transmit simultaneously and
must share the system bandwidth; SL and CL have a single active
transmitter; FL has all ``N`` uploading at round end.  The paper defers
allocation design to future work (§IV) — we implement the natural
candidates and expose them for the resource-allocation ablation:

* :class:`EqualAllocation` — uniform split (baseline used in the figures);
* :class:`ProportionalRateAllocation` — shares ∝ spectral efficiency, so
  strong links get more spectrum (throughput-maximizing tilt);
* :class:`InverseRateAllocation` — shares ∝ 1/spectral-efficiency, which
  equalizes transmission *times* across concurrent links and minimizes
  the slowest-straggler latency for equal payloads.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive
from repro.wireless.channel import WirelessChannel

__all__ = [
    "BandwidthAllocator",
    "EqualAllocation",
    "ProportionalRateAllocation",
    "InverseRateAllocation",
    "make_allocator",
    "AllocatorSharePolicy",
    "as_share_policy",
]


class BandwidthAllocator:
    """Maps a set of concurrently active clients to bandwidth shares."""

    name: str = "base"

    def __init__(self, total_bandwidth_hz: float) -> None:
        check_positive("total_bandwidth_hz", total_bandwidth_hz)
        self.total_bandwidth_hz = total_bandwidth_hz

    def shares(self, active_clients: list[int], channel: WirelessChannel) -> dict[int, float]:
        """Bandwidth in Hz per active client; must sum to the total."""
        raise NotImplementedError

    def _weights_to_shares(
        self, active_clients: list[int], weights: np.ndarray
    ) -> dict[int, float]:
        weights = np.asarray(weights, dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise ValueError("allocation weights must have positive sum")
        return {
            c: float(self.total_bandwidth_hz * w / total)
            for c, w in zip(active_clients, weights)
        }


class EqualAllocation(BandwidthAllocator):
    """Uniform split among active transmitters."""

    name = "equal"

    def shares(self, active_clients: list[int], channel: WirelessChannel) -> dict[int, float]:
        if not active_clients:
            return {}
        return self._weights_to_shares(active_clients, np.ones(len(active_clients)))


class ProportionalRateAllocation(BandwidthAllocator):
    """Shares proportional to each link's spectral efficiency.

    Spectral efficiency uses the shadowed mean SNR (no fast fading) so the
    allocation is stable within a round.
    """

    name = "proportional_rate"

    def shares(self, active_clients: list[int], channel: WirelessChannel) -> dict[int, float]:
        if not active_clients:
            return {}
        eff = np.array(
            [self._spectral_efficiency(channel, c) for c in active_clients]
        )
        return self._weights_to_shares(active_clients, eff)

    @staticmethod
    def _spectral_efficiency(channel: WirelessChannel, client: int) -> float:
        snr_db = channel.expected_snr_db(client, bandwidth_hz=1e6)
        return float(np.log2(1.0 + 10.0 ** (snr_db / 10.0)))


class InverseRateAllocation(BandwidthAllocator):
    """Shares proportional to 1/spectral-efficiency (equalizes airtime).

    For equal payloads this minimizes the maximum transmission time across
    concurrent links, the straggler bound that gates a GSFL round.
    """

    name = "inverse_rate"

    def shares(self, active_clients: list[int], channel: WirelessChannel) -> dict[int, float]:
        if not active_clients:
            return {}
        eff = np.array(
            [
                ProportionalRateAllocation._spectral_efficiency(channel, c)
                for c in active_clients
            ]
        )
        return self._weights_to_shares(active_clients, 1.0 / np.maximum(eff, 1e-6))


_ALLOCATORS = {
    "equal": EqualAllocation,
    "proportional_rate": ProportionalRateAllocation,
    "inverse_rate": InverseRateAllocation,
}


def make_allocator(name: str, total_bandwidth_hz: float) -> BandwidthAllocator:
    """Factory by policy name (``equal`` / ``proportional_rate`` / ``inverse_rate``)."""
    if name not in _ALLOCATORS:
        raise ValueError(f"unknown allocator {name!r}; choose from {sorted(_ALLOCATORS)}")
    return _ALLOCATORS[name](total_bandwidth_hz)


class AllocatorSharePolicy:
    """Adapts a :class:`BandwidthAllocator` into a DES medium share policy.

    On every membership change of the shared link, the *instantaneously
    active* transmitter set is re-allocated by the wrapped policy — so
    the static per-round allocation rules (equal / proportional-rate /
    inverse-rate) become contention-aware: a flow's bandwidth grows when
    other pipelines fall silent and shrinks when they come on the air.
    Duck-typed against :class:`repro.sim.resources.SharePolicy` (the
    kernel calls :meth:`allocate` and consults :attr:`incremental_kind` /
    :meth:`update`), keeping ``repro.sim`` free of wireless imports.
    Allocations depend on the whole active client set, so the link keeps
    its dense engine for this policy (``incremental_kind = "dense"``);
    the per-frozenset share memoisation below is the policy's own fast
    path, and the ``--profile`` scale bench marks it as the next hot
    path at fleet size (the frozenset hash itself is O(active)).
    """

    #: contended allocations are membership-coupled: dense recomputation
    incremental_kind = "dense"

    def update(
        self,
        added: "Sequence[object]",
        removed: "Sequence[object]",
        capacity: float,
        load: float,
    ) -> "tuple[list[float], float] | None":
        """No incremental fast path: every change re-runs the allocator."""
        return None

    def __init__(self, allocator: BandwidthAllocator, channel: WirelessChannel) -> None:
        self.allocator = allocator
        self.channel = channel
        self.name = f"allocator:{allocator.name}"
        # shares() depends only on the active client set (mean SNR, no
        # fading), and membership churn re-asks for the same sets over
        # and over — memoize per frozenset of clients.
        self._share_cache: dict[frozenset, dict[int, float]] = {}

    def _shares_for(self, clients: frozenset) -> dict[int, float]:
        cached = self._share_cache.get(clients)
        if cached is None:
            cached = self.allocator.shares(sorted(clients), self.channel)
            self._share_cache[clients] = cached
        return cached

    def allocate(self, flows: list, capacity: float) -> list[float]:
        """Bandwidth (Hz) per flow from the allocator over active clients.

        A client with several concurrent flows splits its share equally
        among them.  Flows without a client attribution take an equal
        fraction of the capacity and the allocator distributes only the
        remainder, so the summed allocation never exceeds the link.
        """
        counts = Counter(flow.client for flow in flows if flow.client is not None)
        if not counts:
            share = capacity / len(flows)
            return [share] * len(flows)
        shares = self._shares_for(frozenset(counts))
        unattributed = sum(1 for flow in flows if flow.client is None)
        fallback = capacity / len(flows)
        # The allocator hands out the full capacity; scale attributed
        # shares down by whatever the unattributed flows reserve.
        scale = 1.0 - unattributed / len(flows)
        return [
            shares[flow.client] * scale / counts[flow.client]
            if flow.client is not None
            else fallback
            for flow in flows
        ]


def as_share_policy(
    allocator: BandwidthAllocator, channel: WirelessChannel
) -> AllocatorSharePolicy:
    """Contention-aware DES share policy driven by ``allocator``."""
    return AllocatorSharePolicy(allocator, channel)
