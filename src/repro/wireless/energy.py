"""Per-device energy accounting derived from latency traces.

Battery energy is the binding constraint on the paper's "resource-limited
mobile devices"; this module prices every traced activity in joules:

* transmission: ``P_tx * airtime`` (client PA power while sending),
* reception: ``P_rx * airtime`` (radio listening during downlinks),
* computation: ``P_comp * compute_time`` (SoC active power),
* idle: ``P_idle * wait_time``.

The analyzer consumes the same :class:`~repro.sim.trace.TraceRecorder`
rows the latency harness emits, so energy is a *free* second axis on any
experiment already run — no scheme changes needed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.sim.trace import TraceRecorder
from repro.utils.validation import check_non_negative

__all__ = ["EnergyModel", "EnergyReport"]

#: trace phases during which the *client* transmitter is active
_CLIENT_TX_PHASES = frozenset({"uplink_smashed", "model_upload", "data_upload"})
#: phases where the client radio receives
_CLIENT_RX_PHASES = frozenset({"downlink_gradient", "model_distribution", "model_download"})
#: relay = one uplink hop (sender TX) + one downlink hop (receiver RX);
#: the runtime records one row per hop, tagged ``detail="uplink"`` /
#: ``"downlink"`` and attributed to that hop's own client
_CLIENT_RELAY_PHASES = frozenset({"model_relay"})
#: client busy computing
_CLIENT_COMPUTE_PHASES = frozenset({"client_compute"})


@dataclass(frozen=True)
class EnergyReport:
    """Energy totals (joules) for one actor or a whole run."""

    tx_j: float
    rx_j: float
    compute_j: float
    idle_j: float

    @property
    def total_j(self) -> float:
        return self.tx_j + self.rx_j + self.compute_j + self.idle_j

    @classmethod
    def zero(cls) -> "EnergyReport":
        """Additive identity (start value for ``sum`` over reports)."""
        return cls(0.0, 0.0, 0.0, 0.0)

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(
            self.tx_j + other.tx_j,
            self.rx_j + other.rx_j,
            self.compute_j + other.compute_j,
            self.idle_j + other.idle_j,
        )


_ZERO = EnergyReport.zero()


class EnergyModel:
    """Prices traced client activities in joules.

    Default powers describe an IoT-class device: 0.8 W transmit (PA at
    23 dBm plus chain), 0.25 W receive, 1.5 W compute-active, 30 mW idle.
    """

    def __init__(
        self,
        tx_power_w: float = 0.8,
        rx_power_w: float = 0.25,
        compute_power_w: float = 1.5,
        idle_power_w: float = 0.03,
    ) -> None:
        check_non_negative("tx_power_w", tx_power_w)
        check_non_negative("rx_power_w", rx_power_w)
        check_non_negative("compute_power_w", compute_power_w)
        check_non_negative("idle_power_w", idle_power_w)
        self.tx_power_w = tx_power_w
        self.rx_power_w = rx_power_w
        self.compute_power_w = compute_power_w
        self.idle_power_w = idle_power_w

    # ------------------------------------------------------------------
    # per-actor accounting
    # ------------------------------------------------------------------
    def client_energy(
        self, recorder: TraceRecorder, actor: str, total_span_s: float | None = None
    ) -> EnergyReport:
        """Energy of one client actor over a run.

        ``total_span_s`` (e.g. the run's total latency) enables idle-time
        accounting: idle = span - busy.
        """
        tx = rx = comp = busy = 0.0
        for event in recorder.events:
            if event.actor != actor:
                continue
            if event.phase in _CLIENT_TX_PHASES:
                tx += event.duration
            elif event.phase in _CLIENT_RX_PHASES:
                rx += event.duration
            elif event.phase in _CLIENT_RELAY_PHASES:
                # Per-hop relay rows: the sender's uplink hop is TX for
                # its full airtime, the receiver's downlink hop is RX for
                # its full airtime.  An unannotated (legacy combined) row
                # carries both hops under the sender — charge its uplink
                # half at TX; the receiver is unidentifiable there.
                if event.detail == "uplink":
                    tx += event.duration
                elif event.detail == "downlink":
                    rx += event.duration
                else:
                    tx += event.duration / 2
            elif event.phase in _CLIENT_COMPUTE_PHASES:
                comp += event.duration
            else:
                continue
            busy += event.duration
        idle = 0.0
        if total_span_s is not None:
            idle = max(0.0, total_span_s - busy)
        return EnergyReport(
            tx_j=self.tx_power_w * tx,
            rx_j=self.rx_power_w * rx,
            compute_j=self.compute_power_w * comp,
            idle_j=self.idle_power_w * idle,
        )

    def per_client_energy(
        self, recorder: TraceRecorder, total_span_s: float | None = None
    ) -> dict[str, EnergyReport]:
        """Energy report for every ``client-*`` actor in the trace."""
        actors = [a for a in recorder.actors() if a.startswith("client-")]
        return {
            actor: self.client_energy(recorder, actor, total_span_s)
            for actor in actors
        }

    def fleet_energy(
        self, recorder: TraceRecorder, total_span_s: float | None = None
    ) -> EnergyReport:
        """Summed energy across all clients."""
        total = _ZERO
        for report in self.per_client_energy(recorder, total_span_s).values():
            total = total + report
        return total

    def energy_by_round(self, recorder: TraceRecorder) -> dict[int, float]:
        """Total client energy (J, excl. idle) per training round."""
        per_round: dict[int, float] = defaultdict(float)
        for event in recorder.events:
            if not event.actor.startswith("client-"):
                continue
            if event.phase in _CLIENT_TX_PHASES:
                power = self.tx_power_w
            elif event.phase in _CLIENT_RX_PHASES:
                power = self.rx_power_w
            elif event.phase in _CLIENT_RELAY_PHASES:
                if event.detail == "uplink":
                    power = self.tx_power_w
                elif event.detail == "downlink":
                    power = self.rx_power_w
                else:
                    power = self.tx_power_w / 2
            elif event.phase in _CLIENT_COMPUTE_PHASES:
                power = self.compute_power_w
            else:
                continue
            per_round[event.round_index] += power * event.duration
        return dict(per_round)
