"""Network topology: one access point and N uniformly dropped clients.

The paper's scenario (§II): "a generic wireless network scenario,
comprising one access point (AP) and N clients, i.e., mobile devices",
with the edge server co-located at the AP.  Clients are dropped uniformly
at random in an annulus around the AP (minimum distance keeps path loss
finite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import new_rng
from repro.utils.validation import check_positive

__all__ = ["Position", "NetworkTopology"]


@dataclass(frozen=True)
class Position:
    """2-D position in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return float(np.hypot(self.x - other.x, self.y - other.y))


class NetworkTopology:
    """AP at the origin plus ``num_clients`` uniformly dropped clients.

    Uniform *area* density: radii are drawn with the square-root transform
    so client density is constant across the cell.
    """

    def __init__(
        self,
        num_clients: int,
        cell_radius_m: float = 250.0,
        min_distance_m: float = 10.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_positive("num_clients", num_clients)
        check_positive("cell_radius_m", cell_radius_m)
        check_positive("min_distance_m", min_distance_m)
        if min_distance_m >= cell_radius_m:
            raise ValueError(
                f"min_distance_m ({min_distance_m}) must be < cell_radius_m ({cell_radius_m})"
            )
        rng = new_rng(seed)
        self.num_clients = int(num_clients)
        self.cell_radius_m = cell_radius_m
        self.min_distance_m = min_distance_m
        self.ap = Position(0.0, 0.0)

        u = rng.random(self.num_clients)
        radii = np.sqrt(
            u * (cell_radius_m**2 - min_distance_m**2) + min_distance_m**2
        )
        angles = rng.random(self.num_clients) * 2 * np.pi
        self.clients = [
            Position(float(r * np.cos(a)), float(r * np.sin(a)))
            for r, a in zip(radii, angles)
        ]

    def distance(self, client_index: int) -> float:
        """Client-to-AP distance in metres."""
        return self.clients[client_index].distance_to(self.ap)

    def distances(self) -> np.ndarray:
        """All client-to-AP distances."""
        return np.array([self.distance(i) for i in range(self.num_clients)])

    def client_distance(self, a: int, b: int) -> float:
        """Client-to-client distance (device-to-device relay ablation)."""
        return self.clients[a].distance_to(self.clients[b])

    def __repr__(self) -> str:
        return (
            f"NetworkTopology(num_clients={self.num_clients}, "
            f"cell_radius_m={self.cell_radius_m})"
        )
