"""Compute capability model for clients and the edge server.

The paper's premise is *resource-limited* clients against an edge server
"featuring abundant computation and storage resources".  We model
effective throughput in FLOP/s; computation latency for a workload is
``flops / flops_per_second``.  Client heterogeneity is drawn from a
log-normal spread around a nominal mobile-SoC figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import new_rng
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["DeviceProfile", "DeviceFleet", "EDGE_SERVER_FLOPS", "MOBILE_DEVICE_FLOPS"]

#: nominal effective throughputs (FLOP/s); edge GPU (~1 TFLOPS effective)
#: vs IoT/wearable-class client (~250 MFLOPS float) — the paper's
#: "resource-limited" mobile devices
EDGE_SERVER_FLOPS = 1.0e12
MOBILE_DEVICE_FLOPS = 2.5e8


@dataclass(frozen=True)
class DeviceProfile:
    """One device's compute capability."""

    name: str
    flops_per_second: float
    storage_bytes: int = 8 * 1024**3

    def __post_init__(self) -> None:
        check_positive("flops_per_second", self.flops_per_second)
        check_non_negative("storage_bytes", self.storage_bytes)

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        check_non_negative("flops", flops)
        return flops / self.flops_per_second


class DeviceFleet:
    """The edge server plus a heterogeneous set of client devices.

    ``heterogeneity`` is the log-normal sigma of the client FLOP/s spread
    (0 = identical clients, the paper's implicit setting).

    ``device_classes`` replaces the uniform ``client_flops`` base with
    named compute tiers — ``(("phone", 1e8), ("laptop", 6e8), ...)`` —
    assigned round-robin (client ``i`` gets tier ``i % len(classes)``).
    The log-normal heterogeneity factor still multiplies on top, so
    within-tier spread and between-tier structure compose.
    """

    def __init__(
        self,
        num_clients: int,
        client_flops: float = MOBILE_DEVICE_FLOPS,
        server_flops: float = EDGE_SERVER_FLOPS,
        heterogeneity: float = 0.0,
        seed: int | np.random.Generator | None = None,
        device_classes: "tuple[tuple[str, float], ...] | None" = None,
    ) -> None:
        check_positive("num_clients", num_clients)
        check_positive("client_flops", client_flops)
        check_positive("server_flops", server_flops)
        check_non_negative("heterogeneity", heterogeneity)
        rng = new_rng(seed)
        self.server = DeviceProfile(
            "edge-server", server_flops, storage_bytes=512 * 1024**3
        )
        if heterogeneity > 0:
            factors = rng.lognormal(mean=0.0, sigma=heterogeneity, size=num_clients)
        else:
            factors = np.ones(num_clients)
        if device_classes:
            tiers = [(str(name), float(flops)) for name, flops in device_classes]
            for name, flops in tiers:
                check_positive(f"device_classes[{name!r}]", flops)
            self.device_classes: "tuple[tuple[str, float], ...] | None" = tuple(tiers)
            self.clients = [
                DeviceProfile(
                    f"{tiers[i % len(tiers)][0]}-{i}",
                    tiers[i % len(tiers)][1] * float(factors[i]),
                )
                for i in range(num_clients)
            ]
        else:
            self.device_classes = None
            self.clients = [
                DeviceProfile(f"client-{i}", client_flops * float(factors[i]))
                for i in range(num_clients)
            ]

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def client(self, index: int) -> DeviceProfile:
        return self.clients[index]

    def client_flops_array(self) -> np.ndarray:
        """FLOP/s of every client (used by compute-balanced grouping)."""
        return np.array([c.flops_per_second for c in self.clients])
