"""Facade tying topology, channel, devices and bandwidth policy together.

:class:`WirelessSystem` is what the training schemes talk to: it prices
every transmission (seconds for ``nbits`` given the client's bandwidth
share and current channel realization) and every computation (seconds for
``flops`` on a given device).  The schemes themselves stay pure protocol
logic over the discrete-event kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.validation import check_positive
from repro.wireless.bandwidth import BandwidthAllocator, make_allocator
from repro.wireless.channel import ChannelConfig, WirelessChannel
from repro.wireless.devices import DeviceFleet
from repro.wireless.topology import NetworkTopology

__all__ = ["WirelessConfig", "WirelessSystem"]


@dataclass
class WirelessConfig:
    """End-to-end wireless scenario parameters.

    Defaults follow the paper's scale: 30 clients in one small cell with
    an edge server at the AP and 20 MHz of system bandwidth.
    """

    num_clients: int = 30
    total_bandwidth_hz: float = 20e6
    cell_radius_m: float = 120.0
    min_distance_m: float = 10.0
    client_flops: float = 2.5e8
    server_flops: float = 1.0e12
    heterogeneity: float = 0.0
    #: named compute tiers assigned round-robin (None = uniform fleet at
    #: ``client_flops``); see :class:`repro.wireless.devices.DeviceFleet`
    device_classes: "tuple[tuple[str, float], ...] | None" = None
    allocator: str = "equal"
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    deterministic_rates: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_clients", self.num_clients)
        check_positive("total_bandwidth_hz", self.total_bandwidth_hz)


class WirelessSystem:
    """Runtime wireless scenario: prices transmissions and computations."""

    def __init__(self, config: WirelessConfig | None = None) -> None:
        self.config = config or WirelessConfig()
        cfg = self.config
        topo_rng, chan_rng, fleet_rng, fade_rng = spawn_rngs(cfg.seed, 4)
        self.topology = NetworkTopology(
            cfg.num_clients,
            cell_radius_m=cfg.cell_radius_m,
            min_distance_m=cfg.min_distance_m,
            seed=topo_rng,
        )
        channel_cfg = cfg.channel
        if cfg.deterministic_rates:
            channel_cfg = ChannelConfig(
                **{
                    **channel_cfg.__dict__,
                    "rayleigh_fading": False,
                    "shadowing_std_db": 0.0,
                }
            )
        self.channel = WirelessChannel(
            self.topology.distances(), config=channel_cfg, rng=chan_rng
        )
        self.fleet = DeviceFleet(
            cfg.num_clients,
            client_flops=cfg.client_flops,
            server_flops=cfg.server_flops,
            heterogeneity=cfg.heterogeneity,
            seed=fleet_rng,
            device_classes=cfg.device_classes,
        )
        self.allocator: BandwidthAllocator = make_allocator(
            cfg.allocator, cfg.total_bandwidth_hz
        )
        self._fade_rng = new_rng(fade_rng)

    @property
    def num_clients(self) -> int:
        return self.config.num_clients

    # ------------------------------------------------------------------
    # bandwidth shares
    # ------------------------------------------------------------------
    def share_for(self, client: int, num_concurrent: int) -> float:
        """Bandwidth share under an *equal* split with ``num_concurrent`` links.

        Convenience for schemes whose concurrency level is known statically
        (GSFL: M; SL/CL: 1; FL upload: N).
        """
        check_positive("num_concurrent", num_concurrent)
        return self.allocator.total_bandwidth_hz / num_concurrent

    def shares(self, active_clients: list[int]) -> dict[int, float]:
        """Policy-driven shares for an explicit concurrent set."""
        return self.allocator.shares(active_clients, self.channel)

    # ------------------------------------------------------------------
    # transmission pricing
    # ------------------------------------------------------------------
    def uplink_seconds(self, client: int, nbits: float, bandwidth_hz: float) -> float:
        """Seconds to move ``nbits`` client→AP over ``bandwidth_hz``."""
        check_positive("nbits", nbits)
        rate = self.channel.uplink_rate_bps(client, bandwidth_hz)
        return nbits / rate

    def downlink_seconds(self, client: int, nbits: float, bandwidth_hz: float) -> float:
        """Seconds to move ``nbits`` AP→client over ``bandwidth_hz``."""
        check_positive("nbits", nbits)
        rate = self.channel.downlink_rate_bps(client, bandwidth_hz)
        return nbits / rate

    def relay_seconds(
        self, from_client: int, to_client: int, nbits: float, bandwidth_hz: float
    ) -> float:
        """Client→AP→client model relay (paper §II-B-3 routes via the AP)."""
        return self.uplink_seconds(from_client, nbits, bandwidth_hz) + self.downlink_seconds(
            to_client, nbits, bandwidth_hz
        )

    # ------------------------------------------------------------------
    # computation pricing
    # ------------------------------------------------------------------
    def client_compute_seconds(self, client: int, flops: float) -> float:
        """Seconds for ``flops`` on the given client device."""
        return self.fleet.client(client).compute_time(flops)

    def server_compute_seconds(self, flops: float) -> float:
        """Seconds for ``flops`` on the edge server."""
        return self.fleet.server.compute_time(flops)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def link_report(self, bandwidth_hz: float | None = None) -> list[dict[str, float]]:
        """Per-client distance / SNR / mean-rate table for inspection."""
        bw = bandwidth_hz or self.allocator.total_bandwidth_hz
        rows = []
        for c in range(self.num_clients):
            rows.append(
                {
                    "client": c,
                    "distance_m": float(self.topology.distance(c)),
                    "snr_db": self.channel.expected_snr_db(c, bw),
                    "mean_uplink_mbps": self.channel.mean_uplink_rate_bps(c, bw, 50) / 1e6,
                }
            )
        return rows
