"""Between-round client regrouping driven by the runtime's own dynamics.

The paper leaves client grouping to future work (§IV: "we will study the
impact of ... client grouping on the system performance") and evaluates a
static fleet.  :mod:`repro.core.grouping` answers *how to partition once*;
this module answers *when and how to re-partition* — between rounds,
using the evidence the event-driven runtime accumulates while a run is in
flight:

* the availability trace (:class:`repro.experiments.dynamics.ClientDynamics`
  window state: who is up right now, and for how much longer), and
* the failure telemetry of the mid-activity fault model (per-client
  abort/retry counts from the trace recorder and the
  :class:`~repro.sim.server.AggregationServer` abort log).

This is the first feature where the learning loop *reads back* the DES's
failure evidence — the sense→act loop the roadmap's churn-aware-grouping
item asks for.

Policies (:data:`REGROUP_POLICIES`):

* ``static`` — today's behaviour: the partition chosen at construction
  time is never touched.  The scheme driver skips the regroup hook
  entirely, so runs are bitwise identical to the constructor-frozen path
  (pinned by the golden-history suite).
* ``availability_aware`` — re-deal the fleet by *expected remaining
  up-time* read off the churn trace at the regroup instant: clients whose
  up-window closes soonest (and clients currently inside a down-window)
  sink to the **tail** of each GSFL relay chain, so the early chain
  positions — whose work starts immediately — belong to clients that will
  stay up the longest.  With no churn signal the partition is left
  untouched.
* ``abort_history`` — an exponentially-decayed per-client abort/retry
  count (EWMA over the fault telemetry observed since the previous
  regroup) ranks clients by *empirical* flakiness; chains route around
  flaky clients by parking them in mid/tail positions where the GSFL
  reroute fallback is cheap, while the empirically most reliable member
  anchors the chain's final upload (a tail death is the one failure the
  relay cannot re-route around — it surrenders the group's round).

Every policy returns an exact partition of the same client set with
group sizes within one of each other (:func:`~repro.core.grouping.validate_groups`
invariants), and none of them consumes shared RNG streams — regrouping
never perturbs the training, fading, or churn draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "REGROUP_POLICIES",
    "RegroupContext",
    "RegroupPolicy",
    "StaticRegroup",
    "AvailabilityAwareRegroup",
    "AbortHistoryRegroup",
    "make_regroup_policy",
]

#: supported between-round regrouping policies
REGROUP_POLICIES = ("static", "availability_aware", "abort_history")


@dataclass(frozen=True)
class RegroupContext:
    """Evidence handed to a policy at one regroup instant.

    ``dynamics`` is the run's availability-trace surface
    (:class:`~repro.experiments.dynamics.ClientDynamics` in production;
    scripted stand-ins in tests) or ``None`` when the scenario has no
    dynamics layer.  ``abort_counts`` maps client → number of abort and
    retry telemetry rows attributed to that client *since the previous
    regroup* (the scheme driver consumes the recorder/server logs
    incrementally).
    """

    round_index: int
    now_s: float
    dynamics: object | None = None
    abort_counts: Mapping[int, int] = field(default_factory=dict)


class RegroupPolicy:
    """Re-partitions the fleet between rounds.

    ``regroup(groups, context)`` receives the current partition (one list
    of client ids per group, relay order significant for GSFL) and must
    return a new exact partition of the same clients into the same number
    of groups, sizes within one.  Policies may keep internal state across
    calls (the EWMA of :class:`AbortHistoryRegroup`), but must stay
    deterministic: same evidence in, same partition out.
    """

    name = "base"

    def regroup(
        self, groups: list[list[int]], context: RegroupContext
    ) -> list[list[int]]:
        raise NotImplementedError


class StaticRegroup(RegroupPolicy):
    """Identity policy: the partition never changes (today's behaviour)."""

    name = "static"

    def regroup(
        self, groups: list[list[int]], context: RegroupContext
    ) -> list[list[int]]:
        return [list(g) for g in groups]


def _deal(ordered: list[int], num_groups: int) -> list[list[int]]:
    """Round-robin deal of an ordered client list into ``num_groups``.

    Preserves the input order within each group (item ``i`` goes to group
    ``i % num_groups``), so a list sorted best-first yields chains whose
    relay order is best-first too; sizes stay within one by construction.
    """
    groups: list[list[int]] = [[] for _ in range(num_groups)]
    for i, client in enumerate(ordered):
        groups[i % num_groups].append(client)
    return groups


class AvailabilityAwareRegroup(RegroupPolicy):
    """Sort the fleet by expected remaining up-time; short-lived to the tail.

    The churn realization is frozen per run, so the availability trace is
    an *oracle* for the near future: a client whose up-window closes in
    50 ms **will** fail 50 ms from now.  Clients are ranked by remaining
    up-time at the regroup instant (``0`` for clients currently inside a
    down-window, ``+inf`` when the trace places no failure on them) and
    dealt best-first across the groups — every chain gets long-lived
    clients at its head, where work starts immediately, and the clients
    about to fail (or already down) at its tail, where the round reaches
    them last and the reroute fallback is cheapest.  Currently-down
    clients therefore always form a suffix of their chain — never a
    mid-chain relay hop.

    With no dynamics layer, no churn, or indistinguishable scores the
    partition is returned unchanged (no signal → no change).
    """

    name = "availability_aware"

    def regroup(
        self, groups: list[list[int]], context: RegroupContext
    ) -> list[list[int]]:
        unchanged = [list(g) for g in groups]
        dynamics = context.dynamics
        if dynamics is None:
            return unchanged
        now = context.now_s
        clients = sorted(c for g in groups for c in g)
        scores = {c: self._remaining_uptime(dynamics, c, now) for c in clients}
        if len({s for s in scores.values()}) <= 1:
            return unchanged  # no churn signal: everyone looks identical
        ordered = sorted(clients, key=lambda c: (-scores[c], c))
        return _deal(ordered, len(groups))

    @staticmethod
    def _remaining_uptime(dynamics: object, client: int, now: float) -> float:
        """Seconds of up-time left on ``client``'s current window (oracle)."""
        if not dynamics.available_at(client, now):
            return 0.0
        deadline = dynamics.next_failure_s(client, now)
        if deadline is None:
            return math.inf
        return max(0.0, deadline - now)


class AbortHistoryRegroup(RegroupPolicy):
    """EWMA of per-client abort/retry telemetry; route around flaky clients.

    Each regroup folds the abort/retry counts observed since the previous
    one into a per-client exponentially-decayed score
    (``score ← decay · score + fresh_count``), then deals clients across
    the groups most-reliable-first.  Within each chain the single most
    reliable member is rotated to the **tail**: the tail client's upload
    is the one hop the GSFL reroute recovery cannot skip (a dead tail
    surrenders the whole group-round), so it goes to the client with the
    cleanest record while the empirically flaky ones sit mid-chain where
    a death merely reroutes.

    Before any telemetry arrives every score is zero and the partition is
    returned unchanged (no evidence → no change).
    """

    name = "abort_history"

    def __init__(self, decay: float = 0.5) -> None:
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self.decay = decay
        self._score: dict[int, float] = {}

    def regroup(
        self, groups: list[list[int]], context: RegroupContext
    ) -> list[list[int]]:
        clients = sorted(c for g in groups for c in g)
        for c in clients:
            self._score[c] = self.decay * self._score.get(c, 0.0) + float(
                context.abort_counts.get(c, 0)
            )
        if len({self._score[c] for c in clients}) <= 1:
            return [list(g) for g in groups]  # no evidence: keep the partition
        ordered = sorted(clients, key=lambda c: (self._score[c], c))
        dealt = _deal(ordered, len(groups))
        # Rotate the most reliable member (dealt head) to the chain tail.
        return [g[1:] + g[:1] if len(g) > 1 else g for g in dealt]


def make_regroup_policy(name: str) -> RegroupPolicy | None:
    """Policy instance for a :data:`REGROUP_POLICIES` name.

    ``"static"`` maps to ``None`` — the scheme driver uses the absence of
    a policy to skip the regroup hook wholesale, keeping the default path
    provably identical to the constructor-frozen behaviour.
    """
    if name == "static":
        return None
    if name == "availability_aware":
        return AvailabilityAwareRegroup()
    if name == "abort_history":
        return AbortHistoryRegroup()
    raise ValueError(
        f"unknown regroup policy {name!r}; expected one of {REGROUP_POLICIES}"
    )
