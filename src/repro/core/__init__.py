"""``repro.core`` — the paper's contribution and its design knobs.

GSFL itself (:mod:`repro.core.gsfl`), client grouping strategies, FedAvg
aggregation, cut-layer analysis/selection, and inter-group bandwidth
apportioning (the §IV future-work axes, built for the ablations).
"""

from repro.core.aggregation import fedavg, uniform_average, weighted_delta
from repro.core.cut_layer import CutAnalysis, analyze_cuts, best_cut, estimate_round_latency
from repro.core.gsfl import GroupSplitFederatedLearning
from repro.core.grouping import (
    GROUPING_STRATEGIES,
    channel_aware_groups,
    compute_balanced_groups,
    contiguous_groups,
    make_groups,
    random_groups,
    validate_groups,
)
from repro.core.regroup import (
    REGROUP_POLICIES,
    AbortHistoryRegroup,
    AvailabilityAwareRegroup,
    RegroupContext,
    RegroupPolicy,
    StaticRegroup,
    make_regroup_policy,
)
from repro.core.resource import (
    GroupWorkload,
    equal_bandwidth_split,
    minmax_bandwidth_split,
)

__all__ = [
    "GroupSplitFederatedLearning",
    "fedavg",
    "uniform_average",
    "weighted_delta",
    "GROUPING_STRATEGIES",
    "contiguous_groups",
    "random_groups",
    "compute_balanced_groups",
    "channel_aware_groups",
    "make_groups",
    "validate_groups",
    "REGROUP_POLICIES",
    "RegroupContext",
    "RegroupPolicy",
    "StaticRegroup",
    "AvailabilityAwareRegroup",
    "AbortHistoryRegroup",
    "make_regroup_policy",
    "CutAnalysis",
    "analyze_cuts",
    "best_cut",
    "estimate_round_latency",
    "GroupWorkload",
    "equal_bandwidth_split",
    "minmax_bandwidth_split",
]
