"""Client grouping strategies.

GSFL partitions the ``N`` clients into ``M`` groups (paper §II); *how* to
group is explicitly left to future work (§IV: "we will study the impact
of ... client grouping on the system performance").  Implemented
strategies:

* ``contiguous`` — clients 0..k-1, k..2k-1, ... (deterministic baseline);
* ``random`` — uniformly random balanced partition;
* ``compute_balanced`` — greedy longest-processing-time assignment so the
  summed client compute capability per group is even (fast groups don't
  idle at the aggregation barrier);
* ``channel_aware`` — LPT on expected per-bit airtime so the summed
  transmission burden per group is even.

All strategies return ``list[list[int]]`` that exactly partitions
``range(num_clients)`` with group sizes differing by at most one.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import new_rng

__all__ = [
    "GROUPING_STRATEGIES",
    "contiguous_groups",
    "random_groups",
    "compute_balanced_groups",
    "channel_aware_groups",
    "make_groups",
    "validate_groups",
]

#: supported grouping strategies (the :func:`make_groups` dispatch names)
GROUPING_STRATEGIES = ("contiguous", "random", "compute_balanced", "channel_aware")

#: optional :func:`make_groups` arguments each strategy actually consumes
_STRATEGY_ARGS = {
    "contiguous": (),
    "random": ("seed",),
    "compute_balanced": ("client_flops",),
    "channel_aware": ("per_bit_airtime",),
}


def _check(num_clients: int, num_groups: int) -> None:
    if num_groups <= 0:
        raise ValueError(f"num_groups must be positive, got {num_groups}")
    if num_clients < num_groups:
        raise ValueError(
            f"cannot form {num_groups} non-empty groups from {num_clients} clients"
        )


def contiguous_groups(num_clients: int, num_groups: int) -> list[list[int]]:
    """Split 0..N-1 into consecutive runs (sizes differ by at most 1)."""
    _check(num_clients, num_groups)
    parts = np.array_split(np.arange(num_clients), num_groups)
    return [part.tolist() for part in parts]


def random_groups(
    num_clients: int, num_groups: int, seed: int | np.random.Generator | None = None
) -> list[list[int]]:
    """Uniformly random balanced partition."""
    _check(num_clients, num_groups)
    rng = new_rng(seed)
    order = rng.permutation(num_clients)
    parts = np.array_split(order, num_groups)
    return [sorted(part.tolist()) for part in parts]


def _balanced_lpt(costs: np.ndarray, num_groups: int) -> list[list[int]]:
    """Greedy LPT assignment balancing summed cost, respecting size balance.

    Clients are taken in decreasing cost order; each goes to the group with
    the smallest current total cost among groups that still have capacity
    (max size = ceil(N / M)), keeping group sizes within one of each other.
    """
    n = len(costs)
    max_size = -(-n // num_groups)  # ceil
    groups: list[list[int]] = [[] for _ in range(num_groups)]
    totals = np.zeros(num_groups)
    for client in np.argsort(-costs, kind="stable"):
        eligible = [g for g in range(num_groups) if len(groups[g]) < max_size]
        target = min(eligible, key=lambda g: (totals[g], len(groups[g]), g))
        groups[target].append(int(client))
        totals[target] += costs[client]
    return [sorted(g) for g in groups]


def compute_balanced_groups(
    client_flops: np.ndarray, num_groups: int
) -> list[list[int]]:
    """Balance summed *compute time* per group (cost = 1/FLOPS)."""
    client_flops = np.asarray(client_flops, dtype=np.float64)
    _check(len(client_flops), num_groups)
    if np.any(client_flops <= 0):
        raise ValueError("client FLOPS must be positive")
    return _balanced_lpt(1.0 / client_flops, num_groups)


def channel_aware_groups(
    per_bit_airtime: np.ndarray, num_groups: int
) -> list[list[int]]:
    """Balance summed transmission time per group.

    ``per_bit_airtime`` is seconds/bit per client (1/mean uplink rate).
    """
    per_bit_airtime = np.asarray(per_bit_airtime, dtype=np.float64)
    _check(len(per_bit_airtime), num_groups)
    if np.any(per_bit_airtime <= 0):
        raise ValueError("airtime costs must be positive")
    return _balanced_lpt(per_bit_airtime, num_groups)


def make_groups(
    strategy: str,
    num_clients: int,
    num_groups: int,
    seed: int | np.random.Generator | None = None,
    client_flops: np.ndarray | None = None,
    per_bit_airtime: np.ndarray | None = None,
) -> list[list[int]]:
    """Strategy dispatch by name (see module docstring for the options).

    Arguments a strategy does not consume must not be passed: a ``seed``
    given to a deterministic strategy, or cost vectors given to a
    strategy that ignores them, would be silently dropped — almost
    certainly a caller bug (expecting a seeded shuffle or a cost-balanced
    split that never happens) — so mismatched combinations raise.
    """
    if strategy not in _STRATEGY_ARGS:
        raise ValueError(
            f"unknown grouping strategy {strategy!r}; expected contiguous / random / "
            "compute_balanced / channel_aware"
        )
    given = {
        "seed": seed,
        "client_flops": client_flops,
        "per_bit_airtime": per_bit_airtime,
    }
    extraneous = [
        name
        for name, value in given.items()
        if value is not None and name not in _STRATEGY_ARGS[strategy]
    ]
    if extraneous:
        raise ValueError(
            f"{strategy!r} grouping does not use {', '.join(extraneous)}; "
            f"refusing to silently ignore arguments — pass only what the "
            f"strategy consumes ({list(_STRATEGY_ARGS[strategy]) or 'nothing'})"
        )
    if strategy == "contiguous":
        return contiguous_groups(num_clients, num_groups)
    if strategy == "random":
        return random_groups(num_clients, num_groups, seed)
    if strategy == "compute_balanced":
        if client_flops is None:
            raise ValueError("compute_balanced grouping requires client_flops")
        return compute_balanced_groups(client_flops, num_groups)
    if per_bit_airtime is None:
        raise ValueError("channel_aware grouping requires per_bit_airtime")
    return channel_aware_groups(per_bit_airtime, num_groups)


def validate_groups(groups: list[list[int]], num_clients: int) -> None:
    """Raise ``ValueError`` unless ``groups`` exactly partition the clients."""
    if any(len(g) == 0 for g in groups):
        raise ValueError("groups must be non-empty")
    flat = sorted(c for g in groups for c in g)
    if flat != list(range(num_clients)):
        raise ValueError(
            f"groups must partition range({num_clients}); got a partition of {flat[:5]}..."
        )
