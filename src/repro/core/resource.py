"""Inter-group bandwidth apportioning (the paper's §IV future-work item).

During GSFL's training phase the ``M`` groups transmit concurrently and
the system bandwidth must be divided among them.  A group's round time is
(approximately) monotone decreasing in its bandwidth share, so the
min-max-latency split equalizes group finishing times.  This module
implements that optimizer: given each group's fixed compute time and
transmission workload (bits·"per-bit airtime at unit bandwidth" is not
linear because Shannon rate is not linear in bandwidth — we solve
numerically on the true rate curve).

``minmax_bandwidth_split`` uses bisection on the achievable round time:
for a candidate time ``t``, each group needs bandwidth ``b_g(t)`` (found
by a nested bisection); feasible iff ``sum b_g(t) <= B``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.utils.validation import check_positive

__all__ = ["GroupWorkload", "minmax_bandwidth_split", "equal_bandwidth_split"]


@dataclass(frozen=True)
class GroupWorkload:
    """One group's per-round resource demand.

    ``latency_fn(bandwidth_hz) -> seconds`` must be continuous and
    non-increasing in bandwidth (compute time + transmission time).
    """

    group_index: int
    latency_fn: Callable[[float], float]


def equal_bandwidth_split(total_bandwidth_hz: float, num_groups: int) -> list[float]:
    """Uniform split (the baseline the paper's figures use)."""
    check_positive("total_bandwidth_hz", total_bandwidth_hz)
    check_positive("num_groups", num_groups)
    return [total_bandwidth_hz / num_groups] * num_groups


def _bandwidth_for_deadline(
    workload: GroupWorkload,
    deadline_s: float,
    bandwidth_lo: float,
    bandwidth_hi: float,
    tol: float = 1e-3,
) -> float | None:
    """Minimum bandwidth letting the group finish by ``deadline_s``.

    None when even ``bandwidth_hi`` cannot meet the deadline.
    """
    if workload.latency_fn(bandwidth_hi) > deadline_s:
        return None
    lo, hi = bandwidth_lo, bandwidth_hi
    while hi - lo > tol * bandwidth_hi:
        mid = 0.5 * (lo + hi)
        if workload.latency_fn(mid) <= deadline_s:
            hi = mid
        else:
            lo = mid
    return hi


def minmax_bandwidth_split(
    workloads: list[GroupWorkload],
    total_bandwidth_hz: float,
    min_share_hz: float | None = None,
    iterations: int = 40,
) -> tuple[list[float], float]:
    """Bandwidth shares minimizing the slowest group's round time.

    Returns ``(shares, achieved_round_time)``.  Shares sum to the total
    (any slack from the bisection is redistributed proportionally).
    """
    check_positive("total_bandwidth_hz", total_bandwidth_hz)
    if not workloads:
        raise ValueError("need at least one group workload")
    m = len(workloads)
    floor = min_share_hz if min_share_hz is not None else total_bandwidth_hz / (100.0 * m)

    # Deadline bounds: all-bandwidth-to-one lower bound, floor-share upper.
    t_lo = max(w.latency_fn(total_bandwidth_hz) for w in workloads)
    t_hi = max(w.latency_fn(floor) for w in workloads)
    if t_hi < t_lo:
        t_lo, t_hi = t_hi, t_lo

    def demand(deadline: float) -> list[float] | None:
        shares = []
        for w in workloads:
            b = _bandwidth_for_deadline(w, deadline, floor, total_bandwidth_hz)
            if b is None:
                return None
            shares.append(max(b, floor))
        return shares

    best_shares = demand(t_hi)
    if best_shares is None or sum(best_shares) > total_bandwidth_hz:
        # Even the most relaxed deadline is infeasible under the floor —
        # fall back to the equal split.
        eq = equal_bandwidth_split(total_bandwidth_hz, m)
        return eq, max(w.latency_fn(b) for w, b in zip(workloads, eq))

    best_deadline = t_hi
    for _ in range(iterations):
        mid = 0.5 * (t_lo + t_hi)
        shares = demand(mid)
        if shares is not None and sum(shares) <= total_bandwidth_hz:
            best_shares, best_deadline = shares, mid
            t_hi = mid
        else:
            t_lo = mid

    # Hand out leftover spectrum proportionally — latencies only improve.
    slack = total_bandwidth_hz - sum(best_shares)
    if slack > 0:
        scale = total_bandwidth_hz / sum(best_shares)
        best_shares = [b * scale for b in best_shares]
    achieved = max(w.latency_fn(b) for w, b in zip(workloads, best_shares))
    return best_shares, min(achieved, best_deadline)
