"""Cut-layer analysis and selection.

Where to cut the model is the central split-learning design knob (paper
§IV lists "the impact of the cut layer selection" as future work).  The
cut trades off:

* **client compute** — deeper cut → more FLOPs on the weak device;
* **smashed payload** — the activation size at the cut, paid (up + down)
  on *every batch*;
* **client-model size** — paid on every client-to-client relay and on
  aggregation uploads.

:func:`analyze_cuts` tabulates all three per candidate cut from a
:class:`~repro.nn.profile.ModelProfile`; :func:`estimate_round_latency`
prices one client's per-batch split interaction; :func:`best_cut` returns
the latency-minimizing cut for a wireless scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.profile import ModelProfile
from repro.wireless.system import WirelessSystem

__all__ = ["CutAnalysis", "analyze_cuts", "estimate_round_latency", "best_cut"]


@dataclass(frozen=True)
class CutAnalysis:
    """Static cost profile for one candidate cut layer."""

    cut_layer: int
    client_forward_flops: int
    client_backward_flops: int
    server_forward_flops: int
    server_backward_flops: int
    smashed_bytes_per_sample: int
    client_model_bytes: int
    server_model_bytes: int


def analyze_cuts(profile: ModelProfile) -> list[CutAnalysis]:
    """Cost profile for every valid cut (1..L-1)."""
    out = []
    for cut in range(1, profile.num_layers):
        out.append(
            CutAnalysis(
                cut_layer=cut,
                client_forward_flops=profile.client_forward_flops(cut),
                client_backward_flops=profile.client_backward_flops(cut),
                server_forward_flops=profile.server_forward_flops(cut),
                server_backward_flops=profile.server_backward_flops(cut),
                smashed_bytes_per_sample=profile.smashed_bytes(cut, 1),
                client_model_bytes=profile.client_model_bytes(cut),
                server_model_bytes=profile.server_model_bytes(cut),
            )
        )
    return out


def estimate_round_latency(
    profile: ModelProfile,
    cut_layer: int,
    system: WirelessSystem,
    client: int,
    batch_size: int,
    local_steps: int,
    bandwidth_hz: float,
    use_mean_rates: bool = True,
) -> float:
    """Expected split-training time for one client's local round.

    Sums, over ``local_steps`` batches: client forward, smashed uplink,
    server forward+backward, gradient downlink, client backward.  Uses
    mean rates (no fading draw) when ``use_mean_rates`` so cut selection is
    deterministic.
    """
    fwd_c = profile.client_forward_flops(cut_layer) * batch_size
    bwd_c = profile.client_backward_flops(cut_layer) * batch_size
    fwd_s = profile.server_forward_flops(cut_layer) * batch_size
    bwd_s = profile.server_backward_flops(cut_layer) * batch_size
    smashed_bits = 8 * profile.smashed_bytes(cut_layer, batch_size)

    if use_mean_rates:
        up_rate = system.channel.mean_uplink_rate_bps(client, bandwidth_hz, num_draws=64)
        down_rate = up_rate * 1.5  # AP transmits at higher power; coarse mean
        uplink = smashed_bits / up_rate
        downlink = smashed_bits / down_rate
    else:
        uplink = system.uplink_seconds(client, smashed_bits, bandwidth_hz)
        downlink = system.downlink_seconds(client, smashed_bits, bandwidth_hz)

    per_batch = (
        system.client_compute_seconds(client, fwd_c)
        + uplink
        + system.server_compute_seconds(fwd_s + bwd_s)
        + downlink
        + system.client_compute_seconds(client, bwd_c)
    )
    return local_steps * per_batch


def best_cut(
    profile: ModelProfile,
    system: WirelessSystem,
    batch_size: int,
    local_steps: int = 1,
    bandwidth_hz: float | None = None,
    client: int = 0,
) -> tuple[int, list[tuple[int, float]]]:
    """Latency-minimizing cut layer.

    Returns ``(best_cut, [(cut, latency), ...])`` with the full sweep so
    callers can plot the ablation curve.
    """
    bw = bandwidth_hz or system.allocator.total_bandwidth_hz
    sweep = []
    for cut in range(1, profile.num_layers):
        latency = estimate_round_latency(
            profile, cut, system, client, batch_size, local_steps, bw
        )
        sweep.append((cut, latency))
    best = min(sweep, key=lambda pair: pair[1])[0]
    return best, sweep
