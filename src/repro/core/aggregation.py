"""FedAvg-style aggregation over model state dicts.

The paper (§II-C): "AP aggregates all the server-side models and
client-side models into a new one respectively.  Model aggregation can be
conducted through FedAVG."  Aggregation is a weighted average of every
parameter *and buffer* (batch-norm running statistics average like
parameters, the standard FedAvg-BN treatment).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.nn.serialize import state_num_scalars

__all__ = ["fedavg", "uniform_average", "weighted_delta"]


def fedavg(
    states: list[dict[str, np.ndarray]], weights: list[float] | np.ndarray | None = None
) -> "OrderedDict[str, np.ndarray]":
    """Weighted average of state dicts (weights normalized internally).

    Weights are typically per-participant sample counts.  All states must
    share identical keys and shapes.
    """
    if not states:
        raise ValueError("fedavg needs at least one state dict")
    keys = list(states[0].keys())
    for i, state in enumerate(states[1:], start=1):
        if list(state.keys()) != keys:
            raise ValueError(f"state {i} has mismatched keys")
        if state_num_scalars(state) != state_num_scalars(states[0]):
            raise ValueError(f"state {i} has mismatched sizes")

    if weights is None:
        weights = np.ones(len(states))
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != len(states):
        raise ValueError(f"{len(weights)} weights for {len(states)} states")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    weights = weights / weights.sum()

    out: OrderedDict[str, np.ndarray] = OrderedDict()
    for key in keys:
        first = np.asarray(states[0][key], dtype=np.float64)
        acc = np.zeros_like(first)
        for state, w in zip(states, weights):
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != first.shape:
                raise ValueError(
                    f"shape mismatch for key {key!r}: {value.shape} vs {first.shape}"
                )
            acc += w * value
        out[key] = acc
    return out


def uniform_average(states: list[dict[str, np.ndarray]]) -> "OrderedDict[str, np.ndarray]":
    """Unweighted FedAvg."""
    return fedavg(states, weights=None)


def weighted_delta(
    base: dict[str, np.ndarray],
    states: list[dict[str, np.ndarray]],
    weights: list[float] | np.ndarray | None = None,
    server_lr: float = 1.0,
) -> "OrderedDict[str, np.ndarray]":
    """FedOpt-style update: ``base + server_lr * (fedavg(states) - base)``.

    With ``server_lr=1`` this equals plain FedAvg; other values implement
    server-side damping/acceleration (an extension beyond the paper, used
    in ablations).
    """
    avg = fedavg(states, weights)
    out: OrderedDict[str, np.ndarray] = OrderedDict()
    for key, value in avg.items():
        base_v = np.asarray(base[key], dtype=np.float64)
        out[key] = base_v + server_lr * (value - base_v)
    return out
