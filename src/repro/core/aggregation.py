"""FedAvg-style aggregation over model state dicts.

The paper (§II-C): "AP aggregates all the server-side models and
client-side models into a new one respectively.  Model aggregation can be
conducted through FedAVG."  Aggregation is a weighted average of every
parameter *and buffer* (batch-norm running statistics average like
parameters, the standard FedAvg-BN treatment).

Implementation: every state dict is flattened (``pack_state`` layout)
straight into one ``(M, K)`` matrix and the whole average collapses to a
single ``weights @ matrix`` BLAS call — instead of the per-key Python
loop the original implementation used; the result is rebuilt with
:func:`~repro.nn.serialize.unpack_state`.  Aggregation keeps the states'
dtype (a float32 model averages in float32; no silent float64 upcast).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.nn.serialize import unpack_state

__all__ = ["fedavg", "uniform_average", "weighted_delta", "mix_states"]


def _normalized_weights(
    weights: "list[float] | np.ndarray | None", num_states: int
) -> np.ndarray:
    if weights is None:
        weights = np.ones(num_states)
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != num_states:
        raise ValueError(f"{len(weights)} weights for {num_states} states")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    return weights / weights.sum()


def _stack_states(states: list[dict[str, np.ndarray]]) -> np.ndarray:
    """Validate key/shape agreement and pack states into an (M, K) matrix.

    Each state is flattened straight into its row of one preallocated
    matrix (the moral equivalent of per-state
    :func:`~repro.nn.serialize.pack_state`, without materializing M
    intermediate vectors and re-copying them into a stack).
    """
    if not states:
        raise ValueError("fedavg needs at least one state dict")
    keys = list(states[0].keys())
    template = [np.asarray(v) for v in states[0].values()]
    shapes = [v.shape for v in template]
    sizes = [v.size for v in template]
    matrix = np.empty(
        (len(states), int(sum(sizes))),
        dtype=np.result_type(*template) if template else np.float64,
    )
    for i, state in enumerate(states):
        if i and list(state.keys()) != keys:
            raise ValueError(f"state {i} has mismatched keys")
        offset = 0
        for key, shape, size, value in zip(keys, shapes, sizes, state.values()):
            value = np.asarray(value)
            if value.shape != shape:
                raise ValueError(
                    f"shape mismatch for key {key!r}: {value.shape} vs {shape}"
                )
            matrix[i, offset : offset + size] = value.reshape(-1)
            offset += size
    return matrix


def fedavg(
    states: list[dict[str, np.ndarray]], weights: list[float] | np.ndarray | None = None
) -> "OrderedDict[str, np.ndarray]":
    """Weighted average of state dicts (weights normalized internally).

    Weights are typically per-participant sample counts.  All states must
    share identical keys and shapes.
    """
    matrix = _stack_states(states)
    weights = _normalized_weights(weights, len(states)).astype(matrix.dtype, copy=False)
    # The averaged vector is freshly allocated, so the per-key entries can
    # be views into it — no re-copy.
    return unpack_state(weights @ matrix, states[0], copy=False)


def uniform_average(states: list[dict[str, np.ndarray]]) -> "OrderedDict[str, np.ndarray]":
    """Unweighted FedAvg."""
    return fedavg(states, weights=None)


def weighted_delta(
    base: dict[str, np.ndarray],
    states: list[dict[str, np.ndarray]],
    weights: list[float] | np.ndarray | None = None,
    server_lr: float = 1.0,
) -> "OrderedDict[str, np.ndarray]":
    """FedOpt-style update: ``base + server_lr * (fedavg(states) - base)``.

    With ``server_lr=1`` this equals plain FedAvg; other values implement
    server-side damping/acceleration (an extension beyond the paper, used
    in ablations).
    """
    matrix = _stack_states(states)
    weights = _normalized_weights(weights, len(states)).astype(matrix.dtype, copy=False)
    avg_vec = weights @ matrix
    # Flatten ``base`` in the states' key order (KeyError on missing keys).
    base_vec = np.concatenate(
        [np.asarray(base[key]).reshape(-1) for key in states[0]]
    ).astype(avg_vec.dtype, copy=False)
    if base_vec.size != avg_vec.size:
        raise ValueError(
            f"base has {base_vec.size} scalars, states have {avg_vec.size}"
        )
    lr = avg_vec.dtype.type(server_lr)
    return unpack_state(base_vec + lr * (avg_vec - base_vec), states[0], copy=False)


def mix_states(
    base: dict[str, np.ndarray],
    update: dict[str, np.ndarray],
    alpha: float,
) -> "OrderedDict[str, np.ndarray]":
    """Asynchronous single-update merge: ``base + alpha * (update - base)``.

    The FedAsync mixing step applied by the DES-resident aggregation
    server on every barrier-free commit; ``alpha`` is the unit's
    normalized sample weight damped by the staleness policy.  A
    single-state :func:`weighted_delta` (same packed-BLAS path, same
    dtype preservation and fresh allocation) with the mixing coefficient
    range-checked.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"mixing coefficient must be in [0, 1], got {alpha}")
    if base.keys() != update.keys():
        raise ValueError("base and update states have mismatched keys")
    return weighted_delta(base, [update], server_lr=alpha)
