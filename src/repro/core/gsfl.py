"""Group-based split federated learning (GSFL) — the paper's contribution.

The split-then-federated protocol (§II):

1. **Model distribution** — the AP cuts the global model at ``cut_layer``
   and sends the client-side half to the first client of each of the
   ``M`` groups (M concurrent downlinks share the bandwidth).
2. **Model training** — inside each group, clients run sequential split
   learning against the group's *own server-side replica* (the edge
   server hosts M replicas — versus one per client in naive SplitFed,
   the §I storage argument).  The M group pipelines run in parallel;
   each group's active transmitter gets a ``1/M`` bandwidth share under
   the equal allocator (or a policy/optimizer-driven share).
3. **Model aggregation** — once every group finishes (a barrier), the
   last client of each group uploads its client-side half; the AP
   FedAvg-aggregates the M client halves and the M server replicas into
   the next round's global model.

Convergence intuition reproduced by this implementation: per round a
group performs ``(N/M)·local_steps`` *sequential* SGD updates (SL-like
progress) while groups parallelize wall-clock time; FL gets only
``local_steps`` sequential updates before averaging.  Hence GSFL ≈ SL in
rounds-to-accuracy (slightly behind due to averaging), ≫ FL; and GSFL
beats SL in wall clock by parallelizing client compute and concentrating
transmit power on narrower subchannels.

The round engine mirrors that structure on the host: the parent thread
draws everything stateful (failure injection, mini-batches, priced
activities with their fading realizations) in protocol order, then the
``M`` independent group pipelines run on the scheme's
:mod:`repro.exec` executor — serial, thread-pool, or process-pool —
with bitwise-identical training histories on every backend.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.aggregation import fedavg
from repro.core.grouping import make_groups, validate_groups
from repro.core.regroup import RegroupContext, make_regroup_policy
from repro.nn.split import split_model
from repro.schemes.base import Activity, Scheme, Stage
from repro.schemes.pricing import LatencyModel
from repro.schemes.split_common import (
    AsyncSplitStateMixin,
    GroupTask,
    SplitHyperParams,
    price_local_round,
    run_group_tasks,
    train_split_group,
)
from repro.sim.server import RetryAt, UnitRoundWork

__all__ = ["GroupSplitFederatedLearning"]


class GroupSplitFederatedLearning(AsyncSplitStateMixin, Scheme):
    """GSFL: parallel per-group sequential split learning + FedAvg.

    Parameters beyond the :class:`~repro.schemes.base.Scheme` basics:

    num_groups:
        ``M``; ``M=1`` degenerates to SL-with-aggregation, ``M=N`` to
        SplitFed-style fully parallel training.
    cut_layer:
        Split point (client-side layer count).
    grouping / groups:
        Either a strategy name for :func:`repro.core.grouping.make_groups`
        or an explicit partition.  Only the *initial* partition: with a
        non-static ``config.regroup`` policy, ``self.groups`` is
        per-round state — :meth:`_maybe_regroup` re-partitions the fleet
        between rounds from the run's own dynamics evidence (see
        :mod:`repro.core.regroup`).
    bandwidth_shares:
        Optional per-group bandwidth shares in Hz (e.g. from
        :func:`repro.core.resource.minmax_bandwidth_split`); defaults to
        the equal split ``B / M``.
    failure_rate:
        Per-round probability that a client is unavailable (crash, deep
        fade, battery).  An unavailable client is skipped in its group's
        relay — the client-side model hops straight to the next member;
        a fully-failed group contributes nothing to that round's
        aggregation.  Failure-injection extension beyond the paper.
    """

    name = "GSFL"
    supports_async = True
    #: mid-activity failure recovery: once the retry budget is spent, the
    #: relay chain re-routes around the dead client — the AP re-issues
    #: its cached client-model copy to the next relay — and the group's
    #: contribution is recorded as *partial*; when the failed client has
    #: no live successor (its upload was the chain's last hop), the group
    #: surrenders the round instead.
    _recovery_mode = "reroute"

    def __init__(
        self,
        *args: object,
        num_groups: int = 6,
        cut_layer: int = 1,
        grouping: str = "contiguous",
        groups: list[list[int]] | None = None,
        bandwidth_shares: list[float] | None = None,
        failure_rate: float = 0.0,
        **kwargs: object,
    ) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1], got {failure_rate}")
        self.failure_rate = failure_rate
        self._failure_rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, 0xFA11])
        )
        self.skipped_clients_total = 0
        self.cut_layer = cut_layer
        self.split = split_model(self.model, cut_layer)
        self._loss_fn = nn.CrossEntropyLoss()
        self._pricing = LatencyModel(
            self.system,
            self.profile,
            self.config.batch_size,
            quantize_bits=self.config.quantize_bits,
            transport=self.config.transport,
        )

        if groups is not None:
            self.groups = [list(g) for g in groups]
            self.grouping = "explicit"
        else:
            self.groups = make_groups(
                grouping,
                self.num_clients,
                num_groups,
                **self._grouping_args(grouping, num_groups),
            )
            self.grouping = grouping
        validate_groups(self.groups, self.num_clients)
        self.num_groups = len(self.groups)

        # Between-round regrouping: ``static`` maps to no policy at all, so
        # the default path never touches the constructor-frozen partition
        # (golden-pinned bitwise).  Regrouping re-partitions the fleet at
        # global round boundaries, which only exist under the sync barrier;
        # free-running async pipelines have no instant at which swapping
        # memberships between units is well-defined.
        self._regroup_policy = make_regroup_policy(self.config.regroup)
        if self._regroup_policy is not None and not self.aggregation_policy.synchronous:
            raise ValueError(
                f"regroup={self.config.regroup!r} requires synchronous "
                f"aggregation (sync / bounded:0), got "
                f"aggregation={self.config.aggregation!r}"
            )
        #: recorder-log cursors: abort/retry telemetry consumed incrementally
        #: so each regroup sees only the evidence since the previous one
        self._aborts_seen = 0
        self._retries_seen = 0

        if bandwidth_shares is not None:
            if len(bandwidth_shares) != self.num_groups:
                raise ValueError(
                    f"{len(bandwidth_shares)} bandwidth shares for "
                    f"{self.num_groups} groups"
                )
            self.bandwidth_shares = list(bandwidth_shares)
        else:
            self.bandwidth_shares = [
                self._pricing.total_bandwidth_hz / self.num_groups
            ] * self.num_groups

        # Global halves; per-round working replicas are loaded from these.
        self._global_client_state = self.split.client.state_dict()
        self._global_server_state = self.split.server.state_dict()

    def _grouping_args(self, grouping: str, num_groups: int) -> dict:
        """Arguments the chosen strategy consumes (and nothing else).

        :func:`~repro.core.grouping.make_groups` rejects extraneous
        arguments, so each strategy gets exactly its own inputs; the
        cost-driven strategies need the wireless system to price clients.
        """
        if grouping == "random":
            return {"seed": self.config.seed}
        if grouping == "compute_balanced":
            if self.system is None:
                raise ValueError(
                    "compute_balanced grouping requires a wireless system "
                    "(per-client FLOPS are unknown without one)"
                )
            return {"client_flops": self.system.fleet.client_flops_array()}
        if grouping == "channel_aware":
            if self.system is None:
                raise ValueError(
                    "channel_aware grouping requires a wireless system "
                    "(per-client link rates are unknown without one)"
                )
            # Airtime priced at the nominal per-group share: the bandwidth
            # a chain's active transmitter actually holds under GSFL.
            bandwidth = self._pricing.total_bandwidth_hz / num_groups
            airtime = np.array(
                [
                    1.0 / self.system.channel.mean_uplink_rate_bps(c, bandwidth)
                    for c in range(self.num_clients)
                ]
            )
            return {"per_bit_airtime": airtime}
        return {}

    # ------------------------------------------------------------------
    # between-round regrouping (sense -> act over the failure telemetry)
    # ------------------------------------------------------------------
    def _consume_abort_counts(self) -> dict[int, int]:
        """Per-client abort/retry rows logged since the previous regroup."""
        counts: dict[int, int] = {}
        for event in self.recorder.aborts[self._aborts_seen:]:
            counts[event.client] = counts.get(event.client, 0) + 1
        for event in self.recorder.retries[self._retries_seen:]:
            counts[event.client] = counts.get(event.client, 0) + 1
        self._aborts_seen = len(self.recorder.aborts)
        self._retries_seen = len(self.recorder.retries)
        return counts

    def _maybe_regroup(self, round_index: int) -> None:
        """Re-partition the fleet at a regroup boundary (no-op for static).

        Runs before the round's pipelines are built, so the new chains see
        this round's churn/participation resolution.  Round 0 always keeps
        the construction-time partition (there is no evidence yet and the
        first partition *is* the configured grouping strategy).
        """
        policy = self._regroup_policy
        if (
            policy is None
            or round_index == 0
            or round_index % self.config.regroup_every != 0
        ):
            return
        context = RegroupContext(
            round_index=round_index,
            now_s=self.runtime.now,
            dynamics=self.dynamics,
            abort_counts=self._consume_abort_counts(),
        )
        new_groups = policy.regroup([list(g) for g in self.groups], context)
        validate_groups(new_groups, self.num_clients)
        if len(new_groups) != self.num_groups:
            raise ValueError(
                f"regroup policy {policy.name!r} returned {len(new_groups)} "
                f"groups for {self.num_groups} (bandwidth shares are per-group)"
            )
        changed = new_groups != self.groups
        self.groups = [list(g) for g in new_groups]
        self.recorder.record_regroup(
            time_s=self.runtime.now,
            round_index=round_index,
            policy=policy.name,
            groups=self.groups,
            changed=changed,
        )

    # ------------------------------------------------------------------
    # round
    # ------------------------------------------------------------------
    def _run_round(self, round_index: int) -> list[Stage]:
        self._maybe_regroup(round_index)
        pricing = self._pricing
        client_model_bytes = pricing.client_model_nbytes(self.cut_layer)
        participants = set(self._round_participants())

        # ------------------------------------------------------------------
        # Phase 1 (parent thread, protocol order): draw everything that
        # consumes shared RNG streams — failure injection, per-client data
        # batches, and channel-fading demand realizations — and package
        # each surviving group's work as an independent task.  Groups share
        # no training state within a round, so the tasks can then run on
        # any executor backend with bitwise-identical results.
        # ------------------------------------------------------------------
        training = Stage("group_training")
        tasks: list[GroupTask] = []

        for g, all_members in enumerate(self.groups):
            track = f"group-{g}"
            bandwidth = self.bandwidth_shares[g]

            # Population dynamics first (churn windows / participation),
            # then per-round failure injection: unavailable clients drop
            # out of this round's relay; the model hops past them.
            present = [c for c in all_members if c in participants]
            members = self._inject_failures(present)
            if not members:
                continue  # whole group lost this round

            activities, batches = self._group_pipeline(
                members, bandwidth, client_model_bytes
            )
            training.extend(track, activities)

            tasks.append(
                GroupTask(
                    index=g,
                    members=list(members),
                    batches=batches,
                    client_state=self._global_client_state,
                    server_state=self._global_server_state,
                    weight=float(
                        sum(len(self.client_datasets[c]) for c in members)
                    ),
                )
            )

        # ------------------------------------------------------------------
        # Phase 2: run the M group pipelines on the configured executor
        # (each worker trains its own SplitModel replica from the global
        # halves — the M edge replicas of §II, now genuinely concurrent).
        # ------------------------------------------------------------------
        results = run_group_tasks(
            tasks, self.executor, self.split, SplitHyperParams.from_config(self.config)
        )

        participants = sum(r.num_members for r in results)
        total_loss = sum(r.loss_sum for r in results)
        self._last_train_loss = (
            total_loss / participants if participants else float("nan")
        )

        # Step 3 (aggregation): FedAvg both halves across groups.  When
        # failure injection wiped out every group, the round is a no-op
        # and the previous global model carries over.
        aggregation = Stage("aggregation")
        if results:
            group_weights = [r.weight for r in results]
            self._global_client_state = fedavg(
                [r.client_state for r in results], group_weights
            )
            self._global_server_state = fedavg(
                [r.server_state for r in results], group_weights
            )
            # fedavg allocates fresh arrays and the globals are only read
            # afterwards, so the halves can adopt them without re-copying.
            self.split.client.load_state_dict(self._global_client_state, copy=False)
            self.split.server.load_state_dict(self._global_server_state, copy=False)
            aggregation.add(
                "edge-server",
                Activity(
                    pricing.aggregation_demand(
                        len(results), self.model.num_parameters()
                    ),
                    "aggregation",
                    "edge-server",
                ),
            )

        return [training, aggregation]

    # ------------------------------------------------------------------
    # shared round plumbing (sync stages and async unit pipelines)
    # ------------------------------------------------------------------
    def _inject_failures(self, present: list[int]) -> list[int]:
        """Per-round failure injection over the surviving members."""
        if self.failure_rate <= 0.0:
            return list(present)
        members = [
            c for c in present if self._failure_rng.random() >= self.failure_rate
        ]
        self.skipped_clients_total += len(present) - len(members)
        return members

    def _group_pipeline(
        self, members: list[int], bandwidth: float, client_model_bytes: int
    ) -> tuple[list[Activity], list[list[tuple]]]:
        """One group's relay as (activities, pre-sampled batches).

        Draw order is the protocol order (downlink → per-member batches
        and split-step fading → relay/upload), shared verbatim by the
        barriered stage construction and the async unit pipelines so the
        fading and loader streams replay identically.
        """
        pricing = self._pricing
        # A lossy transport shrinks every model hop to the codec's wire
        # size and brackets it with encode/decode compute on the owning
        # devices; the identity codec changes nothing (bitwise-pinned).
        lossy = pricing.codec.lossy
        wire_bytes = pricing.model_wire_nbytes(client_model_bytes)
        scalars = pricing.model_scalars(client_model_bytes) if lossy else 0
        activities: list[Activity] = []
        batches: list[list[tuple]] = []
        for position, client in enumerate(members):
            if position == 0:
                # Step 1 (distribution): AP → first client of the group.
                if lossy:
                    activities.append(
                        Activity(
                            pricing.server_encode_demand(scalars),
                            "encode",
                            "edge-server",
                            detail=f"model for client-{client}",
                        )
                    )
                activities.append(
                    Activity(
                        pricing.downlink_model_demand(
                            client, wire_bytes, bandwidth
                        ),
                        "model_distribution",
                        f"client-{client}",
                        nbytes=wire_bytes,
                    )
                )
                if lossy:
                    activities.append(
                        Activity(
                            pricing.client_decode_demand(client, scalars),
                            "decode",
                            f"client-{client}",
                            detail="model",
                        )
                    )
            batches.append(
                [
                    self.client_loaders[client].sample_batch()
                    for _ in range(self.config.local_steps)
                ]
            )
            activities.extend(
                price_local_round(
                    client,
                    self.cut_layer,
                    self.config.local_steps,
                    pricing,
                    bandwidth,
                )
            )
            if position < len(members) - 1:
                # Step 2.3 (sharing): relay to the next client via AP.
                nxt = members[position + 1]
                if lossy:
                    activities.append(
                        Activity(
                            pricing.client_encode_demand(client, scalars),
                            "encode",
                            f"client-{client}",
                            detail="relay model",
                        )
                    )
                activities.append(
                    Activity(
                        pricing.relay_model_demand(
                            client,
                            nxt,
                            wire_bytes,
                            bandwidth,
                        ),
                        "model_relay",
                        f"client-{client}",
                        nbytes=2 * wire_bytes,
                    )
                )
                if lossy:
                    activities.append(
                        Activity(
                            pricing.client_decode_demand(nxt, scalars),
                            "decode",
                            f"client-{nxt}",
                            detail="relay model",
                        )
                    )
            else:
                # Last client returns the client-side half to the AP.
                if lossy:
                    activities.append(
                        Activity(
                            pricing.client_encode_demand(client, scalars),
                            "encode",
                            f"client-{client}",
                            detail="model upload",
                        )
                    )
                activities.append(
                    Activity(
                        pricing.uplink_model_demand(
                            client, wire_bytes, bandwidth
                        ),
                        "model_upload",
                        f"client-{client}",
                        nbytes=wire_bytes,
                    )
                )
                if lossy:
                    activities.append(
                        Activity(
                            pricing.server_decode_demand(scalars),
                            "decode",
                            "edge-server",
                            detail=f"model from client-{client}",
                        )
                    )
        return activities, batches

    # ------------------------------------------------------------------
    # asynchronous aggregation (barrier-free policies)
    # ------------------------------------------------------------------
    def _async_units(self) -> list[int]:
        return list(range(self.num_groups))

    def _async_unit_weight(self, unit: int) -> float:
        return float(sum(len(self.client_datasets[c]) for c in self.groups[unit]))

    def _async_unit_round(
        self, unit: int, unit_round: int
    ) -> "UnitRoundWork | RetryAt":
        resolved = self._async_unit_dynamics(self.groups[unit])
        if isinstance(resolved, RetryAt):
            return resolved
        present, slowdowns = resolved
        members = self._inject_failures(present)
        if not members:
            # Whole group lost this window: the round counts for progress
            # (the lag gate must not deadlock) but commits nothing.
            return UnitRoundWork(activities=[], payload=None, weight=0.0)

        activities, batches = self._group_pipeline(
            members,
            self.bandwidth_shares[unit],
            self._pricing.client_model_nbytes(self.cut_layer),
        )
        # Train against the *current* mixed global snapshot.  Async unit
        # rounds are serialized by the DES event loop, so the group
        # trains directly on the scheme's split model with explicit state
        # reload (the serial-executor path) on every backend.
        task = GroupTask(
            index=unit,
            members=list(members),
            batches=batches,
            client_state=self._global_client_state,
            server_state=self._global_server_state,
            weight=float(sum(len(self.client_datasets[c]) for c in members)),
            split=self.split,
            private_replica=False,
        )
        result = train_split_group(task, SplitHyperParams.from_config(self.config))
        activities.append(
            Activity(
                self._pricing.aggregation_demand(2, self.model.num_parameters()),
                "aggregation",
                "edge-server",
                detail=f"async merge group-{unit}",
            )
        )
        return UnitRoundWork(
            activities=activities,
            payload=(result.client_state, result.server_state),
            weight=result.weight,
            slowdowns=slowdowns or None,
            loss_sum=result.loss_sum,
            num_contributors=result.num_members,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def server_side_replicas(self) -> int:
        """Number of server-side model replicas the edge must host (= M)."""
        return self.num_groups

    def server_storage_bytes(self) -> int:
        """Edge storage for the replicas (the §I argument vs SplitFed)."""
        if not self._pricing.enabled:
            return 0
        return self.num_groups * self.profile.server_model_bytes(self.cut_layer)
