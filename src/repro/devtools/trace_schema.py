"""Canonical schema of the ``--trace-out`` JSONL export.

This module is the *single* source of truth for every trace-row type
and its exact field set.  Three previously independent copies now all
import from here:

* the recorder (:mod:`repro.sim.trace`) validates the rows it renders,
* the CLI exporter (``repro.cli._export_trace``) validates every row it
  writes,
* the replay parsers (:mod:`repro.experiments.catalog` meta reader,
  :class:`repro.experiments.availability.TraceReplay`) validate the
  rows they consume,
* the schema-pin tests (``tests/test_cli.py``) assert exported files
  against it.

On top of the runtime checks, lint rule ``TRC001``
(:mod:`repro.devtools.rules`) statically cross-checks every trace-row
dict literal in the source tree against this registry, so a field added
in only one place fails either the lint or the pin suite.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "TRACE_SCHEMAS",
    "ROW_TYPES",
    "REPLAY_META_REQUIRED",
    "REPLAY_AVAILABILITY_REQUIRED",
    "fields_of",
    "validate_row",
]

#: exact key sets of every ``--trace-out`` JSONL record type
TRACE_SCHEMAS: dict[str, frozenset[str]] = {
    "meta": frozenset({
        "type", "scheme", "scenario", "seed", "rounds", "medium", "transport",
        "aggregation", "failure_model", "grouping", "regroup", "regroup_every",
        "num_clients", "num_groups", "dynamics", "total_latency_s", "events",
        "aborts", "retries", "regroups",
    }),
    "availability": frozenset({"type", "client", "toggles"}),
    "round_conditions": frozenset({
        "type", "round", "time_s", "available", "participants", "slowdowns",
    }),
    "activity": frozenset({
        "type", "start_s", "end_s", "duration_s", "phase", "actor", "round",
        "nbytes", "detail",
    }),
    "activity_abort": frozenset({
        "type", "start_s", "time_s", "phase", "actor", "round", "client",
        "resolution",
    }),
    "retry": frozenset({"type", "time_s", "actor", "round", "client", "attempt"}),
    "regroup": frozenset({"type", "time_s", "round", "policy", "groups", "changed"}),
    "round_timing": frozenset({
        "type", "round", "des_s", "analytic_s", "lower_bound_s",
    }),
    "aggregation_update": frozenset({
        "type", "unit", "unit_round", "time_s", "staleness", "alpha", "weight",
    }),
    "energy": frozenset({
        "type", "actor", "tx_j", "rx_j", "compute_j", "idle_j", "total_j",
    }),
    "energy_summary": frozenset({
        "type", "tx_j", "rx_j", "compute_j", "idle_j", "total_j",
    }),
}

#: every registered row type, in a stable order
ROW_TYPES: tuple[str, ...] = tuple(sorted(TRACE_SCHEMAS))

#: ``meta`` fields the trace-replay scenario builder actually reads —
#: a recorded trace missing one of these cannot be replayed faithfully.
REPLAY_META_REQUIRED: frozenset[str] = frozenset(
    {"type", "scheme", "scenario", "seed", "num_clients", "num_groups", "dynamics"}
)

#: ``availability`` fields :class:`TraceReplay` reads per client row.
REPLAY_AVAILABILITY_REQUIRED: frozenset[str] = frozenset(
    {"type", "client", "toggles"}
)


def fields_of(row_type: str) -> frozenset[str]:
    """The exact field set of ``row_type`` (raises on unknown types)."""
    try:
        return TRACE_SCHEMAS[row_type]
    except KeyError:
        raise ValueError(
            f"unknown trace row type {row_type!r}; expected one of {ROW_TYPES}"
        ) from None


def validate_row(row: Mapping[str, Any]) -> None:
    """Check one rendered trace row against the registry.

    Raises ``ValueError`` when the row's ``type`` is unregistered or its
    key set drifts from the canonical schema — the runtime counterpart
    of lint rule TRC001.
    """
    row_type = row.get("type")
    if not isinstance(row_type, str):
        raise ValueError(f"trace row has no string 'type' field: {dict(row)!r}")
    expected = fields_of(row_type)
    got = frozenset(row)
    if got != expected:
        missing = sorted(expected - got)
        extra = sorted(got - expected)
        raise ValueError(
            f"trace row {row_type!r} drifts from repro.devtools.trace_schema: "
            f"missing={missing} extra={extra}"
        )
