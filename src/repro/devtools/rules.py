"""Lint-rule catalog for the determinism contract.

Every rule is a small AST pass with an id, a one-line title and a
``doc`` paragraph explaining *what invariant it protects* — the same
text ``python -m repro.devtools.lint --list-rules`` and the README rule
catalog render.  Rules are deliberately repo-specific: they encode the
conventions the golden-history / trace-replay suites rely on but can
only spot-check dynamically.

Path scoping: each rule declares where it applies via ``applies(path)``
over the *posix-normalized* path the engine was handed.  ``src/`` is
library code, ``tests/`` is the suite, ``benchmarks/`` is exempt from
the wall-clock rule (measuring wall time is its job).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.devtools.trace_schema import TRACE_SCHEMAS

__all__ = ["Finding", "Rule", "ALL_RULES", "rule_by_id"]


@dataclass(frozen=True)
class Finding:
    """One lint finding, addressable by ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _parts(path: str) -> tuple[str, ...]:
    return tuple(p for p in path.replace("\\", "/").split("/") if p not in (".", ""))


def _is_library(path: str) -> bool:
    """Library code: anything under ``src/`` (and not under ``tests/``)."""
    parts = _parts(path)
    return "src" in parts and "tests" not in parts


def _is_benchmarks(path: str) -> bool:
    return "benchmarks" in _parts(path)


def _in_ordered_packages(path: str) -> bool:
    p = path.replace("\\", "/")
    return any(
        seg in p for seg in ("repro/sim/", "repro/schemes/", "repro/experiments/")
    )


class Rule:
    """Base class: subclasses set ``rule_id``/``title``/``doc`` and
    implement ``check``; ``applies`` defaults to every path."""

    rule_id: str = ""
    title: str = ""
    doc: str = ""

    def applies(self, path: str) -> bool:
        return True

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _call_name(node: ast.Call) -> str:
    """Trailing name of the called object (``a.b.c()`` -> ``c``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class SeedlessRngRule(Rule):
    rule_id = "DET001"
    title = "seedless RNG construction in library code"
    doc = (
        "Flags `np.random.default_rng()` / `default_rng(None)` and "
        "`new_rng()` / `new_rng(None)` calls in library code (src/, "
        "benchmarks/). A seedless generator draws from OS entropy and "
        "silently unpins every downstream run — the exact failure mode "
        "the golden-history suites cannot catch, because each CI run "
        "would re-roll the entropy. Pass an explicit seed or an existing "
        "Generator; `new_rng(seed=None)` as a *forwarded parameter* is "
        "fine, only the literal-None / empty-call forms are flagged."
    )

    def applies(self, path: str) -> bool:
        return _is_library(path) or _is_benchmarks(path)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in ("default_rng", "new_rng"):
                continue
            seedless = (not node.args and not node.keywords) or (
                len(node.args) == 1 and not node.keywords and _is_none(node.args[0])
            )
            if not seedless:
                # also catch the keyword spelling: seed=None as a literal
                seedless = (
                    not node.args
                    and len(node.keywords) == 1
                    and node.keywords[0].arg == "seed"
                    and node.keywords[0].value is not None
                    and _is_none(node.keywords[0].value)
                )
            if seedless:
                yield self.finding(
                    path,
                    node,
                    f"seedless {name}() call — pass an explicit seed or "
                    f"Generator (OS entropy unpins reproducibility)",
                )


#: wall-clock attributes of the stdlib ``time`` module
_TIME_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns",
})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    rule_id = "DET002"
    title = "wall-clock read outside benchmarks/"
    doc = (
        "Flags reads of the host clock — `time.time`, `time.perf_counter`, "
        "`time.monotonic`, `datetime.now()` and friends — anywhere except "
        "benchmarks/. Simulation code must derive *all* timing from the "
        "DES clock (`Environment.now`); a wall-clock read makes behavior "
        "depend on host speed and destroys bitwise trace replay. "
        "Benchmarks are exempt: measuring wall time is their job."
    )

    def applies(self, path: str) -> bool:
        return not _is_benchmarks(path)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        time_aliases: set[str] = set()
        datetime_aliases: set[str] = set()
        func_aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_ATTRS:
                            func_aliases[alias.asname or alias.name] = (
                                f"time.{alias.name}"
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_aliases.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in time_aliases
                    and node.attr in _TIME_ATTRS
                ):
                    yield self.finding(
                        path,
                        node,
                        f"wall-clock read time.{node.attr} — use the DES clock "
                        f"(Environment.now); only benchmarks/ may read host time",
                    )
                elif node.attr in _DATETIME_ATTRS and self._is_datetime_base(
                    base, datetime_aliases
                ):
                    yield self.finding(
                        path,
                        node,
                        f"wall-clock read datetime .{node.attr} — simulation "
                        f"output must not depend on the host date",
                    )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in func_aliases
            ):
                yield self.finding(
                    path,
                    node,
                    f"wall-clock read {func_aliases[node.id]} — use the DES "
                    f"clock (Environment.now); only benchmarks/ may read host time",
                )

    @staticmethod
    def _is_datetime_base(base: ast.expr, datetime_aliases: set[str]) -> bool:
        if isinstance(base, ast.Name):
            return base.id in datetime_aliases
        if isinstance(base, ast.Attribute):  # datetime.datetime.now
            return (
                isinstance(base.value, ast.Name)
                and base.value.id in datetime_aliases
                and base.attr in ("datetime", "date")
            )
        return False


#: wrappers that preserve the iteration order of their operand
_ORDER_PRESERVING_WRAPPERS = frozenset({"enumerate", "list", "tuple", "reversed"})


class SetIterationRule(Rule):
    rule_id = "DET003"
    title = "hash-ordered set iteration in simulation packages"
    doc = (
        "Flags `for`-loops and comprehensions that iterate a `set`/"
        "`frozenset` literal or `set(...)`/`frozenset(...)` call inside "
        "repro.sim / repro.schemes / repro.experiments. Set iteration "
        "order follows the hash seed: an RNG draw or event submission "
        "inside such a loop consumes the stream in a host-dependent "
        "order (the PR 9 order-dependent-sampling bug class). Wrap the "
        "set in `sorted(...)` to fix; `sorted(set(...))` is not flagged."
    )

    def applies(self, path: str) -> bool:
        return _in_ordered_packages(path)

    @staticmethod
    def _unwrap(node: ast.expr) -> ast.expr:
        while (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_PRESERVING_WRAPPERS
            and node.args
        ):
            node = node.args[0]
        return node

    @classmethod
    def _is_set_expr(cls, node: ast.expr) -> bool:
        node = cls._unwrap(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield self.finding(
                        path,
                        it,
                        "iteration over a set literal/set() call — hash order "
                        "is host-dependent; wrap in sorted(...) for a "
                        "deterministic order",
                    )


class StdlibRandomRule(Rule):
    rule_id = "DET004"
    title = "stdlib random usage"
    doc = (
        "Flags `import random` / `from random import ...`. The stdlib "
        "module is one hidden *global* stream: any import can be seeded "
        "or drawn from by unrelated code, so two call sites silently "
        "couple. All randomness must flow through explicit "
        "`numpy.random.Generator` objects (`repro.utils.rng.new_rng`, "
        "`spawn_rngs`)."
    )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            path,
                            node,
                            "stdlib random imported — use an explicit "
                            "numpy Generator (repro.utils.rng) instead of "
                            "the hidden global stream",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    path,
                    node,
                    "stdlib random imported — use an explicit numpy "
                    "Generator (repro.utils.rng) instead of the hidden "
                    "global stream",
                )


class BankersRoundingRule(Rule):
    rule_id = "DET005"
    title = "int(round(...)) banker's rounding"
    doc = (
        "Flags the `int(round(x))` composition in library code. Python's "
        "`round` uses banker's rounding (ties to even): `round(2.5) == 2`. "
        "In sampling paths this turns an innocent-looking half-way case "
        "into a parity-dependent count — PR 9's participation sampler "
        "drew 2 of 5 clients at rate 0.5 because of exactly this. Use an "
        "explicit direction instead: `floor(x + 0.5)` (half away from "
        "zero for non-negative x), `math.ceil`, or integer arithmetic."
    )

    def applies(self, path: str) -> bool:
        return _is_library(path)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "int"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Call)
                and isinstance(node.args[0].func, ast.Name)
                and node.args[0].func.id == "round"
            ):
                yield self.finding(
                    path,
                    node,
                    "int(round(...)) uses banker's rounding (ties to even) — "
                    "pick an explicit direction: int(x + 0.5), math.floor/"
                    "ceil, or integer arithmetic",
                )


class SimApiMisuseRule(Rule):
    rule_id = "SIM001"
    title = "Environment/Event API misuse"
    doc = (
        "Straight-line heuristic for the two DES-engine misuse patterns "
        "PR 7 hardened at runtime: (a) `.succeed(...)` on an event that "
        "an earlier statement in the same function cancelled — "
        "`Event.succeed` raises RuntimeError on a cancelled event; "
        "(b) `env.cancel(e)` on an event created via `env.event()` in "
        "the same function and never scheduled, succeeded or handed to "
        "other code in between — a silent no-op since cancel ignores "
        "never-scheduled events. The analysis is per-function and "
        "order-of-appearance (branches look sequential); code that "
        "deliberately exercises the runtime guards should suppress with "
        "a reason."
    )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(node, path)

    def _check_function(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, path: str
    ) -> Iterator[Finding]:
        nodes = sorted(
            self._own_nodes(func),
            key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)),
        )
        cancelled: set[str] = set()
        fresh_events: dict[str, ast.AST] = {}
        for node in nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        cancelled = {
                            k for k in cancelled
                            if k != target.id and not k.startswith(target.id + ".")
                        }
                        fresh_events.pop(target.id, None)
                        if (
                            isinstance(node.value, ast.Call)
                            and _call_name(node.value) == "event"
                            and not node.value.args
                        ):
                            fresh_events[target.id] = node
                continue
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "cancel" and isinstance(node.func, ast.Attribute):
                key = None
                if node.args and isinstance(
                    node.args[0], (ast.Name, ast.Attribute)
                ):
                    key = ast.unparse(node.args[0])
                elif not node.args:
                    key = ast.unparse(node.func.value)
                if key is not None:
                    cancelled.add(key)
                    if key in fresh_events:
                        yield self.finding(
                            path,
                            node,
                            f"cancel of never-scheduled event {key!r} is a "
                            f"silent no-op — schedule/succeed it first or "
                            f"drop the cancel",
                        )
                continue
            if name == "succeed" and isinstance(node.func, ast.Attribute):
                key = ast.unparse(node.func.value)
                if key in cancelled:
                    yield self.finding(
                        path,
                        node,
                        f"succeed() on {key!r} after an earlier cancel in the "
                        f"same function — Event.succeed raises RuntimeError "
                        f"on a cancelled event",
                    )
            # any other use of a fresh event (passed to a call, yielded
            # via a generator expression, ...) may schedule it elsewhere:
            # drop it from the never-scheduled set.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id in fresh_events:
                        if name != "cancel":
                            fresh_events.pop(sub.id, None)

    @staticmethod
    def _own_nodes(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterable[ast.AST]:
        """All nodes of ``func``'s body, excluding nested function scopes."""

        def visit(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                yield child
                yield from visit(child)

        for stmt in func.body:
            yield stmt
            yield from visit(stmt)


class TraceSchemaRule(Rule):
    rule_id = "TRC001"
    title = "trace-row literal drifts from the canonical schema"
    doc = (
        "Cross-checks every dict literal carrying a constant `\"type\"` "
        "key against `repro.devtools.trace_schema.TRACE_SCHEMAS`. A "
        "registered row type whose literal key set differs from the "
        "registry (field added in only one place) is flagged, as is an "
        "unregistered row type in any module that imports the registry "
        "(i.e. declared trace emitters/parsers). Together with the "
        "runtime `validate_row` calls and the schema-pin tests this "
        "makes the JSONL schema single-sourced."
    )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        imports_registry = any(
            isinstance(node, (ast.Import, ast.ImportFrom))
            and "devtools.trace_schema" in (
                getattr(node, "module", None) or ""
            ) + " ".join(a.name for a in node.names)
            for node in ast.walk(tree)
        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Dict):
                continue
            keys: list[str] = []
            constant = True
            type_value: str | None = None
            for key_node, value_node in zip(node.keys, node.values):
                if not (
                    isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)
                ):
                    constant = False
                    break
                keys.append(key_node.value)
                if key_node.value == "type":
                    if (
                        isinstance(value_node, ast.Constant)
                        and isinstance(value_node.value, str)
                    ):
                        type_value = value_node.value
            if not constant or type_value is None:
                continue
            if type_value in TRACE_SCHEMAS:
                expected = TRACE_SCHEMAS[type_value]
                got = frozenset(keys)
                if got != expected:
                    missing = sorted(expected - got)
                    extra = sorted(got - expected)
                    yield self.finding(
                        path,
                        node,
                        f"trace row {type_value!r} drifts from "
                        f"repro.devtools.trace_schema: missing={missing} "
                        f"extra={extra}",
                    )
            elif imports_registry:
                yield self.finding(
                    path,
                    node,
                    f"unregistered trace row type {type_value!r} — add it to "
                    f"repro.devtools.trace_schema.TRACE_SCHEMAS",
                )


class UntypedDefRule(Rule):
    rule_id = "TYP001"
    title = "missing annotations on a library function"
    doc = (
        "Requires every function in src/repro to annotate all parameters "
        "and its return type — the locally-enforceable core of the "
        "`mypy --strict` gate (CI runs the full checker; this rule keeps "
        "the contract machine-checked even where mypy is unavailable). "
        "`self`/`cls` are exempt, and `__init__`/`__post_init__` may omit "
        "the `-> None`."
    )

    def applies(self, path: str) -> bool:
        return _is_library(path)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            unannotated = [
                a.arg
                for a in args.posonlyargs + args.args + args.kwonlyargs
                if a.annotation is None and a.arg not in ("self", "cls")
            ]
            if args.vararg is not None and args.vararg.annotation is None:
                unannotated.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                unannotated.append("**" + args.kwarg.arg)
            missing_return = node.returns is None and node.name not in (
                "__init__",
                "__post_init__",
            )
            if unannotated or missing_return:
                bits = []
                if unannotated:
                    bits.append(f"unannotated parameters: {', '.join(unannotated)}")
                if missing_return:
                    bits.append("missing return annotation")
                yield self.finding(
                    path,
                    node,
                    f"function {node.name!r} — {'; '.join(bits)}",
                )


#: the full catalog, in reporting order
ALL_RULES: tuple[Rule, ...] = (
    SeedlessRngRule(),
    WallClockRule(),
    SetIterationRule(),
    StdlibRandomRule(),
    BankersRoundingRule(),
    SimApiMisuseRule(),
    TraceSchemaRule(),
    UntypedDefRule(),
)


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.rule_id == rule_id:
            return rule
    raise KeyError(rule_id)
