"""AST-based determinism lint engine.

Usage::

    python -m repro.devtools.lint src/ tests/            # human output
    python -m repro.devtools.lint src/ --format json     # CI annotation
    python -m repro.devtools.lint --list-rules           # rule catalog

Exit status is 0 when no findings survive suppression, 1 otherwise
(2 for usage errors).  Suppressions are per-line comments with a
**mandatory reason**::

    self._rng = new_rng(None)  # repro: disable=DET001 (documented entropy escape hatch)

A suppression comment on a line of its own applies to the next line.
Multiple rules separate with commas: ``# repro: disable=DET002,DET004
(reason)``.  A suppression without a parenthesized non-empty reason, or
naming an unknown rule, is itself a finding (SUP001) — the suppression
inventory stays auditable.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.devtools.rules import ALL_RULES, Finding, Rule

__all__ = ["LintReport", "Suppression", "lint_paths", "lint_source", "main"]

#: matches the suppression comment form; the parenthesized reason is mandatory
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*\((?P<reason>[^()]*)\))?\s*$"
)

_KNOWN_RULE_IDS = frozenset(rule.rule_id for rule in ALL_RULES) | {"PAR001"}


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: disable`` comment."""

    path: str
    line: int
    rules: tuple[str, ...]
    reason: str
    #: the line the suppression applies to (next line for standalone comments)
    target_line: int


@dataclass
class LintReport:
    """Engine output: surviving findings plus the suppression inventory."""

    findings: list[Finding]
    suppressions: list[Suppression]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> str:
        payload = {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [asdict(f) for f in self.findings],
            "counts": self.counts(),
            "suppressions": [asdict(s) for s in self.suppressions],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out


def _parse_suppressions(
    source: str, path: str
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Parse suppression comments; malformed ones become SUP001 findings.

    Returns ``{target_line: Suppression}`` for well-formed suppressions.
    """
    by_target: dict[int, Suppression] = {}
    problems: list[Finding] = []
    comments: list[tuple[int, int, str, bool]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                lineno, col = tok.start
                standalone = not tok.line[:col].strip()
                comments.append((lineno, col, tok.string, standalone))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files surface as PAR001 from the AST pass.
        return {}, []
    for lineno, col, comment, standalone in comments:
        if "repro:" not in comment or "disable" not in comment:
            continue
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            problems.append(
                Finding(
                    rule="SUP001",
                    path=path,
                    line=lineno,
                    col=col,
                    message=(
                        "malformed suppression — expected "
                        "'# repro: disable=RULE (reason)'"
                    ),
                )
            )
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = (match.group("reason") or "").strip()
        unknown = [r for r in rules if r not in _KNOWN_RULE_IDS]
        if not reason:
            problems.append(
                Finding(
                    rule="SUP001",
                    path=path,
                    line=lineno,
                    col=col,
                    message=(
                        f"suppression of {', '.join(rules) or '?'} has no "
                        f"reason — a parenthesized non-empty reason is "
                        f"mandatory"
                    ),
                )
            )
            continue
        if unknown:
            problems.append(
                Finding(
                    rule="SUP001",
                    path=path,
                    line=lineno,
                    col=col,
                    message=f"suppression names unknown rule(s): {', '.join(unknown)}",
                )
            )
            continue
        target = lineno + 1 if standalone else lineno
        by_target[target] = Suppression(
            path=path, line=lineno, rules=rules, reason=reason, target_line=target
        )
    return by_target, problems


def lint_source(
    source: str, path: str, rules: Sequence[Rule] = ALL_RULES
) -> LintReport:
    """Lint one in-memory module (the unit the fixture tests drive)."""
    suppressions, problems = _parse_suppressions(source, path)
    findings: list[Finding] = list(problems)
    used: set[int] = set()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append(
            Finding(
                rule="PAR001",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        )
        return LintReport(findings=findings, suppressions=[], files_checked=1)
    for rule in rules:
        if not rule.applies(path):
            continue
        for finding in rule.check(tree, path):
            sup = suppressions.get(finding.line)
            if sup is not None and finding.rule in sup.rules:
                used.add(sup.target_line)
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(
        findings=findings,
        suppressions=sorted(suppressions.values(), key=lambda s: s.line),
        files_checked=1,
    )


def _iter_py_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                parts = sub.parts
                if "__pycache__" in parts or any(
                    part.startswith(".") for part in parts
                ):
                    continue
                yield sub
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Sequence[str], rules: Sequence[Rule] = ALL_RULES
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    suppressions: list[Suppression] = []
    checked = 0
    for file_path in _iter_py_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding(
                    rule="PAR001",
                    path=str(file_path),
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        report = lint_source(source, file_path.as_posix(), rules)
        findings.extend(report.findings)
        suppressions.extend(report.suppressions)
        checked += 1
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(
        findings=findings, suppressions=suppressions, files_checked=checked
    )


def _render_catalog() -> str:
    lines = ["Determinism lint rule catalog", "=" * 29, ""]
    for rule in ALL_RULES:
        lines.append(f"{rule.rule_id}: {rule.title}")
        lines.append("-" * len(f"{rule.rule_id}: {rule.title}"))
        lines.append(rule.doc)
        lines.append("")
    lines.append("SUP001: suppression hygiene")
    lines.append("-" * len("SUP001: suppression hygiene"))
    lines.append(
        "Every '# repro: disable=RULE' comment must carry a parenthesized "
        "non-empty reason and name only known rules; violations are "
        "findings themselves and cannot be suppressed."
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST-based determinism lints for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/ tests/)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is machine-readable for CI annotation)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the report (in the chosen format) to FILE",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog with per-rule documentation and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_catalog())
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.devtools.lint src/ tests/)")

    report = lint_paths(args.paths)
    if args.format == "json":
        rendered = report.to_json()
    else:
        lines = [f.render() for f in report.findings]
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_checked} "
            f"file(s); {len(report.suppressions)} suppression(s) in force"
        )
        rendered = "\n".join(lines + [summary]) if lines else summary
    print(rendered)
    if args.output:
        Path(args.output).write_text(
            rendered if rendered.endswith("\n") else rendered + "\n",
            encoding="utf-8",
        )
    return 0 if report.ok else 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... --list-rules | head`
        sys.exit(0)
