"""Repository development tooling: determinism lints and schema registry.

``repro.devtools`` hosts the static-analysis layer that machine-checks
the reproducibility contract the golden-history suites only spot-check:

* :mod:`repro.devtools.lint` — AST-based lint engine
  (``python -m repro.devtools.lint src/ tests/``) with per-rule docs,
  ``# repro: disable=RULE (reason)`` suppressions and JSON output.
* :mod:`repro.devtools.rules` — the rule catalog (DET/SIM/TRC/TYP).
* :mod:`repro.devtools.trace_schema` — the single canonical definition
  of every ``--trace-out`` JSONL row type, imported by the recorder,
  the CLI exporter, the replay parsers and the schema-pin tests.

The package deliberately has no dependencies on the simulation layers,
so importing it from anywhere inside ``repro`` can never cycle.
"""

from __future__ import annotations

__all__: list[str] = []
