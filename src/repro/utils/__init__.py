"""Shared utilities: seeded RNG management, validation helpers, logging."""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_choices,
)

__all__ = [
    "RngMixin",
    "new_rng",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_choices",
]
