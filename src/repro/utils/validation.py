"""Small argument-validation helpers used across the library.

These raise ``ValueError`` with a consistent message format naming the
offending parameter, so configuration errors surface at construction time
rather than as shape errors deep inside a simulation.
"""

from __future__ import annotations

from collections.abc import Collection
from typing import Any

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_choices",
]


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1``; return the value."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_choices(name: str, value: Any, choices: Collection[Any]) -> Any:
    """Raise ``ValueError`` unless ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(
            f"{name} must be one of {sorted(map(str, choices))}, got {value!r}"
        )
    return value
