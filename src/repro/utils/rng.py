"""Deterministic random-number-generator helpers.

Every stochastic component in the library (dataset synthesis, channel
fading, client sampling, weight init) takes an explicit seed or
``numpy.random.Generator`` so that experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["new_rng", "spawn_rngs", "RngMixin"]


def new_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts an integer seed, an existing generator (returned unchanged), or
    ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    Uses ``SeedSequence.spawn`` so children are statistically independent
    and stable across runs for a fixed ``seed``.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RngMixin:
    """Mixin giving a class a lazily-created ``self.rng`` generator.

    Subclasses call ``self._init_rng(seed)`` in ``__init__``.
    """

    _rng: np.random.Generator

    def _init_rng(self, seed: int | np.random.Generator | None) -> None:
        self._rng = new_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The component's private random generator."""
        return self._rng

    def reseed(self, seed: int | None) -> None:
        """Replace the generator (e.g. between repeated experiment trials)."""
        self._rng = new_rng(seed)
