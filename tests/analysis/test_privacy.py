"""Privacy-analysis tests: distance correlation math and inversion attack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.privacy import (
    PrivacyReport,
    distance_correlation,
    reconstruction_attack,
    sweep_cut_privacy,
)
from repro.experiments.scenario import fast_scenario
from repro.nn.split import split_model


class TestDistanceCorrelation:
    def test_identical_data_is_one(self):
        x = np.random.default_rng(0).normal(size=(30, 5))
        assert distance_correlation(x, x) == pytest.approx(1.0)

    def test_linear_map_is_one(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(40, 3))
        assert distance_correlation(x, 2.5 * x + 1.0) == pytest.approx(1.0, abs=1e-9)

    def test_independent_data_near_zero(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 4))
        y = rng.normal(size=(200, 4))
        # the biased dCor estimator has noticeable finite-sample floor
        assert distance_correlation(x, y) < 0.35

    def test_nonlinear_dependence_detected(self):
        """dCor (unlike Pearson) catches y = x^2."""
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(300, 1))
        y = x**2
        assert distance_correlation(x, y) > 0.4

    def test_flattens_trailing_dims(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(20, 2, 3))
        assert distance_correlation(x, x.reshape(20, 6)) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            distance_correlation(np.zeros((3, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            distance_correlation(np.zeros((1, 2)), np.zeros((1, 2)))

    def test_constant_input_is_zero(self):
        x = np.ones((10, 3))
        y = np.random.default_rng(0).normal(size=(10, 3))
        assert distance_correlation(x, y) == 0.0


class TestReconstructionAttack:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(0)
        scenario = fast_scenario(with_wireless=False)
        model = scenario.make_model()
        shadow = rng.random((60, 3, 16, 16))
        test = rng.random((12, 3, 16, 16))
        return model, shadow, test

    def test_report_fields(self, setup):
        model, shadow, test = setup
        sm = split_model(model, 1)
        report = reconstruction_attack(
            sm.client, shadow, test, cut_layer=1, steps=50
        )
        assert isinstance(report, PrivacyReport)
        assert report.attack_mse > 0
        assert report.baseline_mse > 0
        assert 0.0 <= report.leakage <= 1.0
        assert 0.0 <= report.distance_corr <= 1.0

    def test_identity_client_leaks_fully(self):
        """If the 'client half' is the identity, a linear decoder inverts
        it (near-)perfectly — the attack's sanity anchor."""
        from repro import nn

        rng = np.random.default_rng(1)
        model = nn.Sequential(nn.Flatten(), nn.Linear(48, 10, seed=0))
        sm = split_model(model, 1)  # client = Flatten only
        shadow = rng.random((300, 3, 4, 4))
        test = rng.random((30, 3, 4, 4))
        report = reconstruction_attack(
            sm.client, shadow, test, hidden=0, steps=800, lr=3e-3
        )
        assert report.leakage > 0.8
        assert report.distance_corr == pytest.approx(1.0, abs=1e-6)

    def test_input_validation(self, setup):
        model, shadow, test = setup
        sm = split_model(model, 1)
        with pytest.raises(ValueError):
            reconstruction_attack(sm.client, shadow[:2], test, steps=5)

    def test_sweep_covers_requested_cuts(self, setup):
        model, shadow, test = setup
        reports = sweep_cut_privacy(model, shadow[:30], test[:6], cuts=[1, 3], steps=20)
        assert [r.cut_layer for r in reports] == [1, 3]

    def test_dcor_decreases_with_depth_on_real_data(self):
        """The model-free leakage proxy shrinks as layers compress."""
        from repro.data.gtsrb import GtsrbConfig, SyntheticGTSRB

        cfg = GtsrbConfig(
            num_classes=5, image_size=16, train_per_class=10, test_per_class=6, seed=0
        )
        train, test = SyntheticGTSRB(cfg).train_test()
        scenario = fast_scenario(with_wireless=False)
        model = scenario.make_model()
        dcors = []
        for cut in (1, 3, 6):
            sm = split_model(model, cut)
            from repro.analysis.privacy import _smash

            smashed = _smash(sm.client, test.images)
            dcors.append(distance_correlation(test.images, smashed))
        assert dcors[0] > dcors[-1]
