"""FedAvg aggregation tests: exactness, weighting, linearity, errors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.core.aggregation import fedavg, uniform_average, weighted_delta
from repro.nn.serialize import pack_state


def make_states(num, seed=0, shape=(3, 2)):
    rng = np.random.default_rng(seed)
    return [
        {"w": rng.normal(size=shape), "b": rng.normal(size=shape[1])} for _ in range(num)
    ]


class TestFedAvg:
    def test_single_state_identity(self):
        (state,) = make_states(1)
        avg = fedavg([state])
        np.testing.assert_allclose(avg["w"], state["w"])

    def test_uniform_average_exact(self):
        states = make_states(3)
        avg = uniform_average(states)
        np.testing.assert_allclose(
            avg["w"], (states[0]["w"] + states[1]["w"] + states[2]["w"]) / 3
        )

    def test_weighted_average_exact(self):
        states = make_states(2)
        avg = fedavg(states, weights=[3.0, 1.0])
        np.testing.assert_allclose(avg["w"], 0.75 * states[0]["w"] + 0.25 * states[1]["w"])

    def test_weights_normalized(self):
        states = make_states(2)
        a = fedavg(states, weights=[3.0, 1.0])
        b = fedavg(states, weights=[300.0, 100.0])
        np.testing.assert_allclose(a["w"], b["w"])

    def test_identical_states_fixed_point(self):
        state = make_states(1)[0]
        avg = fedavg([state, state, state], weights=[1, 5, 2])
        np.testing.assert_allclose(avg["w"], state["w"])

    def test_linearity_via_pack(self):
        """fedavg commutes with flattening: pack(avg) == avg(pack)."""
        states = make_states(4, seed=7)
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        avg = fedavg(states, weights)
        packed = np.stack([pack_state(s) for s in states])
        expected = (weights / weights.sum()) @ packed
        np.testing.assert_allclose(pack_state(avg), expected)

    def test_key_mismatch_raises(self):
        a, b = make_states(2)
        b["extra"] = np.zeros(1)
        with pytest.raises(ValueError):
            fedavg([a, b])

    def test_shape_mismatch_raises(self):
        a, b = make_states(2)
        b["w"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            fedavg([a, b])

    def test_weight_validation(self):
        states = make_states(2)
        with pytest.raises(ValueError):
            fedavg(states, weights=[1.0])
        with pytest.raises(ValueError):
            fedavg(states, weights=[-1.0, 2.0])
        with pytest.raises(ValueError):
            fedavg(states, weights=[0.0, 0.0])
        with pytest.raises(ValueError):
            fedavg([])

    def test_aggregating_model_states_preserves_forward(self):
        """FedAvg of identical model states reproduces the model exactly."""
        model = nn.Sequential(nn.Linear(4, 3, seed=0), nn.ReLU(), nn.Linear(3, 2, seed=1))
        state = model.state_dict()
        model.load_state_dict(fedavg([state, state], weights=[2.0, 5.0]))
        x = np.random.default_rng(0).normal(size=(3, 4))
        from repro.nn.tensor import Tensor

        out1 = model(Tensor(x)).data
        model.load_state_dict(state)
        np.testing.assert_allclose(out1, model(Tensor(x)).data)

    @given(st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_average_within_hull(self, num):
        """Every averaged entry lies inside the participants' min/max hull."""
        states = make_states(num, seed=num)
        avg = fedavg(states)
        stack_w = np.stack([s["w"] for s in states])
        assert np.all(avg["w"] >= stack_w.min(axis=0) - 1e-12)
        assert np.all(avg["w"] <= stack_w.max(axis=0) + 1e-12)


class TestWeightedDelta:
    def test_server_lr_one_equals_fedavg(self):
        states = make_states(3, seed=2)
        base = make_states(1, seed=9)[0]
        np.testing.assert_allclose(
            weighted_delta(base, states, server_lr=1.0)["w"], fedavg(states)["w"]
        )

    def test_server_lr_zero_keeps_base(self):
        states = make_states(3, seed=2)
        base = make_states(1, seed=9)[0]
        np.testing.assert_allclose(weighted_delta(base, states, server_lr=0.0)["w"], base["w"])

    def test_interpolates(self):
        states = make_states(2, seed=4)
        base = make_states(1, seed=5)[0]
        half = weighted_delta(base, states, server_lr=0.5)
        full = fedavg(states)
        np.testing.assert_allclose(half["w"], 0.5 * base["w"] + 0.5 * full["w"])
