"""Grouping strategy tests: partition exactness, balance, cost balancing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import (
    channel_aware_groups,
    compute_balanced_groups,
    contiguous_groups,
    make_groups,
    random_groups,
    validate_groups,
)


class TestContiguous:
    def test_exact_partition_and_order(self):
        groups = contiguous_groups(10, 3)
        validate_groups(groups, 10)
        assert groups[0] == [0, 1, 2, 3]

    def test_divisible(self):
        groups = contiguous_groups(30, 6)
        assert all(len(g) == 5 for g in groups)

    def test_sizes_within_one(self):
        groups = contiguous_groups(11, 3)
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= 1


class TestRandom:
    def test_exact_partition(self):
        groups = random_groups(20, 4, seed=0)
        validate_groups(groups, 20)

    def test_deterministic_per_seed(self):
        assert random_groups(20, 4, seed=1) == random_groups(20, 4, seed=1)

    def test_differs_across_seeds(self):
        assert random_groups(20, 4, seed=1) != random_groups(20, 4, seed=2)


class TestCostBalanced:
    def test_compute_balance_beats_contiguous_on_skewed_fleet(self):
        rng = np.random.default_rng(0)
        flops = rng.lognormal(mean=21, sigma=1.0, size=24)
        balanced = compute_balanced_groups(flops, 4)
        naive = contiguous_groups(24, 4)

        def spread(groups):
            totals = [sum(1.0 / flops[c] for c in g) for g in groups]
            return max(totals) - min(totals)

        assert spread(balanced) <= spread(naive)

    def test_group_sizes_stay_balanced(self):
        flops = np.array([1e9] * 9 + [1e6])  # one very slow device
        groups = compute_balanced_groups(flops, 5)
        validate_groups(groups, 10)
        assert all(len(g) == 2 for g in groups)

    def test_channel_aware_splits_slow_links(self):
        airtime = np.array([1.0, 1.0, 10.0, 10.0])
        groups = channel_aware_groups(airtime, 2)
        validate_groups(groups, 4)
        # the two expensive clients must not share a group
        for g in groups:
            assert sum(airtime[c] for c in g) == pytest.approx(11.0)

    def test_positive_cost_validation(self):
        with pytest.raises(ValueError):
            compute_balanced_groups(np.array([1.0, 0.0]), 2)
        with pytest.raises(ValueError):
            channel_aware_groups(np.array([1.0, -1.0]), 2)


class TestDispatchAndValidation:
    def test_make_groups_dispatch(self):
        assert make_groups("contiguous", 6, 2) == [[0, 1, 2], [3, 4, 5]]
        validate_groups(make_groups("random", 6, 2, seed=0), 6)
        validate_groups(
            make_groups("compute_balanced", 6, 2, client_flops=np.ones(6)), 6
        )
        validate_groups(
            make_groups("channel_aware", 6, 2, per_bit_airtime=np.ones(6)), 6
        )

    def test_missing_costs_raise(self):
        with pytest.raises(ValueError, match="client_flops"):
            make_groups("compute_balanced", 6, 2)
        with pytest.raises(ValueError, match="airtime"):
            make_groups("channel_aware", 6, 2)

    def test_extraneous_arguments_rejected(self):
        """Arguments a strategy ignores must raise, not vanish silently."""
        with pytest.raises(ValueError, match="does not use seed"):
            make_groups("contiguous", 6, 2, seed=7)
        with pytest.raises(ValueError, match="does not use client_flops"):
            make_groups("random", 6, 2, seed=0, client_flops=np.ones(6))
        with pytest.raises(ValueError, match="does not use seed"):
            make_groups("compute_balanced", 6, 2, seed=1, client_flops=np.ones(6))
        with pytest.raises(ValueError, match="does not use per_bit_airtime"):
            make_groups("contiguous", 6, 2, per_bit_airtime=np.ones(6))
        with pytest.raises(ValueError, match="does not use client_flops"):
            make_groups(
                "channel_aware", 6, 2,
                client_flops=np.ones(6), per_bit_airtime=np.ones(6),
            )

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown"):
            make_groups("astrology", 6, 2)

    def test_group_count_validation(self):
        with pytest.raises(ValueError):
            contiguous_groups(3, 5)
        with pytest.raises(ValueError):
            contiguous_groups(3, 0)

    def test_validate_groups_rejects_bad_partitions(self):
        with pytest.raises(ValueError):
            validate_groups([[0, 1], [1, 2]], 3)  # duplicate
        with pytest.raises(ValueError):
            validate_groups([[0], []], 1)  # empty group
        with pytest.raises(ValueError):
            validate_groups([[0, 1]], 3)  # missing client

    @given(st.integers(2, 40), st.integers(1, 8), st.sampled_from(["contiguous", "random"]))
    @settings(max_examples=40, deadline=None)
    def test_partition_property(self, n, m, strategy):
        if m > n:
            return
        kwargs = {"seed": n * m} if strategy == "random" else {}
        groups = make_groups(strategy, n, m, **kwargs)
        validate_groups(groups, n)
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= 1
