"""Cut-layer analysis and inter-group bandwidth optimizer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core.cut_layer import analyze_cuts, best_cut, estimate_round_latency
from repro.core.resource import (
    GroupWorkload,
    equal_bandwidth_split,
    minmax_bandwidth_split,
)
from repro.wireless.system import WirelessConfig, WirelessSystem


@pytest.fixture(scope="module")
def profile():
    model = nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, seed=0),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(8, 16, 3, padding=1, seed=1),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(16 * 4 * 4, 10, seed=2),
    )
    return nn.profile_model(model, (3, 16, 16))


@pytest.fixture(scope="module")
def system():
    return WirelessSystem(
        WirelessConfig(num_clients=4, deterministic_rates=True, seed=0)
    )


class TestAnalyzeCuts:
    def test_covers_all_valid_cuts(self, profile):
        cuts = analyze_cuts(profile)
        assert [c.cut_layer for c in cuts] == list(range(1, profile.num_layers))

    def test_client_flops_monotone_in_cut(self, profile):
        cuts = analyze_cuts(profile)
        fwd = [c.client_forward_flops for c in cuts]
        assert fwd == sorted(fwd)

    def test_client_plus_server_constant(self, profile):
        for c in analyze_cuts(profile):
            assert (
                c.client_forward_flops + c.server_forward_flops
                == profile.total_forward_flops
            )
            assert (
                c.client_model_bytes + c.server_model_bytes
                == profile.total_param_bytes
            )

    def test_pooling_cut_shrinks_smashed_payload(self, profile):
        cuts = {c.cut_layer: c for c in analyze_cuts(profile)}
        # cut after pool (layer 3) carries 4x less than cut before it
        assert cuts[3].smashed_bytes_per_sample < cuts[2].smashed_bytes_per_sample


class TestEstimateAndBest:
    def test_latency_positive(self, profile, system):
        t = estimate_round_latency(
            profile, 3, system, client=0, batch_size=8, local_steps=2, bandwidth_hz=5e6
        )
        assert t > 0

    def test_local_steps_scale_linearly(self, profile, system):
        kwargs = dict(client=0, batch_size=8, bandwidth_hz=5e6)
        t1 = estimate_round_latency(profile, 3, system, local_steps=1, **kwargs)
        t2 = estimate_round_latency(profile, 3, system, local_steps=2, **kwargs)
        assert t2 == pytest.approx(2 * t1, rel=0.2)  # fading draws differ slightly

    def test_best_cut_returns_sweep_minimum(self, profile, system):
        best, sweep = best_cut(profile, system, batch_size=8)
        latencies = dict(sweep)
        assert latencies[best] == min(latencies.values())
        assert len(sweep) == profile.num_layers - 1


class TestBandwidthOptimizer:
    def test_equal_split(self):
        shares = equal_bandwidth_split(12e6, 4)
        assert shares == [3e6] * 4

    def test_equal_split_validation(self):
        with pytest.raises(ValueError):
            equal_bandwidth_split(0, 3)

    @staticmethod
    def _linear_workloads(costs, compute=0.0):
        """latency = compute + cost / bandwidth (idealized linear links)."""
        return [
            GroupWorkload(i, lambda b, c=c: compute + c / b) for i, c in enumerate(costs)
        ]

    def test_minmax_equal_costs_gives_equal_shares(self):
        workloads = self._linear_workloads([1e7, 1e7, 1e7])
        shares, t = minmax_bandwidth_split(workloads, 9e6)
        assert sum(shares) == pytest.approx(9e6, rel=1e-6)
        assert max(shares) - min(shares) < 0.02 * 9e6

    def test_minmax_skewed_costs_equalize_latency(self):
        workloads = self._linear_workloads([1e7, 3e7])
        shares, t = minmax_bandwidth_split(workloads, 8e6)
        lat = [w.latency_fn(b) for w, b in zip(workloads, shares)]
        assert abs(lat[0] - lat[1]) / max(lat) < 0.05
        # the heavy group should get ~3x the bandwidth
        assert shares[1] / shares[0] == pytest.approx(3.0, rel=0.1)

    def test_minmax_beats_equal_split(self):
        workloads = self._linear_workloads([1e7, 4e7])
        shares, t_opt = minmax_bandwidth_split(workloads, 10e6)
        t_eq = max(w.latency_fn(5e6) for w in workloads)
        assert t_opt <= t_eq + 1e-9

    def test_minmax_single_group_gets_everything(self):
        workloads = self._linear_workloads([1e7])
        shares, _ = minmax_bandwidth_split(workloads, 5e6)
        assert shares[0] == pytest.approx(5e6, rel=1e-6)

    def test_minmax_respects_total(self):
        rng = np.random.default_rng(0)
        workloads = self._linear_workloads(rng.uniform(1e6, 5e7, size=6), compute=0.1)
        shares, _ = minmax_bandwidth_split(workloads, 20e6)
        assert sum(shares) <= 20e6 * (1 + 1e-9)

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError):
            minmax_bandwidth_split([], 1e6)
