"""Property battery for the between-round regrouping policies.

Invariants (hammered with Hypothesis-generated fleets and churn traces,
example budgets from the ``ci``/``weekly`` profiles in ``conftest.py``):

* **partition exactness** — every policy returns an exact partition of
  the same client set into the same number of groups, sizes within one;
* **static no-op** — the static policy reproduces its input bitwise;
* **down clients never mid-chain** — under ``availability_aware`` the
  currently-down members of each chain form a *suffix* (a down client is
  never a relay hop an up client depends on);
* **termination** — regrouping over arbitrary churn schedules (and a
  full GSFL run with regrouping armed under heavy churn) terminates.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import contiguous_groups, validate_groups
from repro.core.regroup import (
    REGROUP_POLICIES,
    AbortHistoryRegroup,
    AvailabilityAwareRegroup,
    RegroupContext,
    StaticRegroup,
    make_regroup_policy,
)
from repro.experiments.dynamics import ClientDynamics, DynamicsConfig

churn_means = st.floats(
    min_value=0.05, max_value=5.0, allow_nan=False, allow_infinity=False
)
seeds = st.integers(min_value=0, max_value=2**20)
fleets = st.tuples(st.integers(2, 40), st.integers(1, 8)).filter(
    lambda nm: nm[1] <= nm[0]
)


def make_dynamics(uptime, downtime, seed, num_clients):
    return ClientDynamics(
        DynamicsConfig(
            churn_uptime_s=uptime,
            churn_downtime_s=downtime,
            failure_model="mid-activity",
            seed=seed,
        ),
        num_clients,
    )


def make_policy(name):
    policy = make_regroup_policy(name)
    return StaticRegroup() if policy is None else policy


def abort_counts_strategy(num_clients):
    return st.dictionaries(
        st.integers(0, num_clients - 1), st.integers(0, 9), max_size=num_clients
    )


class TestPartitionInvariants:
    @given(
        fleet=fleets,
        name=st.sampled_from(REGROUP_POLICIES),
        uptime=churn_means,
        downtime=churn_means,
        seed=seeds,
        now=st.floats(min_value=0.0, max_value=50.0),
        data=st.data(),
    )
    def test_every_policy_returns_balanced_exact_partition(
        self, fleet, name, uptime, downtime, seed, now, data
    ):
        n, m = fleet
        policy = make_policy(name)
        context = RegroupContext(
            round_index=1,
            now_s=now,
            dynamics=make_dynamics(uptime, downtime, seed, n),
            abort_counts=data.draw(abort_counts_strategy(n)),
        )
        groups = policy.regroup(contiguous_groups(n, m), context)
        validate_groups(groups, n)
        assert len(groups) == m
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= 1

    @given(fleet=fleets, rounds=st.integers(1, 6), seed=seeds)
    @settings(max_examples=25)
    def test_repeated_regrouping_stays_a_partition(self, fleet, rounds, seed):
        """Policies are stateful (EWMA); iterating them must stay exact."""
        n, m = fleet
        policy = AbortHistoryRegroup()
        groups = contiguous_groups(n, m)
        for r in range(1, rounds + 1):
            context = RegroupContext(
                round_index=r,
                now_s=float(r),
                abort_counts={c: (c * r + seed) % 3 for c in range(n)},
            )
            groups = policy.regroup(groups, context)
            validate_groups(groups, n)


class TestStaticNoOp:
    @given(fleet=fleets, uptime=churn_means, downtime=churn_means, seed=seeds)
    def test_static_is_bitwise_identity(self, fleet, uptime, downtime, seed):
        n, m = fleet
        before = contiguous_groups(n, m)
        context = RegroupContext(
            round_index=3,
            now_s=1.0,
            dynamics=make_dynamics(uptime, downtime, seed, n),
            abort_counts={0: 5},
        )
        after = StaticRegroup().regroup(before, context)
        assert after == before
        assert after is not before  # a copy, not an alias

    def test_make_regroup_policy_static_is_none(self):
        """The scheme driver skips the hook entirely for static."""
        assert make_regroup_policy("static") is None

    def test_make_regroup_policy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown regroup policy"):
            make_regroup_policy("astrology")


class TestAvailabilityAware:
    @given(
        fleet=fleets,
        uptime=churn_means,
        downtime=churn_means,
        seed=seeds,
        now=st.floats(min_value=0.0, max_value=50.0),
    )
    def test_down_clients_form_a_chain_suffix(
        self, fleet, uptime, downtime, seed, now
    ):
        """A currently-down client is never mid-chain: every member after
        the first down one in a chain is down too."""
        n, m = fleet
        dynamics = make_dynamics(uptime, downtime, seed, n)
        context = RegroupContext(round_index=1, now_s=now, dynamics=dynamics)
        groups = AvailabilityAwareRegroup().regroup(contiguous_groups(n, m), context)
        validate_groups(groups, n)
        for chain in groups:
            seen_down = False
            for client in chain:
                up = dynamics.available_at(client, now)
                if seen_down:
                    assert not up, (chain, client)
                seen_down = seen_down or not up

    @given(
        fleet=fleets,
        uptime=churn_means,
        downtime=churn_means,
        seed=seeds,
        now=st.floats(min_value=0.0, max_value=50.0),
    )
    def test_chains_ordered_by_remaining_uptime(
        self, fleet, uptime, downtime, seed, now
    ):
        """Within each chain the oracle remaining up-time never increases
        toward the tail (short-lived clients sink to the end)."""
        n, m = fleet
        dynamics = make_dynamics(uptime, downtime, seed, n)
        policy = AvailabilityAwareRegroup()
        context = RegroupContext(round_index=1, now_s=now, dynamics=dynamics)
        groups = policy.regroup(contiguous_groups(n, m), context)
        for chain in groups:
            remaining = [
                policy._remaining_uptime(dynamics, c, now) for c in chain
            ]
            assert remaining == sorted(remaining, reverse=True)

    def test_no_signal_keeps_the_partition(self):
        before = contiguous_groups(9, 3)
        # No dynamics at all.
        assert AvailabilityAwareRegroup().regroup(
            before, RegroupContext(round_index=1, now_s=0.0)
        ) == before
        # Dynamics without churn: every client scores +inf, no signal.
        dynamics = ClientDynamics(DynamicsConfig(), 9)
        assert AvailabilityAwareRegroup().regroup(
            before, RegroupContext(round_index=1, now_s=0.0, dynamics=dynamics)
        ) == before


class TestAbortHistory:
    def test_no_evidence_keeps_the_partition(self):
        before = contiguous_groups(8, 2)
        after = AbortHistoryRegroup().regroup(
            before, RegroupContext(round_index=1, now_s=0.0)
        )
        assert after == before

    def test_flaky_client_leaves_the_chain_tail(self):
        """The chain anchor (final upload — un-reroutable) goes to the
        client with the cleanest abort record, never the flakiest one."""
        policy = AbortHistoryRegroup()
        context = RegroupContext(
            round_index=1, now_s=0.0, abort_counts={0: 4, 1: 4, 5: 1}
        )
        groups = policy.regroup(contiguous_groups(6, 2), context)
        validate_groups(groups, 6)
        score = policy._score
        for chain in groups:
            assert score[chain[-1]] == min(score[c] for c in chain)

    def test_ewma_decays_old_evidence(self):
        policy = AbortHistoryRegroup(decay=0.5)
        ctx = lambda counts: RegroupContext(  # noqa: E731
            round_index=1, now_s=0.0, abort_counts=counts
        )
        groups = contiguous_groups(4, 2)
        policy.regroup(groups, ctx({0: 8}))
        assert policy._score[0] == 8.0
        policy.regroup(groups, ctx({}))
        assert policy._score[0] == 4.0
        policy.regroup(groups, ctx({0: 1}))
        assert policy._score[0] == 3.0

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError, match="decay"):
            AbortHistoryRegroup(decay=1.0)


class TestTermination:
    @given(
        uptime=churn_means,
        downtime=churn_means,
        seed=seeds,
        name=st.sampled_from(REGROUP_POLICIES),
        rounds=st.integers(1, 8),
    )
    @settings(max_examples=20)
    def test_regrouping_over_arbitrary_churn_terminates(
        self, uptime, downtime, seed, name, rounds
    ):
        policy = make_policy(name)
        dynamics = make_dynamics(uptime, downtime, seed, 12)
        groups = contiguous_groups(12, 4)
        now = 0.0
        for r in range(1, rounds + 1):
            now += uptime + downtime  # advance past whole churn cycles
            context = RegroupContext(
                round_index=r,
                now_s=now,
                dynamics=dynamics,
                abort_counts={c: (c + r) % 2 for c in range(12)},
            )
            groups = policy.regroup(groups, context)
            validate_groups(groups, 12)

    @pytest.mark.parametrize("name", ["availability_aware", "abort_history"])
    def test_gsfl_run_with_regrouping_under_heavy_churn_terminates(self, name):
        """End-to-end: a GSFL run with regrouping armed under the PR-4
        churn setting finishes and its trace carries regroup rows."""
        from dataclasses import replace

        from repro.experiments.runner import make_scheme
        from repro.experiments.scenario import fast_scenario

        scenario = fast_scenario(with_wireless=True)
        scenario.dynamics = DynamicsConfig(
            churn_uptime_s=0.15,
            churn_downtime_s=0.05,
            failure_model="mid-activity",
            max_retries=2,
            seed=0,
        )
        scenario.scheme = replace(scenario.scheme, regroup=name, regroup_every=1)
        scheme = make_scheme("GSFL", scenario.build())
        history = scheme.run(3)
        assert len(history.points) == 3
        assert len(scheme.recorder.regroups) == 2  # rounds 1 and 2
        assert all(e.policy == name for e in scheme.recorder.regroups)
        for event in scheme.recorder.regroups:
            validate_groups([list(g) for g in event.groups], scheme.num_clients)

    def test_regroup_requires_sync_aggregation(self):
        from dataclasses import replace

        from repro.experiments.runner import make_scheme
        from repro.experiments.scenario import fast_scenario

        scenario = fast_scenario(with_wireless=True)
        scenario.scheme = replace(
            scenario.scheme, regroup="availability_aware", aggregation="async"
        )
        with pytest.raises(ValueError, match="synchronous aggregation"):
            make_scheme("GSFL", scenario.build())

    def test_regroup_every_gates_the_cadence(self):
        from dataclasses import replace

        from repro.experiments.runner import make_scheme
        from repro.experiments.scenario import fast_scenario

        scenario = fast_scenario(with_wireless=True)
        scenario.dynamics = DynamicsConfig(
            churn_uptime_s=0.15,
            churn_downtime_s=0.05,
            failure_model="mid-activity",
            seed=0,
        )
        scenario.scheme = replace(
            scenario.scheme, regroup="availability_aware", regroup_every=2
        )
        scheme = make_scheme("GSFL", scenario.build())
        scheme.run(4)
        assert [e.round_index for e in scheme.recorder.regroups] == [2]
