"""Discrete-event kernel tests: clock, ordering, processes, conditions."""

from __future__ import annotations

import pytest

from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout


class TestEventPrimitives:
    def test_succeed_fires_callbacks_once(self):
        env = Environment()
        ev = env.event()
        hits = []
        ev.add_callback(lambda e: hits.append(e.value))
        ev.succeed("x")
        assert hits == ["x"]
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_callback_after_trigger_runs_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed(7)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == [7]

    def test_timeout_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)


class TestEnvironment:
    def test_clock_advances_in_event_order(self):
        env = Environment()
        order = []

        def p(name, delay):
            yield env.timeout(delay)
            order.append((name, env.now))

        env.process(p("late", 5.0))
        env.process(p("early", 1.0))
        env.run()
        assert order == [("early", 1.0), ("late", 5.0)]

    def test_simultaneous_events_fire_in_insertion_order(self):
        env = Environment()
        order = []

        def p(name):
            yield env.timeout(1.0)
            order.append(name)

        for name in "abc":
            env.process(p(name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_deadline(self):
        env = Environment()
        fired = []

        def p():
            yield env.timeout(10.0)
            fired.append(True)

        env.process(p())
        env.run(until=5.0)
        assert env.now == 5.0 and not fired
        env.run()
        assert fired

    def test_run_until_event(self):
        env = Environment()

        def fast():
            yield env.timeout(1.0)
            return "done"

        def slow():
            yield env.timeout(100.0)

        fast_proc = env.process(fast())
        env.process(slow())
        env.run(until=fast_proc)
        assert env.now == 1.0
        assert fast_proc.value == "done"

    def test_run_until_never_fired_event_raises(self):
        env = Environment()
        orphan = env.event()
        with pytest.raises(RuntimeError, match="drained"):
            env.run(until=orphan)

    def test_cannot_schedule_in_past(self):
        env = Environment()

        def p():
            yield env.timeout(5.0)

        env.process(p())
        env.run()
        with pytest.raises(RuntimeError):
            env._schedule(1.0, env.event(), None)

    def test_process_return_value_propagates(self):
        env = Environment()

        def child():
            yield env.timeout(2.0)
            return 42

        def parent():
            result = yield env.process(child())
            return result + 1

        proc = env.process(parent())
        env.run()
        assert proc.value == 43

    def test_process_must_yield_events(self):
        env = Environment()

        def bad():
            yield "not an event"

        env.process(bad())
        with pytest.raises(TypeError, match="yield"):
            env.run()

    def test_nested_fork_join(self):
        env = Environment()

        def worker(d):
            yield env.timeout(d)
            return d

        def parent():
            procs = [env.process(worker(d)) for d in (3.0, 1.0, 2.0)]
            results = yield env.all_of(procs)
            return results

        proc = env.process(parent())
        env.run()
        assert proc.value == [3.0, 1.0, 2.0]
        assert env.now == 3.0


class TestConditions:
    def test_all_of_waits_for_slowest(self):
        env = Environment()
        barrier = env.all_of([env.timeout(1.0, "a"), env.timeout(4.0, "b")])
        env.run(until=barrier)
        assert env.now == 4.0
        assert barrier.value == ["a", "b"]

    def test_any_of_fires_on_first(self):
        env = Environment()
        race = env.any_of([env.timeout(3.0, "slow"), env.timeout(1.0, "fast")])
        env.run(until=race)
        assert env.now == 1.0
        assert race.value == (1, "fast")

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        barrier = env.all_of([])
        env.run(until=barrier)
        assert env.now == 0.0

    def test_all_of_with_pretriggered_events(self):
        env = Environment()
        done = env.event()
        done.succeed("pre")
        barrier = env.all_of([done, env.timeout(2.0, "late")])
        env.run(until=barrier)
        assert barrier.value == ["pre", "late"]


class TestLazyCancellation:
    """Cancelled events never fire and never bloat the queue."""

    def test_cancelled_timeout_never_fires(self):
        env = Environment()
        log = []
        doomed = env.timeout(1.0)
        doomed.add_callback(lambda ev: log.append("doomed"))
        survivor = env.timeout(2.0)
        survivor.add_callback(lambda ev: log.append("survivor"))
        env.cancel(doomed)
        env.run()
        assert log == ["survivor"]
        assert env.now == 2.0
        assert not doomed.triggered

    def test_pending_counts_live_entries_only(self):
        env = Environment()
        events = [env.timeout(float(i + 1)) for i in range(10)]
        assert env.pending == 10
        for ev in events[:4]:
            env.cancel(ev)
        assert env.pending == 6
        env.run()
        assert env.pending == 0
        assert env.events_fired == 6

    def test_cancel_is_idempotent_and_noop_after_trigger(self):
        env = Environment()
        fired = env.timeout(1.0)
        env.run()
        assert fired.triggered
        env.cancel(fired)  # no-op: already fired
        assert env.pending == 0
        fresh = env.timeout(1.0)
        env.cancel(fresh)
        env.cancel(fresh)  # no-op: already cancelled
        assert env.pending == 0

    def test_cancel_unscheduled_event_is_noop(self):
        # A bare event was never scheduled: cancelling it must not skew
        # the live-entry accounting, and it must stay usable.
        env = Environment()
        env.timeout(1.0)
        unscheduled = env.event()
        # repro: disable=SIM001 (deliberately exercises the cancel-unscheduled no-op guard)
        env.cancel(unscheduled)
        assert env.pending == 1
        assert not unscheduled.cancelled
        # repro: disable=SIM001 (the no-op cancel must leave the event usable)
        unscheduled.succeed("still fine")
        assert unscheduled.value == "still fine"
        env.run()
        assert env.pending == 0
        assert env.peak_pending == 1

    def test_step_on_empty_queue_raises_clear_error(self):
        env = Environment()
        with pytest.raises(RuntimeError, match="empty"):
            env.step()

    def test_step_skims_cancelled_entries(self):
        # Direct step() callers must neither fire a lazily-cancelled
        # head nor hit IndexError on a queue of only-cancelled entries.
        env = Environment()
        env.cancel(env.timeout(1.0))
        survivor = env.timeout(2.0)
        env.step()
        assert survivor.triggered and env.now == 2.0
        env.cancel(env.timeout(3.0))
        with pytest.raises(RuntimeError, match="empty"):
            env.step()

    def test_succeed_on_cancelled_event_raises(self):
        env = Environment()
        ev = env.timeout(1.0)
        env.cancel(ev)
        with pytest.raises(RuntimeError, match="cancelled"):
            # repro: disable=SIM001 (deliberately exercises the succeed-after-cancel runtime guard)
            ev.succeed()

    def test_run_until_deadline_skips_cancelled_head(self):
        # A cancelled head entry beyond the deadline must not end the
        # run early or advance the clock past `until`.
        env = Environment()
        log = []
        far = env.timeout(10.0)
        near = env.timeout(1.0)
        near.add_callback(lambda ev: log.append(env.now))
        env.cancel(far)
        env.run(until=5.0)
        assert log == [1.0]
        assert env.now == 5.0

    def test_run_until_event_with_cancelled_queue_deadlocks(self):
        env = Environment()
        target = env.event()
        lone = env.timeout(1.0)
        env.cancel(lone)
        with pytest.raises(RuntimeError, match="drained"):
            env.run(until=target)

    def test_compaction_bounds_queue_length(self):
        env = Environment()
        keeper = env.timeout(1e9)
        for i in range(5000):
            env.cancel(env.timeout(float(i + 1)))
        # Dead entries dominated repeatedly: compaction must have kept
        # the physical heap near the live population, not at 5001.
        assert env.pending == 1
        assert len(env._queue) <= Environment._COMPACT_FLOOR + 1
        env.run()
        assert env.now == 1e9
        assert keeper.triggered

    def test_peak_pending_tracks_high_water_mark(self):
        env = Environment()
        evs = [env.timeout(1.0) for _ in range(7)]
        for ev in evs:
            env.cancel(ev)
        env.timeout(2.0)
        env.run()
        assert env.peak_pending == 7
