"""Discrete-event kernel tests: clock, ordering, processes, conditions."""

from __future__ import annotations

import pytest

from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout


class TestEventPrimitives:
    def test_succeed_fires_callbacks_once(self):
        env = Environment()
        ev = env.event()
        hits = []
        ev.add_callback(lambda e: hits.append(e.value))
        ev.succeed("x")
        assert hits == ["x"]
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_callback_after_trigger_runs_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed(7)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == [7]

    def test_timeout_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)


class TestEnvironment:
    def test_clock_advances_in_event_order(self):
        env = Environment()
        order = []

        def p(name, delay):
            yield env.timeout(delay)
            order.append((name, env.now))

        env.process(p("late", 5.0))
        env.process(p("early", 1.0))
        env.run()
        assert order == [("early", 1.0), ("late", 5.0)]

    def test_simultaneous_events_fire_in_insertion_order(self):
        env = Environment()
        order = []

        def p(name):
            yield env.timeout(1.0)
            order.append(name)

        for name in "abc":
            env.process(p(name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_deadline(self):
        env = Environment()
        fired = []

        def p():
            yield env.timeout(10.0)
            fired.append(True)

        env.process(p())
        env.run(until=5.0)
        assert env.now == 5.0 and not fired
        env.run()
        assert fired

    def test_run_until_event(self):
        env = Environment()

        def fast():
            yield env.timeout(1.0)
            return "done"

        def slow():
            yield env.timeout(100.0)

        fast_proc = env.process(fast())
        env.process(slow())
        env.run(until=fast_proc)
        assert env.now == 1.0
        assert fast_proc.value == "done"

    def test_run_until_never_fired_event_raises(self):
        env = Environment()
        orphan = env.event()
        with pytest.raises(RuntimeError, match="drained"):
            env.run(until=orphan)

    def test_cannot_schedule_in_past(self):
        env = Environment()

        def p():
            yield env.timeout(5.0)

        env.process(p())
        env.run()
        with pytest.raises(RuntimeError):
            env._schedule(1.0, env.event(), None)

    def test_process_return_value_propagates(self):
        env = Environment()

        def child():
            yield env.timeout(2.0)
            return 42

        def parent():
            result = yield env.process(child())
            return result + 1

        proc = env.process(parent())
        env.run()
        assert proc.value == 43

    def test_process_must_yield_events(self):
        env = Environment()

        def bad():
            yield "not an event"

        env.process(bad())
        with pytest.raises(TypeError, match="yield"):
            env.run()

    def test_nested_fork_join(self):
        env = Environment()

        def worker(d):
            yield env.timeout(d)
            return d

        def parent():
            procs = [env.process(worker(d)) for d in (3.0, 1.0, 2.0)]
            results = yield env.all_of(procs)
            return results

        proc = env.process(parent())
        env.run()
        assert proc.value == [3.0, 1.0, 2.0]
        assert env.now == 3.0


class TestConditions:
    def test_all_of_waits_for_slowest(self):
        env = Environment()
        barrier = env.all_of([env.timeout(1.0, "a"), env.timeout(4.0, "b")])
        env.run(until=barrier)
        assert env.now == 4.0
        assert barrier.value == ["a", "b"]

    def test_any_of_fires_on_first(self):
        env = Environment()
        race = env.any_of([env.timeout(3.0, "slow"), env.timeout(1.0, "fast")])
        env.run(until=race)
        assert env.now == 1.0
        assert race.value == (1, "fast")

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        barrier = env.all_of([])
        env.run(until=barrier)
        assert env.now == 0.0

    def test_all_of_with_pretriggered_events(self):
        env = Environment()
        done = env.event()
        done.succeed("pre")
        barrier = env.all_of([done, env.timeout(2.0, "late")])
        env.run(until=barrier)
        assert barrier.value == ["pre", "late"]
