"""Property-based battery for the mid-activity fault model.

Four guarantees the failure injection leans on, hammered with
Hypothesis-generated churn schedules (example budgets come from the
``ci``/``weekly`` profiles registered in ``tests/conftest.py``):

* **aborted flows deliver nothing** — cancelling an in-flight transfer
  on the shared medium never fires its completion event, leaves no bytes
  delivered, and re-divides capacity over the survivors at that instant;
* **aborted compute frees its device** — a preempted job releases its
  capacity-1 FIFO :class:`~repro.sim.resources.Resource` slot, so the
  device is immediately grantable again;
* **bounded retries** — a track never re-attempts more than the
  configured ``max_retries``, under any churn schedule;
* **termination** — the simulation always runs to completion under
  arbitrary churn schedules, for both recovery modes and for the
  barrier-free aggregation engine (no retry loop, gate, or abort path
  can deadlock or livelock the kernel).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.dynamics import ClientDynamics, DynamicsConfig
from repro.schemes.base import Activity
from repro.sim.engine import Environment
from repro.sim.failures import FailureInjector
from repro.sim.resources import FairShareLink
from repro.sim.runtime import ComputeDemand, Runtime, TrackRecovery
from repro.sim.server import AggregationServer, BoundedStaleness, UnitRoundWork
from repro.sim.trace import ABORT_RESOLUTIONS, TraceRecorder

churn_means = st.floats(
    min_value=0.05, max_value=5.0, allow_nan=False, allow_infinity=False
)
seeds = st.integers(min_value=0, max_value=2**20)
retry_budgets = st.integers(min_value=0, max_value=4)


def make_injector(uptime, downtime, seed, num_clients=4):
    dynamics = ClientDynamics(
        DynamicsConfig(
            churn_uptime_s=uptime,
            churn_downtime_s=downtime,
            failure_model="mid-activity",
            seed=seed,
        ),
        num_clients,
    )
    return FailureInjector(dynamics)


def compute_track(num_activities, num_clients, seconds=0.4):
    """A relay-like track: one compute activity per client, round-robin."""
    return [
        Activity(
            ComputeDemand(flops=seconds * 1e4, flops_per_s=1e4, client=i % num_clients),
            "client_compute",
            f"client-{i % num_clients}",
        )
        for i in range(num_activities)
    ]


def run_one_track(runtime, activities, recorder, recovery):
    proc = runtime.env.process(
        runtime.run_track(activities, recorder, 0, None, recovery)
    )
    runtime.env.run(proc)
    return proc.value


# ----------------------------------------------------------------------
# aborted flows deliver nothing
# ----------------------------------------------------------------------
class TestLinkAbort:
    @given(
        bits=st.floats(min_value=100.0, max_value=1e6),
        frac=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_aborted_flow_never_completes(self, bits, frac):
        env = Environment()
        link = FairShareLink(env, capacity_bps=1e3)
        done = link.transfer(bits)

        def aborter():
            yield env.timeout(bits / 1e3 * frac)
            remaining = link.abort(done)
            assert remaining is not None and remaining > 0.0

        env.process(aborter())
        env.run()
        assert not done.triggered
        assert link.active_flows == 0

    def test_abort_recomputes_shares_over_survivors(self):
        """Two equal flows at 500 bps each; aborting one at t=0.5 hands
        the survivor the full 1000 bps — it finishes at exactly 1.25."""
        env = Environment()
        link = FairShareLink(env, capacity_bps=1000.0)
        survivor = link.transfer(1000.0)
        victim = link.transfer(1000.0)
        finish = []
        survivor.add_callback(lambda _: finish.append(env.now))

        def aborter():
            yield env.timeout(0.5)
            # 500 bps × 0.5 s = 250 bits delivered; 750 remain undelivered.
            assert link.abort(victim) == 750.0

        env.process(aborter())
        env.run()
        assert not victim.triggered
        assert finish == [1.25]

    def test_abort_of_finished_flow_is_a_noop(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=1e3)
        done = link.transfer(100.0)
        env.run()
        assert done.triggered
        assert link.abort(done) is None

    @given(
        bits=st.lists(
            st.floats(min_value=100.0, max_value=1e4), min_size=2, max_size=5
        ),
        victim=st.integers(min_value=0, max_value=4),
    )
    def test_survivor_completions_stay_consistent(self, bits, victim):
        """Whatever flow is cancelled, every survivor still completes, no
        later than the no-abort serial bound (the abort can only free
        capacity; its stale scheduled completion pops as a no-op)."""
        victim %= len(bits)
        env = Environment()
        link = FairShareLink(env, capacity_bps=1e3)
        events = [link.transfer(b) for b in bits]
        finish: dict[int, float] = {}
        for i, event in enumerate(events):
            event.add_callback(lambda _, i=i: finish.setdefault(i, env.now))

        def aborter():
            yield env.timeout(min(bits) / 1e3 * 0.25)
            link.abort(events[victim])

        env.process(aborter())
        env.run()
        for i, event in enumerate(events):
            assert event.triggered == (i != victim)
        assert victim not in finish
        serial_bound = sum(bits) / 1e3
        assert all(t <= serial_bound + 1e-9 for t in finish.values())


# ----------------------------------------------------------------------
# aborted compute frees its device slot
# ----------------------------------------------------------------------
class _ScriptedFailure:
    """Injector stub: client 0 fails at a fixed instant, recovers later."""

    def __init__(self, fail_at: float, recover_at: float) -> None:
        self.fail_at = fail_at
        self.recover_at = recover_at

    def up_deadline(self, client: int, now: float) -> float:
        return self.fail_at if now < self.recover_at else float("inf")

    def recovery_s(self, client: int, now: float) -> float:
        return self.recover_at


class TestComputeAbort:
    @given(
        fail_frac=st.floats(min_value=0.05, max_value=0.95),
        budget=retry_budgets,
    )
    def test_aborted_compute_frees_the_device_slot(self, fail_frac, budget):
        runtime = Runtime()
        runtime.failure_injector = _ScriptedFailure(
            fail_at=fail_frac, recover_at=2.0
        )
        act = Activity(
            ComputeDemand(flops=1e4, flops_per_s=1e4, client=0),  # 1 s job
            "client_compute",
            "client-0",
        )
        recovery = TrackRecovery(
            resume_s=lambda c, now: 2.0, max_retries=budget, mode="retry"
        )
        recorder = TraceRecorder()
        outcome = run_one_track(runtime, [act], recorder, recovery)
        device = runtime.device(0)
        assert device.in_use == 0 and device.queued == 0
        assert outcome.aborts >= 1
        # After recovery at t=2 the deadline clears: the first retry runs
        # the job to completion whenever the budget allows one.
        assert outcome.completed == (budget >= 1)

    def test_preempted_job_runs_exactly_to_the_failure_instant(self):
        runtime = Runtime()
        runtime.failure_injector = _ScriptedFailure(fail_at=0.25, recover_at=0.5)
        act = Activity(
            ComputeDemand(flops=1e4, flops_per_s=1e4, client=0),
            "client_compute",
            "client-0",
        )
        recorder = TraceRecorder()
        recovery = TrackRecovery(resume_s=lambda c, n: 0.5, max_retries=1)
        outcome = run_one_track(runtime, [act], recorder, recovery)
        assert outcome.completed and outcome.retries == 1
        [abort] = recorder.aborts
        assert abort.time_s == 0.25  # cut at the exact toggle instant
        [retry] = recorder.retries
        assert retry.time_s == 0.5  # resumed at the recovery instant
        assert runtime.now == 1.5  # 0.5 wait + full 1 s re-run


# ----------------------------------------------------------------------
# bounded retries + abort accounting, real churn traces
# ----------------------------------------------------------------------
class TestRetryBudget:
    @given(
        uptime=churn_means,
        downtime=churn_means,
        seed=seeds,
        budget=retry_budgets,
        mode=st.sampled_from(["retry", "reroute"]),
    )
    def test_retries_never_exceed_budget(self, uptime, downtime, seed, budget, mode):
        runtime = Runtime()
        injector = make_injector(uptime, downtime, seed)
        runtime.failure_injector = injector
        recovery = TrackRecovery(
            resume_s=injector.recovery_s, max_retries=budget, mode=mode
        )
        recorder = TraceRecorder()
        outcome = run_one_track(
            runtime, compute_track(8, num_clients=4), recorder, recovery
        )
        assert outcome.retries <= budget
        assert len(recorder.retries) == outcome.retries
        assert all(1 <= e.attempt <= budget for e in recorder.retries)
        # Every abort resolves exactly once.
        assert all(e.resolution in ABORT_RESOLUTIONS for e in recorder.aborts)
        resolved = (
            outcome.retries
            + len(outcome.rerouted)
            + (1 if outcome.surrendered else 0)
        )
        assert outcome.aborts == len(recorder.aborts) == resolved

    def test_reroute_skips_mixed_client_relay_legs(self):
        """A relay demand whose legs touch the dead client must not be
        the reroute target — its dead leg would preempt again instantly,
        double-recording the reroute.  The jump lands on the next
        activity executable without the dead client, and the relay
        (the AP's cached-copy fallback) is skipped."""
        from repro.sim.runtime import TransmitDemand, TransmitLeg

        class _FailsClientZero:
            # Client 0 fails at t=0.1 and never recovers; client 1 is solid.
            def up_deadline(self, client, now):
                return 0.1 if client == 0 else float("inf")

            def recovery_s(self, client, now):
                return None

        runtime = Runtime(total_bandwidth_hz=1e3)
        runtime.failure_injector = _FailsClientZero()
        relay = TransmitDemand(
            legs=(
                TransmitLeg(nbits=100.0, client=0, rate_fn=lambda hz: hz),
                TransmitLeg(nbits=100.0, client=1, rate_fn=lambda hz: hz),
            ),
            nominal_hz=1e3,
            total_hz=1e3,
        )
        activities = [
            Activity(ComputeDemand(2e3, 1e4, client=0), "client_compute", "client-0"),
            Activity(relay, "model_relay", "client-0"),
            Activity(ComputeDemand(2e3, 1e4, client=1), "client_compute", "client-1"),
        ]
        recovery = TrackRecovery(
            resume_s=lambda c, now: None, max_retries=0, mode="reroute"
        )
        recorder = TraceRecorder()
        outcome = run_one_track(runtime, activities, recorder, recovery)
        assert outcome.rerouted == [0]
        assert outcome.aborts == 1 and outcome.completed
        # Only the live client's compute resolved after the reroute.
        assert [e.actor for e in recorder.events] == ["client-1"]

    @given(uptime=churn_means, downtime=churn_means, seed=seeds)
    def test_zero_budget_reroute_skips_every_dead_client(self, uptime, downtime, seed):
        runtime = Runtime()
        injector = make_injector(uptime, downtime, seed)
        runtime.failure_injector = injector
        recovery = TrackRecovery(
            resume_s=injector.recovery_s, max_retries=0, mode="reroute"
        )
        outcome = run_one_track(
            runtime, compute_track(8, num_clients=4), None, recovery
        )
        assert outcome.retries == 0
        assert len(set(outcome.rerouted)) == len(outcome.rerouted)


# ----------------------------------------------------------------------
# termination under arbitrary churn
# ----------------------------------------------------------------------
class TestTermination:
    @given(
        uptime=churn_means,
        downtime=churn_means,
        seed=seeds,
        budget=retry_budgets,
        mode=st.sampled_from(["retry", "reroute"]),
    )
    def test_single_track_always_terminates(self, uptime, downtime, seed, budget, mode):
        runtime = Runtime()
        injector = make_injector(uptime, downtime, seed)
        runtime.failure_injector = injector
        recovery = TrackRecovery(
            resume_s=injector.recovery_s, max_retries=budget, mode=mode
        )
        outcome = run_one_track(
            runtime, compute_track(6, num_clients=3), None, recovery
        )
        assert outcome is not None
        assert runtime.now < float("inf")

    @given(
        uptime=churn_means,
        downtime=churn_means,
        seed=seeds,
        lag=st.integers(min_value=1, max_value=3),
        budget=retry_budgets,
    )
    @settings(max_examples=20)
    def test_aggregation_engine_terminates_under_churn(
        self, uptime, downtime, seed, lag, budget
    ):
        """Barrier-free units with preemptible tracks: every unit finishes
        every round, surrendered rounds still advance the lag gate, and
        the server's abort log stays distinct from its commit log."""
        num_units, num_rounds = 3, 3
        runtime = Runtime()
        injector = make_injector(uptime, downtime, seed, num_clients=num_units)
        runtime.failure_injector = injector
        server = AggregationServer(
            runtime,
            BoundedStaleness(lag),
            num_units=num_units,
            total_weight=float(num_units),
            apply_update=lambda payload, alpha: None,
        )
        recovery = TrackRecovery(
            resume_s=injector.recovery_s, max_retries=budget, mode="retry"
        )

        def work_fn(unit, round_index):
            acts = [
                Activity(
                    ComputeDemand(flops=2e3, flops_per_s=1e4, client=unit),
                    "client_compute",
                    f"client-{unit}",
                )
                for _ in range(3)
            ]
            return UnitRoundWork(
                acts, payload=unit, weight=1.0, recovery=recovery
            )

        server.run(work_fn, num_rounds)
        assert server.completed == [num_rounds] * num_units
        surrendered = sum(1 for a in server.aborted if a.outcome == "surrender")
        assert len(server.updates) == num_units * num_rounds - surrendered
        assert all(u.staleness <= lag for u in server.updates)
