"""Incremental-vs-dense FairShareLink equivalence suite.

The fleet-scale link keeps three engines: the processor-sharing
virtual-time fast path (:class:`EqualShare`), the static-subchannel fast
path (:class:`NominalShare` under capacity), and the dense reference
(full recomputation — the pre-fleet-scale algorithm, pinned via
``incremental=False``).  These tests replay arbitrary arrival / abort /
completion schedules through both engines and assert they resolve the
same world:

* the same flows complete and the same flows abort;
* per-flow completion times agree — **bitwise** on the static fast path
  (the golden-history guarantee) and to float round-off on the
  processor-sharing path (dense charges service by chained per-epoch
  subtraction, the fast path by a running sum);
* abort settlements (undelivered bits) agree to the same precision;
* completion *order* matches whenever completions are not
  float-round-off ties;
* allocator-backed contended policies take the dense engine in both
  configurations, so their runs are identical by construction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.sim.resources import EqualShare, FairShareLink, NominalShare

CAPACITY = 40.0

#: (start_quarters, bits_halves, abort_fraction | None)
FLOW_SPECS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=24),
        st.integers(min_value=1, max_value=400),
        st.one_of(st.none(), st.floats(min_value=0.05, max_value=2.0)),
    ),
    min_size=1,
    max_size=12,
)


def run_schedule(
    make_policy,
    incremental,
    specs,
    capacity=CAPACITY,
    nominals=None,
    rate_scales=None,
    rate_fns=None,
    clients=None,
):
    """Replay one arrival/abort schedule; returns (completions, aborts, order).

    ``completions`` maps flow index -> completion time, ``aborts`` maps
    flow index -> (abort time, undelivered bits), ``order`` lists flow
    indices in completion-event order.
    """
    env = Environment()
    link = FairShareLink(
        env, capacity, policy=make_policy(), incremental=incremental
    )
    completions: dict[int, float] = {}
    aborts: dict[int, tuple[float, float]] = {}
    order: list[int] = []

    def sender(i, start, bits, abort_after):
        yield env.timeout(start)
        kwargs = {}
        if nominals is not None:
            kwargs["nominal"] = nominals[i]
        if rate_scales is not None and rate_scales[i] is not None:
            scale = rate_scales[i]
            kwargs["rate_fn"] = lambda hz: scale * hz
        if rate_fns is not None and rate_fns[i] is not None:
            kwargs["rate_fn"] = rate_fns[i]
        if clients is not None:
            kwargs["client"] = clients[i]
        done = link.transfer(bits, **kwargs)
        if abort_after is not None:
            yield env.any_of([done, env.timeout(abort_after)])
            if not done.triggered:
                undelivered = link.abort(done)
                aborts[i] = (env.now, undelivered)
                return
        else:
            yield done
        completions[i] = env.now
        order.append(i)

    for i, (start_q, bits_h, abort_frac) in enumerate(specs):
        start = start_q * 0.25
        bits = bits_h * 0.5
        # Abort delay scaled off the flow's own serial time with an
        # irrational-ish factor so exact abort/completion ties (whose
        # tie-break legitimately differs between engines) don't arise
        # from the integer grids above.
        abort_after = (
            None
            if abort_frac is None
            else abort_frac * bits / CAPACITY * 1.618033988749
        )
        env.process(sender(i, start, bits, abort_after))
    env.run()
    return completions, aborts, order


def assert_equivalent(fast, dense, exact=False):
    f_done, f_aborts, f_order = fast
    d_done, d_aborts, d_order = dense
    assert set(f_done) == set(d_done)
    assert set(f_aborts) == set(d_aborts)
    for i in d_done:
        if exact:
            assert f_done[i] == d_done[i]
        else:
            assert f_done[i] == pytest.approx(d_done[i], rel=1e-9, abs=1e-12)
    for i in d_aborts:
        assert f_aborts[i][0] == pytest.approx(d_aborts[i][0], rel=1e-9)
        assert f_aborts[i][1] == pytest.approx(
            d_aborts[i][1], rel=1e-9, abs=1e-9
        )
    if exact:
        assert f_order == d_order
    else:
        # Completion order must match except across float-round-off ties.
        times = sorted(d_done.values())
        gaps = [b - a for a, b in zip(times, times[1:])]
        if all(g > 1e-6 for g in gaps):
            assert f_order == d_order


class TestEqualShareEquivalence:
    """Processor-sharing virtual time vs dense recomputation."""

    @given(specs=FLOW_SPECS)
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_schedules(self, specs):
        fast = run_schedule(EqualShare, True, specs)
        dense = run_schedule(EqualShare, False, specs)
        assert_equivalent(fast, dense)

    @given(specs=FLOW_SPECS, scales=st.data())
    @settings(max_examples=40, deadline=None)
    def test_rate_fn_flows_demote_consistently(self, specs, scales):
        """A ``rate_fn`` flow drops the whole link to the dense engine;
        results must still agree with the always-dense reference."""
        rate_scales = [
            scales.draw(
                st.one_of(st.none(), st.floats(min_value=0.5, max_value=3.0))
            )
            for _ in specs
        ]
        fast = run_schedule(EqualShare, True, specs, rate_scales=rate_scales)
        dense = run_schedule(EqualShare, False, specs, rate_scales=rate_scales)
        assert_equivalent(fast, dense)

    def test_fast_mode_rearms_after_drain(self):
        env = Environment()
        link = FairShareLink(env, 10.0)
        assert link._mode == "uniform"
        done = link.transfer(10.0, rate_fn=lambda hz: hz)
        assert link._mode == "dense"
        env.run(until=done)
        env.run()
        assert link._mode == "uniform"  # drained idle: fast path re-armed


class TestNominalShareEquivalence:
    """Static subchannels: the golden-history bitwise path."""

    @given(specs=FLOW_SPECS, nominal_data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_schedules(self, specs, nominal_data):
        # Nominals that sometimes oversubscribe the link, exercising the
        # static -> dense demotion and the idle re-arm.
        nominals = [
            nominal_data.draw(st.integers(min_value=1, max_value=30)) * 1.0
            for _ in specs
        ]
        fast = run_schedule(NominalShare, True, specs, nominals=nominals)
        dense = run_schedule(NominalShare, False, specs, nominals=nominals)
        assert_equivalent(fast, dense)

    @given(specs=FLOW_SPECS, nominal_data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_under_capacity_no_aborts_is_bitwise(self, nominal_data, specs):
        """While feasible and abort-free, the fast path prices each flow
        with the same float expressions as the dense engine: completion
        times and order are *exactly* equal — the invariant the golden
        histories ride on."""
        specs = [(start, bits, None) for start, bits, _ in specs]
        nominals = [
            nominal_data.draw(st.integers(min_value=1, max_value=3)) * 1.0
            for _ in specs
        ]
        # Max 12 flows x nominal 3 = 36 < 40: never oversubscribed.
        fast = run_schedule(NominalShare, True, specs, nominals=nominals)
        dense = run_schedule(NominalShare, False, specs, nominals=nominals)
        assert_equivalent(fast, dense, exact=True)

    def test_clamped_rate_fn_demotion_rescales_survivors(self):
        """A clamping ``rate_fn`` keeps a flow's bitrate unchanged under
        dense rescaling, so demotion must cancel its static-era
        completion — a surviving static finisher would complete the flow
        without re-dividing the medium, leaving the other flows at stale
        scaled-down rates."""
        specs = [(0, 600, None), (4, 600, None)]
        nominals = [60.0, 60.0]
        rate_fns = [lambda hz: min(hz, 50.0), None]
        fast = run_schedule(
            NominalShare,
            True,
            specs,
            capacity=100.0,
            nominals=nominals,
            rate_fns=rate_fns,
        )
        dense = run_schedule(
            NominalShare,
            False,
            specs,
            capacity=100.0,
            nominals=nominals,
            rate_fns=rate_fns,
        )
        assert_equivalent(fast, dense)
        # The clamped flow finishes first; the survivor must then speed
        # up to its full (feasible) nominal rate, not stay rescaled.
        assert fast[0][1] == pytest.approx(dense[0][1], rel=1e-12)

    @given(specs=FLOW_SPECS, clamp_data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_schedules_with_clamped_rate_fns(
        self, specs, clamp_data
    ):
        """Clamped rate_fns make a flow's bps membership-*insensitive*
        in exactly the regime the static->dense demotion rescales, so
        these schedules exercise the stale-finisher path that linear
        rate_fns (whose bps always changes under rescaling) miss."""
        nominals = [
            clamp_data.draw(st.integers(min_value=1, max_value=30)) * 1.0
            for _ in specs
        ]
        rate_fns = [
            None
            if cap is None
            else (lambda hz, c=float(cap): min(hz, c))
            for cap in (
                clamp_data.draw(
                    st.one_of(st.none(), st.integers(min_value=1, max_value=20))
                )
                for _ in specs
            )
        ]
        fast = run_schedule(
            NominalShare, True, specs, nominals=nominals, rate_fns=rate_fns
        )
        dense = run_schedule(
            NominalShare, False, specs, nominals=nominals, rate_fns=rate_fns
        )
        assert_equivalent(fast, dense)

    def test_abort_settlement_matches_dense(self):
        specs = [(0, 200, None), (2, 200, 0.4), (4, 100, None)]
        nominals = [10.0, 10.0, 10.0]
        fast = run_schedule(NominalShare, True, specs, nominals=nominals)
        dense = run_schedule(NominalShare, False, specs, nominals=nominals)
        assert_equivalent(fast, dense)
        assert fast[1] and dense[1]  # the abort actually happened


class TestContendedPolicyEquivalence:
    """Allocator-backed policies keep the dense engine in both configs."""

    @staticmethod
    def _make_policy():
        from repro.wireless.bandwidth import (
            ProportionalRateAllocation,
            as_share_policy,
        )
        from repro.wireless.channel import WirelessChannel

        channel = WirelessChannel(
            distances_m=np.array([50.0, 80.0, 120.0, 200.0, 320.0, 500.0]),
            rng=np.random.default_rng(7),
        )
        return as_share_policy(ProportionalRateAllocation(CAPACITY), channel)

    @given(specs=FLOW_SPECS, client_data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_schedules_identical(self, specs, client_data):
        clients = [
            client_data.draw(st.integers(min_value=0, max_value=5))
            for _ in specs
        ]
        fast = run_schedule(
            self._make_policy, True, specs, clients=clients
        )
        dense = run_schedule(
            self._make_policy, False, specs, clients=clients
        )
        # Same engine on both sides: bitwise identity, order included.
        assert_equivalent(fast, dense, exact=True)
        assert set(fast[1]) == set(dense[1])
        for i in dense[1]:
            assert fast[1][i] == dense[1][i]


class TestStaleEventHygiene:
    """The queue never accumulates superseded completions unboundedly."""

    def test_pending_counts_live_entries_only(self):
        env = Environment()
        link = FairShareLink(env, 100.0)  # EqualShare fast path
        for _ in range(50):
            link.transfer(100.0)
        # One armed head completion + nothing else: 50 dense-era entries
        # would have been pushed here (one per flow per reallocation).
        assert env.pending == 1
        env.run()
        assert env.pending == 0
        assert env.peak_pending <= 2

    def test_dense_engine_cancels_superseded_completions(self):
        env = Environment()
        link = FairShareLink(env, 100.0, incremental=False)
        for _ in range(40):
            link.transfer(100.0)
        # Dense still pushes one completion per flow per reallocation,
        # but superseded entries are cancelled: live count == flows.
        assert env.pending == 40
        env.run()
        assert env.pending == 0

    def test_churny_run_keeps_queue_bounded(self):
        env = Environment()
        link = FairShareLink(env, 1e6)

        def sender(start, bits):
            yield env.timeout(start)
            yield link.transfer(bits)

        for i in range(300):
            env.process(sender(0.001 * i, 1e3 + i))
        env.run()
        # Every arrival + departure re-arms the single head completion;
        # the heap must stay O(active), not O(events x active).
        assert env.peak_pending <= 300 + 5
        assert env.pending == 0
