"""Resource semaphore, fair-share link and trace recorder tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.sim.resources import FairShareLink, Resource
from repro.sim.trace import TraceEvent, TraceRecorder


class TestResource:
    def _user(self, env, res, name, hold, log):
        grant = res.request()
        yield grant
        log.append(("start", name, env.now))
        yield env.timeout(hold)
        res.release()
        log.append(("end", name, env.now))

    def test_capacity_limits_concurrency(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []
        env.process(self._user(env, res, "a", 2.0, log))
        env.process(self._user(env, res, "b", 2.0, log))
        env.run()
        starts = {n: t for k, n, t in log if k == "start"}
        assert starts == {"a": 0.0, "b": 2.0}

    def test_fifo_grant_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []
        for name in "abc":
            env.process(self._user(env, res, name, 1.0, log))
        env.run()
        start_order = [n for k, n, _ in log if k == "start"]
        assert start_order == ["a", "b", "c"]

    def test_counts(self):
        env = Environment()
        res = Resource(env, capacity=2)
        log = []
        for name in "abc":
            env.process(self._user(env, res, name, 1.0, log))
        env.run(until=0.5)
        assert res.in_use == 2
        assert res.queued == 1

    def test_release_without_request_raises(self):
        env = Environment()
        res = Resource(env, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)


class TestFairShareLink:
    def _sender(self, env, link, name, bits, start, times):
        yield env.timeout(start)
        yield link.transfer(bits)
        times[name] = env.now

    def test_single_flow_exact(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=100.0)
        times = {}
        env.process(self._sender(env, link, "f", 250.0, 0.0, times))
        env.run()
        assert times["f"] == pytest.approx(2.5)

    def test_two_equal_flows_halve_rate(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=10.0)
        times = {}
        for n in ("a", "b"):
            env.process(self._sender(env, link, n, 100.0, 0.0, times))
        env.run()
        assert times["a"] == pytest.approx(20.0)
        assert times["b"] == pytest.approx(20.0)

    def test_staggered_arrival_processor_sharing(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=10.0)
        times = {}
        env.process(self._sender(env, link, "long", 100.0, 0.0, times))
        env.process(self._sender(env, link, "short", 25.0, 5.0, times))
        env.run()
        assert times["short"] == pytest.approx(10.0)
        assert times["long"] == pytest.approx(12.5)

    def test_invalid_args(self):
        env = Environment()
        with pytest.raises(ValueError):
            FairShareLink(env, capacity_bps=0)
        link = FairShareLink(env, 10)
        with pytest.raises(ValueError):
            link.transfer(0)

    @given(st.lists(st.floats(10.0, 500.0), min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_work_conservation(self, sizes):
        """Total completion time of simultaneous flows equals total bits /
        capacity for the last finisher (work-conserving discipline)."""
        env = Environment()
        link = FairShareLink(env, capacity_bps=50.0)
        times = {}
        for i, bits in enumerate(sizes):
            env.process(self._sender(env, link, i, bits, 0.0, times))
        env.run()
        last = max(times.values())
        assert last == pytest.approx(sum(sizes) / 50.0, rel=1e-6)


class TestTraceRecorder:
    def test_record_and_aggregate(self):
        rec = TraceRecorder()
        rec.record(0.0, 1.0, "client_compute", "client-0", 0)
        rec.record(1.0, 3.0, "uplink_smashed", "client-0", 0, nbytes=100)
        rec.record(3.0, 4.0, "server_compute", "edge-server", 0)
        assert len(rec) == 3
        totals = rec.total_time_by_phase()
        assert totals["uplink_smashed"] == pytest.approx(2.0)
        assert rec.total_bytes() == 100
        assert rec.total_bytes_by_phase()["uplink_smashed"] == 100

    def test_unknown_phase_rejected(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError, match="phase"):
            rec.record(0, 1, "teleport", "x", 0)

    def test_event_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(2.0, 1.0, "wait", "x", 0)

    def test_round_span(self):
        rec = TraceRecorder()
        rec.record(1.0, 2.0, "client_compute", "a", round_index=0)
        rec.record(2.0, 5.0, "server_compute", "b", round_index=0)
        rec.record(5.0, 6.0, "client_compute", "a", round_index=1)
        assert rec.round_span(0) == (1.0, 5.0)
        with pytest.raises(ValueError):
            rec.round_span(9)

    def test_busy_time_excludes_wait(self):
        rec = TraceRecorder()
        rec.record(0.0, 2.0, "client_compute", "a", 0)
        rec.record(2.0, 10.0, "wait", "a", 0)
        assert rec.busy_time("a") == pytest.approx(2.0)

    def test_filter_by_phase_and_actor(self):
        rec = TraceRecorder()
        rec.record(0, 1, "client_compute", "client-1", 0)
        rec.record(0, 1, "client_compute", "client-2", 0)
        rec.record(0, 1, "server_compute", "edge-server", 0)
        assert len(rec.filter(phases=["client_compute"])) == 2
        assert len(rec.filter(actor_prefix="client-")) == 2
        assert len(rec.filter(phases=["server_compute"], actor_prefix="edge")) == 1

    def test_actors_listing(self):
        rec = TraceRecorder()
        rec.record(0, 1, "client_compute", "b", 0)
        rec.record(0, 1, "client_compute", "a", 0)
        assert rec.actors() == ["a", "b"]
