"""Background cross-traffic: burst sources contending on the shared link."""

from __future__ import annotations

import pytest

from repro.experiments.catalog import get_scenario
from repro.experiments.runner import make_scheme
from repro.experiments.scenario import fast_scenario
from repro.sim.cross_traffic import CrossTrafficConfig


class TestConfig:
    def test_defaults_validate(self):
        cfg = CrossTrafficConfig()
        assert cfg.num_sources == 1 and 0.0 < cfg.load <= 1.0

    @pytest.mark.parametrize("load", [0.0, -0.5, 1.5])
    def test_load_outside_unit_interval_rejected(self, load):
        with pytest.raises(ValueError):
            CrossTrafficConfig(load=load)

    @pytest.mark.parametrize(
        "kwargs",
        [{"num_sources": 0}, {"mean_idle_s": 0.0}, {"burst_bits": 0.0}],
    )
    def test_degenerate_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CrossTrafficConfig(**kwargs)


class TestSchemeIntegration:
    def test_background_load_slows_the_run(self):
        plain = make_scheme("GSFL", fast_scenario(with_wireless=True).build())
        base = plain.run(1).total_latency_s
        loaded_scheme = make_scheme(
            "GSFL", get_scenario("cross-traffic").build()
        )
        loaded = loaded_scheme.run(1).total_latency_s
        assert loaded > base  # bursts squeeze foreground transmissions

    def test_deterministic_per_seed(self):
        def run():
            scheme = make_scheme("GSFL", get_scenario("cross-traffic").build())
            return scheme.run(1).total_latency_s

        assert run() == run()

    def test_contended_medium_rejected(self):
        scenario = get_scenario("cross-traffic")
        scenario.scheme.medium = "contended"
        with pytest.raises(ValueError, match="static"):
            make_scheme("GSFL", scenario.build())

    def test_weights_unaffected_by_background_load(self):
        """Cross-traffic changes timing only: the trained model is
        bitwise the run without it."""
        plain = make_scheme("GSFL", fast_scenario(with_wireless=True).build())
        loaded = make_scheme("GSFL", get_scenario("cross-traffic").build())
        h_plain, h_loaded = plain.run(1), loaded.run(1)
        assert h_plain.losses == h_loaded.losses
        assert h_plain.accuracies == h_loaded.accuracies
