"""Transport codec battery: round-trip error bounds, wire accounting,
and spec parsing.

The property tests pin the contract the schemes rely on:

* ``intk:K`` round-trips every finite tensor with per-element error at
  most half a quantization step, for every K in [1, 16];
* ``topk:F`` is deterministic, element-preserving, and never keeps a
  smaller magnitude over a larger one;
* wire sizes match the payload accounting of
  :class:`repro.nn.quantize.QuantizedArray`;
* :func:`parse_transport` round-trips every canonical codec name and
  rejects malformed specs with a :class:`ValueError` (the CLI's exit-2
  path).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.quantize import QuantizedArray, quantize_uniform
from repro.sim.transport import (
    TOPK_BYTES_PER_ENTRY,
    Float32Codec,
    IntKCodec,
    TopKCodec,
    parse_transport,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=32, min_value=-1e6, max_value=1e6
)
float_tensors = st.lists(finite_floats, min_size=1, max_size=64).map(
    lambda vals: np.asarray(vals, dtype=np.float64)
)


class TestIntKRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(x=float_tensors, bits=st.integers(min_value=1, max_value=16))
    def test_error_within_half_step(self, x, bits):
        codec = IntKCodec(bits)
        y = codec.apply(x)
        lo, hi = float(x.min()), float(x.max())
        scale = (hi - lo) / (2**bits - 1) if hi > lo else 0.0
        tol = scale / 2 + 1e-6 * (abs(hi) + abs(lo) + scale + 1)
        assert y.shape == x.shape
        assert np.all(np.abs(y - x.astype(y.dtype)) <= tol)

    @settings(max_examples=50, deadline=None)
    @given(
        value=finite_floats,
        size=st.integers(min_value=1, max_value=32),
        bits=st.integers(min_value=1, max_value=16),
    )
    def test_constant_tensor_is_exact(self, value, size, bits):
        x = np.full(size, value, dtype=np.float64)
        np.testing.assert_array_equal(IntKCodec(bits).apply(x), x)

    def test_all_negative_tensor_round_trips(self):
        """Negative zero-point: lo < hi < 0 must still bound the error."""
        x = np.linspace(-8.0, -1.0, 37)
        y = IntKCodec(8).apply(x)
        scale = (x.max() - x.min()) / 255
        assert np.all(np.abs(y - x) <= scale / 2 + 1e-9)

    def test_empty_tensor_passes_through(self):
        x = np.zeros((0,), dtype=np.float64)
        assert IntKCodec(8).apply(x).size == 0

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_rejected(self, bad):
        x = np.array([1.0, bad, 3.0])
        with pytest.raises(ValueError, match="non-finite"):
            IntKCodec(8).apply(x)

    @pytest.mark.parametrize("bits", [0, 17, -1])
    def test_bit_width_validated(self, bits):
        with pytest.raises(ValueError, match="num_bits"):
            IntKCodec(bits)


class TestIntKWireAccounting:
    @settings(max_examples=100, deadline=None)
    @given(x=float_tensors, bits=st.integers(min_value=1, max_value=16))
    def test_wire_bytes_matches_payload_bytes(self, x, bits):
        """Non-constant tensors pay exactly what QuantizedArray bills."""
        q = quantize_uniform(x, num_bits=bits)
        if q.constant:
            return
        assert IntKCodec(bits).wire_bytes(x.size) == q.payload_bytes

    def test_zero_scalars_bills_parameters_only(self):
        assert IntKCodec(8).wire_bytes(0) == QuantizedArray.PARAMS_BYTES

    def test_int8_is_one_byte_per_scalar_plus_params(self):
        assert IntKCodec(8).wire_bytes(1000) == 1000 + QuantizedArray.PARAMS_BYTES

    def test_sub_byte_codes_pack(self):
        # 10 scalars at 4 bits = 5 packed bytes
        assert IntKCodec(4).wire_bytes(10) == 5 + QuantizedArray.PARAMS_BYTES

    def test_codec_compute_scales_with_payload(self):
        codec = IntKCodec(8)
        assert codec.encode_flops(0) == codec.decode_flops(0) == 0.0
        assert codec.encode_flops(100) > codec.decode_flops(100) > 0.0


class TestTopK:
    @settings(max_examples=100, deadline=None)
    @given(
        x=float_tensors,
        fraction=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_sparsification_contract(self, x, fraction):
        codec = TopKCodec(float(fraction))
        y = codec.apply(x)
        k = codec.kept(x.size)
        # Element-preserving: every output is either zero or the input.
        assert np.all((y == 0) | (y == x))
        assert np.count_nonzero(y) <= k
        # No dropped magnitude exceeds a kept one.
        dropped = np.abs(x[(y == 0) & (x != 0)])
        if dropped.size and np.count_nonzero(y):
            assert dropped.max() <= np.abs(y[y != 0]).min()
        # Deterministic replay.
        np.testing.assert_array_equal(y, codec.apply(x))

    def test_full_fraction_is_identity(self):
        x = np.arange(-5.0, 5.0)
        np.testing.assert_array_equal(TopKCodec(1.0).apply(x), x)

    def test_keeps_at_least_one_entry(self):
        codec = TopKCodec(0.01)
        assert codec.kept(3) == 1
        y = codec.apply(np.array([0.1, -7.0, 2.0]))
        np.testing.assert_array_equal(y, [0.0, -7.0, 0.0])

    def test_wire_bytes(self):
        codec = TopKCodec(0.1)
        assert codec.wire_bytes(1000) == 100 * TOPK_BYTES_PER_ENTRY
        assert codec.wire_bytes(0) == 0

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            TopKCodec(0.5).apply(np.array([1.0, np.nan]))

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_fraction_validated(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            TopKCodec(fraction)


class TestParseTransport:
    @pytest.mark.parametrize(
        "spec", ["float32", "int8", "intk:4", "intk:16", "topk:0.1", "topk:1"]
    )
    def test_canonical_names_round_trip(self, spec):
        codec = parse_transport(spec)
        assert parse_transport(codec.name).name == codec.name

    @pytest.mark.parametrize("alias", ["fp32", "none", "", "FLOAT32"])
    def test_identity_aliases(self, alias):
        codec = parse_transport(alias)
        assert not codec.lossy and codec.name == "float32"

    def test_none_means_identity(self):
        assert not parse_transport(None).lossy

    def test_codec_instance_passes_through(self):
        codec = IntKCodec(5)
        assert parse_transport(codec) is codec

    def test_intk_eight_canonicalizes_to_int8(self):
        assert parse_transport("intk:8").name == "int8"

    @pytest.mark.parametrize(
        "spec", ["gzip", "intk", "intk:zero", "intk:0", "intk:17", "topk:x", "topk:0"]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_transport(spec)

    def test_identity_wire_is_raw_float32(self):
        assert Float32Codec().wire_bytes(250) == 1000

    def test_apply_state_round_trips_float_tensors_only(self):
        state = {
            "w": np.linspace(-1.0, 1.0, 9),
            "count": np.array([3], dtype=np.int64),
        }
        out = IntKCodec(2).apply_state(state)
        assert out["count"] is state["count"]
        assert not np.array_equal(out["w"], state["w"])  # lossy at 2 bits
        # The identity codec skips the walk entirely.
        assert Float32Codec().apply_state(state) is state
