"""Demand vocabulary and Runtime tests: static/nominal resolution,
persistent absolute clock, straggler multipliers, contended medium."""

from __future__ import annotations

import pytest

from repro.schemes.base import Activity, Stage
from repro.sim.engine import Environment
from repro.sim.resources import EqualShare, FairShareLink, NominalShare
from repro.sim.runtime import (
    ComputeDemand,
    FixedDemand,
    Runtime,
    TransmitDemand,
    TransmitLeg,
)
from repro.sim.trace import TraceRecorder


def identity_leg(nbits, client=0):
    """Leg whose bitrate equals its allocated capacity (rate_fn = id)."""
    return TransmitLeg(nbits=nbits, client=client, rate_fn=lambda hz: hz)


class TestDemands:
    def test_fixed_demand_views(self):
        d = FixedDemand(2.5)
        assert d.lower_bound_s == d.nominal_s == 2.5
        with pytest.raises(ValueError):
            FixedDemand(-1.0)

    def test_compute_demand_seconds(self):
        d = ComputeDemand(flops=1e9, flops_per_s=2e8, client=3)
        assert d.base_seconds == pytest.approx(5.0)
        assert d.lower_bound_s == d.nominal_s == d.base_seconds

    def test_compute_demand_multiplier(self):
        one = ComputeDemand(flops=1e9, flops_per_s=1e9)
        fused = ComputeDemand(flops=1e9, flops_per_s=1e9, multiplier=6.0)
        assert fused.base_seconds == pytest.approx(6.0 * one.base_seconds)

    def test_compute_demand_validation(self):
        with pytest.raises(ValueError):
            ComputeDemand(flops=-1.0, flops_per_s=1.0)
        with pytest.raises(ValueError):
            ComputeDemand(flops=1.0, flops_per_s=0.0)

    def test_transmit_demand_nominal_and_lower_bound(self):
        d = TransmitDemand(
            legs=(identity_leg(100.0),), nominal_hz=10.0, total_hz=50.0
        )
        assert d.nominal_s == pytest.approx(10.0)  # 100 bits at 10 bps
        assert d.lower_bound_s == pytest.approx(2.0)  # whole medium: 50 bps
        assert d.lower_bound_s <= d.nominal_s

    def test_transmit_demand_legs_sum(self):
        d = TransmitDemand(
            legs=(identity_leg(100.0), identity_leg(50.0, client=1)),
            nominal_hz=10.0,
            total_hz=10.0,
        )
        assert d.nominal_s == pytest.approx(15.0)

    def test_transmit_demand_validation(self):
        with pytest.raises(ValueError):
            TransmitDemand(legs=(), nominal_hz=1.0, total_hz=1.0)
        with pytest.raises(ValueError):
            TransmitDemand(legs=(identity_leg(1.0),), nominal_hz=2.0, total_hz=1.0)


def _one_stage(activities, track="t"):
    stage = Stage("s")
    stage.extend(track, activities)
    return stage


class TestRuntimeStatic:
    def test_compute_resolved_from_flops(self):
        runtime = Runtime()
        stage = _one_stage(
            [Activity(ComputeDemand(1e9, 2.5e8, client=0), "client_compute", "client-0")]
        )
        assert runtime.execute_round([stage], None, 0) == pytest.approx(4.0)

    def test_transmit_resolved_at_nominal_share(self):
        runtime = Runtime(total_bandwidth_hz=100.0)
        demand = TransmitDemand(
            legs=(identity_leg(300.0),), nominal_hz=30.0, total_hz=100.0
        )
        stage = _one_stage([Activity(demand, "uplink_smashed", "client-0")])
        # 300 bits at the nominal 30 bps — not at the full 100 bps.
        assert runtime.execute_round([stage], None, 0) == pytest.approx(10.0)

    def test_concurrent_nominal_flows_do_not_interact(self):
        """Static subchannels: a lone transmitter gains nothing from the
        other subchannel sitting idle."""
        runtime = Runtime(total_bandwidth_hz=100.0)
        fast = TransmitDemand(legs=(identity_leg(50.0, 0),), nominal_hz=50.0, total_hz=100.0)
        slow = TransmitDemand(legs=(identity_leg(500.0, 1),), nominal_hz=50.0, total_hz=100.0)
        stage = Stage("s")
        stage.add("a", Activity(fast, "uplink_smashed", "client-0"))
        stage.add("b", Activity(slow, "uplink_smashed", "client-1"))
        assert runtime.execute_round([stage], None, 0) == pytest.approx(10.0)

    def test_straggler_multiplier_applies_to_client_compute_only(self):
        runtime = Runtime()
        stage = Stage("s")
        stage.add("c", Activity(ComputeDemand(100.0, 100.0, client=2), "client_compute", "client-2"))
        stage.add("s", Activity(ComputeDemand(100.0, 100.0, client=None), "server_compute", "edge-server"))
        total = runtime.execute_round([stage], None, 0, compute_slowdown={2: 4.0})
        assert total == pytest.approx(4.0)  # client 1 s -> 4 s; server stays 1 s

    def test_clock_persists_across_rounds(self):
        runtime = Runtime()
        stage = _one_stage([Activity(1.5, "wait", "a")])
        runtime.execute_round([stage], None, 0)
        stage2 = _one_stage([Activity(2.0, "wait", "a")])
        runtime.execute_round([stage2], None, 1)
        assert runtime.now == pytest.approx(3.5)

    def test_trace_records_absolute_times(self):
        runtime = Runtime()
        rec = TraceRecorder()
        runtime.execute_round([_one_stage([Activity(1.0, "wait", "a")])], rec, 0)
        runtime.execute_round([_one_stage([Activity(1.0, "wait", "a")])], rec, 1)
        assert rec.events[1].start == pytest.approx(1.0)
        assert rec.events[1].end == pytest.approx(2.0)

    def test_device_resource_is_fifo_capacity_one(self):
        runtime = Runtime()
        res = runtime.device(0)
        assert res.capacity == 1
        assert runtime.device(0) is res


class TestRuntimeContended:
    def test_equal_share_policy_splits_among_active(self):
        """Two identity-rate flows on a contended medium halve each other;
        after the short one leaves, the long one speeds back up."""
        runtime = Runtime(total_bandwidth_hz=10.0, share_policy=EqualShare())
        short = TransmitDemand(legs=(identity_leg(25.0, 0),), nominal_hz=5.0, total_hz=10.0)
        long = TransmitDemand(legs=(identity_leg(100.0, 1),), nominal_hz=5.0, total_hz=10.0)
        stage = Stage("s")
        stage.add("a", Activity(short, "uplink_smashed", "client-0"))
        stage.add("b", Activity(long, "uplink_smashed", "client-1"))
        rec = TraceRecorder()
        total = runtime.execute_round([stage], rec, 0)
        # both at 5 bps until t=5 (short done); long then at 10 bps for
        # its remaining 75 bits -> 5 + 7.5 = 12.5
        assert total == pytest.approx(12.5)
        by_actor = {e.actor: e for e in rec.events}
        assert by_actor["client-0"].end == pytest.approx(5.0)
        assert by_actor["client-1"].end == pytest.approx(12.5)

    def test_contended_never_beats_lower_bound(self):
        runtime = Runtime(total_bandwidth_hz=10.0, share_policy=EqualShare())
        demand = TransmitDemand(legs=(identity_leg(100.0, 0),), nominal_hz=5.0, total_hz=10.0)
        stage = _one_stage([Activity(demand, "uplink_smashed", "client-0")])
        total = runtime.execute_round([stage], None, 0)
        # lone flow gets the whole medium: resolves at the lower bound,
        # faster than nominal
        assert total == pytest.approx(demand.lower_bound_s)
        assert total < demand.nominal_s


class TestFairShareLinkMembership:
    """Flows joining/leaving mid-transfer recompute completion times."""

    def _sender(self, env, link, bits, start, times, key, **kw):
        yield env.timeout(start)
        yield link.transfer(bits, **kw)
        times[key] = env.now

    def test_join_mid_transfer_slows_existing_flow(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=10.0)
        times = {}
        env.process(self._sender(env, link, 100.0, 0.0, times, "first"))
        env.process(self._sender(env, link, 30.0, 4.0, times, "second"))
        env.run()
        # first: 40 bits by t=4, then 5 bps; second finishes 30 bits at
        # t=10, first's remaining 30 bits then at 10 bps -> 13
        assert times["second"] == pytest.approx(10.0)
        assert times["first"] == pytest.approx(13.0)

    def test_leave_mid_transfer_speeds_up_remaining(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=12.0)
        times = {}
        env.process(self._sender(env, link, 60.0, 0.0, times, "short"))
        env.process(self._sender(env, link, 120.0, 0.0, times, "long"))
        env.run()
        # both at 6 bps; short done at 10; long's remaining 60 at 12 bps
        assert times["short"] == pytest.approx(10.0)
        assert times["long"] == pytest.approx(15.0)

    def test_three_way_churn(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=30.0)
        times = {}
        env.process(self._sender(env, link, 300.0, 0.0, times, "a"))
        env.process(self._sender(env, link, 150.0, 0.0, times, "b"))
        env.process(self._sender(env, link, 75.0, 5.0, times, "c"))
        env.run()
        # t<5: a,b at 15 bps (a:225, b:75 left). t>=5: 10 bps each.
        # c (75) and b (75) finish at t=12.5; a (150 left) then 30 bps -> 17.5
        assert times["b"] == pytest.approx(12.5)
        assert times["c"] == pytest.approx(12.5)
        assert times["a"] == pytest.approx(17.5)

    def test_nominal_share_ignores_membership(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=100.0, policy=NominalShare())
        times = {}
        env.process(
            self._sender(env, link, 100.0, 0.0, times, "a", nominal=20.0)
        )
        env.process(
            self._sender(env, link, 100.0, 1.0, times, "b", nominal=20.0)
        )
        env.run()
        # Each holds its 20 bps subchannel regardless of the other.
        assert times["a"] == pytest.approx(5.0)
        assert times["b"] == pytest.approx(6.0)

    def test_nominal_share_requires_nominal(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=10.0, policy=NominalShare())

        def proc():
            yield link.transfer(10.0)  # no nominal declared

        env.process(proc())
        with pytest.raises(ValueError, match="nominal"):
            env.run()

    def test_nominal_share_oversubscription_scales_down(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=10.0, policy=NominalShare())
        times = {}
        for key in ("a", "b"):
            env.process(
                self._sender(env, link, 80.0, 0.0, times, key, nominal=8.0)
            )
        env.run()
        # 2 x 8 bps demanded of a 10 bps link -> both scaled to 5 bps.
        assert times["a"] == pytest.approx(16.0)
        assert times["b"] == pytest.approx(16.0)

    def test_rate_fn_translates_allocation(self):
        env = Environment()
        link = FairShareLink(env, capacity_bps=10.0)
        times = {}
        env.process(
            self._sender(
                env, link, 100.0, 0.0, times, "f", rate_fn=lambda hz: 2.0 * hz
            )
        )
        env.run()
        # Lone flow allocated all 10 units; rate_fn doubles them.
        assert times["f"] == pytest.approx(5.0)


class TestResourceFifoOrder:
    """FIFO grant order under interleaved request/release patterns."""

    def _user(self, env, res, name, hold, log):
        grant = res.request()
        yield grant
        log.append((name, env.now))
        yield env.timeout(hold)
        res.release()

    def test_grant_order_follows_request_order_with_unequal_holds(self):
        env = Environment()
        from repro.sim.resources import Resource

        res = Resource(env, capacity=2)
        log = []
        for name, hold in (("a", 5.0), ("b", 1.0), ("c", 3.0), ("d", 1.0), ("e", 1.0)):
            env.process(self._user(env, res, name, hold, log))
        env.run()
        names = [n for n, _ in log]
        assert names == ["a", "b", "c", "d", "e"]
        starts = dict(log)
        # c takes b's slot at t=1, d takes c's slot at t=4, e takes a's at 5
        assert starts["c"] == pytest.approx(1.0)
        assert starts["d"] == pytest.approx(4.0)
        assert starts["e"] == pytest.approx(5.0)
