"""Property-based invariants of the DES kernel and the aggregation engine.

Hypothesis-driven checks of three guarantees the rest of the system
leans on:

* **determinism** — for a fixed workload the kernel resolves events in
  exactly the same order and at exactly the same times, run after run
  (ties break by insertion order, never by hash or allocation accident);
* **lower bound** — no staleness policy, straggler injection, or device
  contention can resolve a round *faster* than the analytic
  ``Stage.duration_s`` floor (transmissions priced with the whole medium,
  compute without slowdown);
* **staleness bound** — under ``bounded:K`` the staleness recorded for
  every commit never exceeds ``K``, for any unit count, round count, or
  per-unit-round duration profile.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes.base import Activity, Stage
from repro.sim.runtime import ComputeDemand, FixedDemand, Runtime
from repro.sim.server import (
    AggregationServer,
    BoundedStaleness,
    PolynomialStaleness,
    UnitRoundWork,
)

#: keep the suite fast — these are smoke-sized property sweeps
COMMON = dict(max_examples=30, deadline=None)

durations = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
flops = st.floats(
    min_value=1.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
slowdown_factors = st.floats(
    min_value=1.0, max_value=16.0, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
@st.composite
def stage_workloads(draw):
    """A random one-stage workload: per-track compute/fixed activities."""
    num_tracks = draw(st.integers(min_value=1, max_value=4))
    tracks = []
    for t in range(num_tracks):
        acts = draw(
            st.lists(
                st.one_of(
                    durations.map(FixedDemand),
                    st.tuples(flops, st.integers(0, 3)).map(
                        lambda p: ComputeDemand(p[0], 1e4, client=p[1])
                    ),
                ),
                min_size=1,
                max_size=5,
            )
        )
        tracks.append(acts)
    return tracks


def replay(tracks, slowdowns=None):
    """Resolve the workload on a fresh runtime; returns the trace log."""
    from repro.sim.trace import TraceRecorder

    stage = Stage("work")
    for t, demands in enumerate(tracks):
        for demand in demands:
            stage.add(f"track-{t}", Activity(demand, "client_compute", f"track-{t}"))
    runtime = Runtime()
    recorder = TraceRecorder()
    total = runtime.execute_round([stage], recorder, 0, compute_slowdown=slowdowns)
    log = [(e.start, e.end, e.actor) for e in recorder]
    return total, log


class TestDeterminism:
    @given(tracks=stage_workloads())
    @settings(**COMMON)
    def test_identical_workloads_replay_identically(self, tracks):
        assert replay(tracks) == replay(tracks)

    @given(tracks=stage_workloads(), factor=slowdown_factors)
    @settings(**COMMON)
    def test_determinism_holds_under_slowdowns(self, tracks, factor):
        slowdowns = {0: factor, 1: factor * 2}
        assert replay(tracks, slowdowns) == replay(tracks, slowdowns)


# ----------------------------------------------------------------------
# lower bound
# ----------------------------------------------------------------------
class TestLowerBound:
    @given(tracks=stage_workloads(), factor=slowdown_factors)
    @settings(**COMMON)
    def test_stage_floor_never_undercut(self, tracks, factor):
        """``Stage.duration_s`` is a true floor: straggler slowdowns and
        device serialization only ever push the resolved span up."""
        stage = Stage("work")
        for t, demands in enumerate(tracks):
            for demand in demands:
                stage.add(
                    f"track-{t}", Activity(demand, "client_compute", f"track-{t}")
                )
        runtime = Runtime()
        total = runtime.execute_round(
            [stage], None, 0, compute_slowdown={0: factor, 2: factor}
        )
        assert total >= stage.duration_s * (1 - 1e-9)

    @given(
        profile=st.lists(
            st.lists(durations, min_size=1, max_size=3), min_size=1, max_size=4
        ),
        lag=st.integers(min_value=1, max_value=3),
    )
    @settings(**COMMON)
    def test_no_policy_undercuts_per_activity_floor(self, profile, lag):
        """Under any staleness policy each unit still needs at least the
        sum of its own activity floors — pipelines overlap, activities
        within one pipeline never do."""
        runtime = Runtime()
        policy = BoundedStaleness(lag)
        server = AggregationServer(
            runtime, policy, num_units=len(profile), total_weight=float(len(profile)),
            apply_update=lambda payload, alpha: None,
        )
        num_rounds = 2

        def work_fn(unit, round_index):
            acts = [
                Activity(FixedDemand(d), "client_compute", f"unit-{unit}")
                for d in profile[unit]
            ]
            return UnitRoundWork(acts, payload=unit, weight=1.0)

        server.run(work_fn, num_rounds)
        floor = max(num_rounds * sum(ds) for ds in profile)
        assert runtime.now >= floor * (1 - 1e-9)


# ----------------------------------------------------------------------
# staleness bound
# ----------------------------------------------------------------------
@st.composite
def unit_speed_profiles(draw):
    """Per-unit, per-round durations for a synthetic async fleet."""
    num_units = draw(st.integers(min_value=2, max_value=5))
    num_rounds = draw(st.integers(min_value=1, max_value=5))
    table = [
        [draw(durations) for _ in range(num_rounds)] for _ in range(num_units)
    ]
    return table, num_rounds


def drive_server(policy, table, num_rounds, runtime=None):
    runtime = runtime or Runtime()
    server = AggregationServer(
        runtime,
        policy,
        num_units=len(table),
        total_weight=float(len(table)),
        apply_update=lambda payload, alpha: None,
    )

    def work_fn(unit, round_index):
        demand = FixedDemand(table[unit][round_index])
        return UnitRoundWork(
            [Activity(demand, "client_compute", f"unit-{unit}")],
            payload=(unit, round_index),
            weight=1.0,
        )

    server.run(work_fn, num_rounds)
    return server


class TestStalenessBound:
    @given(profile=unit_speed_profiles(), lag=st.integers(min_value=1, max_value=4))
    @settings(**COMMON)
    def test_bounded_policy_never_exceeds_k(self, profile, lag):
        table, num_rounds = profile
        server = drive_server(BoundedStaleness(lag), table, num_rounds)
        assert len(server.updates) == len(table) * num_rounds
        assert all(u.staleness <= lag for u in server.updates)
        assert all(u.staleness >= 0 for u in server.updates)

    @given(profile=unit_speed_profiles())
    @settings(**COMMON)
    def test_unbounded_policy_staleness_at_most_rounds(self, profile):
        table, num_rounds = profile
        server = drive_server(PolynomialStaleness(), table, num_rounds)
        # Nobody can be more than the whole run ahead of anyone else.
        assert all(0 <= u.staleness < num_rounds for u in server.updates)

    @given(profile=unit_speed_profiles(), lag=st.integers(min_value=1, max_value=4))
    @settings(**COMMON)
    def test_engine_commit_log_deterministic(self, profile, lag):
        table, num_rounds = profile
        first = drive_server(BoundedStaleness(lag), table, num_rounds)
        second = drive_server(BoundedStaleness(lag), table, num_rounds)
        assert first.updates == second.updates

    @given(profile=unit_speed_profiles())
    @settings(**COMMON)
    def test_every_unit_completes_every_round(self, profile):
        table, num_rounds = profile
        server = drive_server(BoundedStaleness(1), table, num_rounds)
        assert server.completed == [num_rounds] * len(table)
