"""Partial-transfer resume semantics for retried uploads.

``FairShareLink.abort()`` settles the service an aborted flow already
received; the retry path must *use* that settlement: a re-attempted
:class:`TransmitDemand` leg submits exactly ``bits_total -
bits_delivered`` to the medium, and legs a previous attempt completed are
never re-sent.  (Before this fix a retried upload restarted from zero
bytes — the settled service evaporated.)

Compute demands deliberately keep restart-from-scratch semantics: a
preempted job runs to the failure instant and its work is abandoned
(pinned by ``tests/sim/test_fault_injection.py``).
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.schemes.base import Activity
from repro.sim.runtime import Runtime, TrackRecovery, TransmitDemand, TransmitLeg
from repro.sim.trace import TraceRecorder


class _ScriptedFailure:
    """Client 0 fails at ``fail_at`` and is back up from ``recover_at`` on."""

    def __init__(self, fail_at: float, recover_at: float) -> None:
        self.fail_at = fail_at
        self.recover_at = recover_at

    def up_deadline(self, client: int, now: float) -> float:
        return self.fail_at if now < self.recover_at else float("inf")

    def recovery_s(self, client: int, now: float) -> float:
        return self.recover_at


def instrumented_runtime(capacity_bps: float, injector) -> tuple[Runtime, list[float]]:
    """Runtime whose medium logs every submitted flow size."""
    runtime = Runtime(total_bandwidth_hz=capacity_bps)
    runtime.failure_injector = injector
    submitted: list[float] = []
    original = runtime.medium.transfer

    def logging_transfer(nbits, **kwargs):
        submitted.append(nbits)
        return original(nbits, **kwargs)

    runtime.medium.transfer = logging_transfer
    return runtime, submitted


def transmit_activity(legs_bits: list[float], hz: float = 1e3) -> Activity:
    demand = TransmitDemand(
        legs=tuple(
            TransmitLeg(nbits=bits, client=0, rate_fn=lambda allocated: allocated)
            for bits in legs_bits
        ),
        nominal_hz=hz,
        total_hz=hz,
    )
    return Activity(demand, "model_upload", "client-0")


def run_one_track(runtime, activities, recorder, recovery):
    proc = runtime.env.process(
        runtime.run_track(activities, recorder, 0, None, recovery)
    )
    runtime.env.run(proc)
    return proc.value


class TestResumeSemantics:
    def test_retried_leg_transmits_exactly_the_remainder(self):
        """1000 bits at 1000 bps, cut at t=0.4: 400 bits are settled, the
        retry at t=0.5 submits exactly 600 bits and finishes at 1.1 s
        (a from-zero restart would finish at 1.5 s)."""
        runtime, submitted = instrumented_runtime(
            1e3, _ScriptedFailure(fail_at=0.4, recover_at=0.5)
        )
        recovery = TrackRecovery(resume_s=lambda c, n: 0.5, max_retries=1)
        recorder = TraceRecorder()
        outcome = run_one_track(
            runtime, [transmit_activity([1000.0])], recorder, recovery
        )
        assert outcome.completed and outcome.retries == 1
        assert submitted == [1000.0, 600.0]
        assert runtime.now == pytest.approx(1.1)
        [abort] = recorder.aborts
        assert abort.time_s == pytest.approx(0.4)

    def test_completed_legs_are_not_resent(self):
        """Two-leg relay cut during the second leg: the retry resumes at
        leg 2's remainder; leg 1 is never on the air again."""
        # Leg 1: 300 bits -> done at 0.3.  Leg 2: 500 bits, cut at 0.4
        # with 100 bits delivered; retry sends the remaining 400.
        runtime, submitted = instrumented_runtime(
            1e3, _ScriptedFailure(fail_at=0.4, recover_at=0.6)
        )
        recovery = TrackRecovery(resume_s=lambda c, n: 0.6, max_retries=1)
        outcome = run_one_track(
            runtime, [transmit_activity([300.0, 500.0])], None, recovery
        )
        assert outcome.completed and outcome.retries == 1
        assert submitted == [300.0, 500.0, 400.0]
        assert runtime.now == pytest.approx(1.0)  # 0.6 resume + 0.4 s remainder

    def test_progress_does_not_leak_across_activities(self):
        """Resume state is per-activity: after a resumed activity
        completes, the next activity's legs start from zero."""
        runtime, submitted = instrumented_runtime(
            1e3, _ScriptedFailure(fail_at=0.4, recover_at=0.5)
        )
        recovery = TrackRecovery(resume_s=lambda c, n: 0.5, max_retries=2)
        activities = [transmit_activity([1000.0]), transmit_activity([200.0])]
        outcome = run_one_track(runtime, activities, None, recovery)
        assert outcome.completed
        assert submitted == [1000.0, 600.0, 200.0]

    @given(
        bits=st.floats(min_value=200.0, max_value=1e5),
        frac=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_retried_flow_transmits_bits_total_minus_bits_delivered(self, bits, frac):
        """Property: whatever the cut instant, the resumed submission is
        exactly ``bits_total - bits_delivered`` as settled by the medium."""
        capacity = 1e3
        fail_at = bits / capacity * frac
        recover_at = fail_at + 0.25
        runtime, submitted = instrumented_runtime(
            capacity, _ScriptedFailure(fail_at=fail_at, recover_at=recover_at)
        )
        recovery = TrackRecovery(resume_s=lambda c, n: recover_at, max_retries=1)
        outcome = run_one_track(
            runtime, [transmit_activity([bits])], None, recovery
        )
        assert outcome.completed and outcome.retries == 1
        assert len(submitted) == 2
        delivered = fail_at * capacity
        assert submitted[0] == pytest.approx(bits)
        assert submitted[1] == pytest.approx(bits - delivered)
        # Total air time = full payload / capacity, split across attempts.
        assert runtime.now == pytest.approx(recover_at + (bits - delivered) / capacity)

    def test_unset_injector_path_untouched(self):
        """Without an injector the medium sees one submission per leg of
        the full size — the resume plumbing costs nothing when disabled."""
        runtime = Runtime(total_bandwidth_hz=1e3)
        submitted: list[float] = []
        original = runtime.medium.transfer

        def logging_transfer(nbits, **kwargs):
            submitted.append(nbits)
            return original(nbits, **kwargs)

        runtime.medium.transfer = logging_transfer
        outcome = run_one_track(
            runtime, [transmit_activity([300.0, 500.0])], None, None
        )
        assert outcome.completed
        assert submitted == [300.0, 500.0]
        assert runtime.now == pytest.approx(0.8)
