"""Regenerate the golden training-history fixtures.

Run from the repository root **only when a change is *supposed* to alter
training histories** (and say so in the PR)::

    PYTHONPATH=src python tests/fixtures/histories/regenerate.py

One ``.npz`` per scheme, produced by the canonical parity configuration
(`fast_scenario` with wireless, float64 substrate, serial executor,
static medium, the round count pinned in ``GOLDEN_ROUNDS``).  Float64 is
the seed commit's precision *and* what the test suite pins session-wide
(see ``tests/conftest.py``), so fixtures and test runs agree bit-for-bit.
``tests/schemes/test_golden_histories.py`` asserts every scheme — and the
barrier-free engine in its synchronous limit — still reproduces them
exactly.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro import nn
from repro.experiments.runner import SCHEME_REGISTRY, make_scheme
from repro.experiments.scenario import fast_scenario

#: rounds per golden run (eval_every=1 in fast_scenario → one point each)
GOLDEN_ROUNDS = 3

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent


def golden_scenario():
    """The pinned parity configuration (must match the test module)."""
    return fast_scenario(with_wireless=True, seed=0)


def history_arrays(history) -> dict[str, np.ndarray]:
    """A history as the four arrays stored in the fixture."""
    return {
        "rounds": np.asarray([p.round_index for p in history.points], dtype=np.int64),
        "latencies": np.asarray([p.latency_s for p in history.points], dtype=np.float64),
        "losses": np.asarray([p.train_loss for p in history.points], dtype=np.float64),
        "accuracies": np.asarray(
            [p.test_accuracy for p in history.points], dtype=np.float64
        ),
    }


def main() -> int:
    previous = nn.set_default_dtype(np.float64)  # the parity precision
    try:
        for name in sorted(SCHEME_REGISTRY):
            scheme = make_scheme(name, golden_scenario().build())
            history = scheme.run(GOLDEN_ROUNDS)
            path = FIXTURE_DIR / f"{name}.npz"
            np.savez(path, **history_arrays(history))
            print(f"wrote {path}: final acc {history.final_accuracy:.3f}, "
                  f"latency {history.total_latency_s:.3f}s")
    finally:
        nn.set_default_dtype(previous)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
