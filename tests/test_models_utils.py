"""Model zoo, registry and utility-module tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import (
    available_models,
    build_model,
    deepthin_cnn,
    default_cut_layer,
    micro_cnn,
    mlp,
)
from repro.nn.tensor import Tensor
from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.validation import (
    check_in_choices,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestModels:
    def test_deepthin_forward_shape(self):
        model = deepthin_cnn(num_classes=43, image_size=20, seed=0)
        out = model(Tensor(np.zeros((2, 3, 20, 20))))
        assert out.shape == (2, 43)

    def test_micro_cnn_forward_shape(self):
        model = micro_cnn(num_classes=10, image_size=16, seed=0)
        assert model(Tensor(np.zeros((3, 3, 16, 16)))).shape == (3, 10)

    def test_mlp_forward_shape(self):
        model = mlp(num_classes=7, input_shape=(3, 8, 8), hidden=(32,), seed=0)
        assert model(Tensor(np.zeros((4, 3, 8, 8)))).shape == (4, 7)

    def test_image_size_validation(self):
        with pytest.raises(ValueError):
            deepthin_cnn(image_size=18)
        with pytest.raises(ValueError):
            micro_cnn(image_size=10)

    def test_mlp_needs_hidden_layer(self):
        with pytest.raises(ValueError):
            mlp(hidden=())

    def test_models_are_profileable(self):
        for name, shape in (("deepthin", (3, 20, 20)), ("micro_cnn", (3, 16, 16))):
            model = build_model(name, image_size=shape[1])
            prof = nn.profile_model(model, shape)
            assert prof.total_params == model.num_parameters()

    def test_default_cuts_are_valid(self):
        for name in available_models():
            kwargs = {}
            if name in ("deepthin", "micro_cnn"):
                kwargs["image_size"] = 16
            model = build_model(name, **kwargs)
            cut = default_cut_layer(name)
            assert 1 <= cut <= len(model) - 1

    def test_registry_unknown_name(self):
        with pytest.raises(ValueError):
            build_model("resnet152")
        with pytest.raises(ValueError):
            default_cut_layer("resnet152")

    def test_same_seed_same_weights(self):
        a = deepthin_cnn(seed=5)
        b = deepthin_cnn(seed=5)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = deepthin_cnn(seed=1)
        b = deepthin_cnn(seed=2)
        assert any(
            not np.allclose(pa.data, pb.data)
            for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters())
        )


class TestRngUtils:
    def test_new_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_new_rng_from_seed_deterministic(self):
        assert new_rng(3).random() == new_rng(3).random()

    def test_spawn_rngs_independent_and_stable(self):
        a1, a2 = spawn_rngs(7, 2)
        b1, b2 = spawn_rngs(7, 2)
        assert a1.random() == b1.random()
        assert a2.random() == b2.random()
        # children differ from each other
        assert spawn_rngs(7, 2)[0].random() != spawn_rngs(7, 2)[1].random()

    def test_spawn_rngs_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
        assert spawn_rngs(0, 0) == []

    def test_rng_mixin(self):
        class Thing(RngMixin):
            def __init__(self, seed):
                self._init_rng(seed)

        t = Thing(5)
        first = t.rng.random()
        t.reseed(5)
        assert t.rng.random() == first


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.1)

    def test_check_in_choices(self):
        assert check_in_choices("mode", "a", {"a", "b"}) == "a"
        with pytest.raises(ValueError, match="mode"):
            check_in_choices("mode", "z", {"a", "b"})
