"""Figure-harness integration tests: paper-claim *shape* on the fast
scenario.  These are the repo's headline correctness checks; the
full-scale runs live in benchmarks/."""

from __future__ import annotations

import pytest

from repro.experiments.figures import run_fig2a, run_fig2b
from repro.experiments.scenario import fast_scenario


@pytest.fixture(scope="module")
def fig2a_result():
    scenario = fast_scenario(with_wireless=False, num_clients=8, num_groups=2)
    return run_fig2a(scenario, num_rounds=8, target_accuracy=0.4)


class TestFig2aShape:
    def test_all_schemes_present(self, fig2a_result):
        assert set(fig2a_result.histories) == {"CL", "SL", "GSFL", "FL"}

    def test_scheme_ordering_matches_paper(self, fig2a_result):
        """Fig 2(a): CL/SL lead, GSFL comparable, FL far behind."""
        h = fig2a_result.histories
        assert h["CL"].final_accuracy > h["FL"].final_accuracy
        assert h["SL"].final_accuracy > h["FL"].final_accuracy
        assert h["GSFL"].final_accuracy > h["FL"].final_accuracy

    def test_gsfl_accuracy_comparable_to_sl(self, fig2a_result):
        """Paper: "accuracy level comparable to that of the SL scheme"."""
        h = fig2a_result.histories
        assert h["GSFL"].final_accuracy >= h["SL"].final_accuracy - 0.15

    def test_gsfl_converges_faster_than_fl(self, fig2a_result):
        """The paper's "nearly 500% improvement in convergence speed" claim:
        at this small scale we assert the direction and a solid factor."""
        speedup = fig2a_result.gsfl_over_fl_speedup
        assert speedup is not None and speedup > 1.0

    def test_table_renders(self, fig2a_result):
        assert "GSFL" in fig2a_result.table


class TestFig2bShape:
    @pytest.fixture(scope="class")
    def result(self):
        scenario = fast_scenario(with_wireless=True, num_clients=12, num_groups=4)
        return run_fig2b(scenario, num_rounds=10, target_accuracy=0.4)

    def test_histories_have_latency_axis(self, result):
        for h in result.histories.values():
            assert h.total_latency_s > 0

    def test_gsfl_round_latency_below_sl(self, result):
        """GSFL's parallel groups must yield cheaper rounds than serial SL."""
        sl = result.histories["SL"]
        gsfl = result.histories["GSFL"]
        sl_per_round = sl.total_latency_s / sl.points[-1].round_index
        gsfl_per_round = gsfl.total_latency_s / gsfl.points[-1].round_index
        assert gsfl_per_round < sl_per_round

    def test_requires_wireless(self):
        with pytest.raises(ValueError, match="wireless"):
            run_fig2b(fast_scenario(with_wireless=False), num_rounds=1)

    def test_table_renders(self, result):
        assert "latency_s" in result.table
