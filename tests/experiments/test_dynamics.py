"""Scenario-dynamics tests: churn windows, participation, stragglers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.dynamics import ClientDynamics, DynamicsConfig
from repro.experiments.runner import make_scheme
from repro.experiments.scenario import fast_scenario


class TestDynamicsConfig:
    def test_defaults_are_identity(self):
        cfg = DynamicsConfig()
        assert cfg.participation == 1.0
        assert not cfg.has_churn
        assert cfg.straggler_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicsConfig(participation=0.0)
        with pytest.raises(ValueError):
            DynamicsConfig(participation=1.5)
        with pytest.raises(ValueError):
            DynamicsConfig(churn_uptime_s=10.0)  # downtime missing
        with pytest.raises(ValueError):
            DynamicsConfig(straggler_rate=1.5)
        with pytest.raises(ValueError):
            DynamicsConfig(straggler_slowdown=0.5)

    @pytest.mark.parametrize("uptime,downtime", [(0.0, 5.0), (5.0, 0.0), (0.0, 0.0)])
    def test_degenerate_churn_windows_rejected(self, uptime, downtime):
        """A zero-length window makes ``rng.exponential(0)`` emit
        zero-length toggles and the availability trace never advances —
        must fail at construction, not hang at query time."""
        with pytest.raises(ValueError, match="must be > 0"):
            DynamicsConfig(churn_uptime_s=uptime, churn_downtime_s=downtime)

    def test_mutated_degenerate_windows_rejected_by_client_dynamics(self):
        """The config dataclass is mutable; ClientDynamics re-validates so
        a window zeroed after construction still fails loudly instead of
        looping forever inside ``available_at``."""
        cfg = DynamicsConfig(churn_uptime_s=10.0, churn_downtime_s=5.0)
        cfg.churn_uptime_s = 0.0
        with pytest.raises(ValueError, match="churn_uptime_s must be > 0"):
            ClientDynamics(cfg, num_clients=3)


class TestAvailabilityTrace:
    def test_no_churn_always_available(self):
        dyn = ClientDynamics(DynamicsConfig(), num_clients=4)
        assert all(dyn.available_at(c, 1e9) for c in range(4))

    def test_churn_is_deterministic_per_seed(self):
        cfg = DynamicsConfig(churn_uptime_s=10.0, churn_downtime_s=5.0, seed=7)
        a = ClientDynamics(cfg, num_clients=5)
        b = ClientDynamics(cfg, num_clients=5)
        ts = np.linspace(0.0, 200.0, 101)
        for c in range(5):
            assert [a.available_at(c, t) for t in ts] == [
                b.available_at(c, t) for t in ts
            ]

    def test_churn_independent_of_query_order(self):
        cfg = DynamicsConfig(churn_uptime_s=3.0, churn_downtime_s=3.0, seed=1)
        forward = ClientDynamics(cfg, num_clients=3)
        backward = ClientDynamics(cfg, num_clients=3)
        got_fwd = {c: forward.available_at(c, 50.0) for c in range(3)}
        got_bwd = {c: backward.available_at(c, 50.0) for c in reversed(range(3))}
        assert got_fwd == got_bwd

    def test_clients_start_up_and_eventually_cycle(self):
        cfg = DynamicsConfig(churn_uptime_s=2.0, churn_downtime_s=2.0, seed=0)
        dyn = ClientDynamics(cfg, num_clients=8)
        assert all(dyn.available_at(c, 0.0) for c in range(8))
        # Over a long horizon every client must have been down at least once.
        ts = np.linspace(0.0, 100.0, 2001)
        for c in range(8):
            assert not all(dyn.available_at(c, t) for t in ts)

    def test_windows_alternate_and_tile(self):
        cfg = DynamicsConfig(churn_uptime_s=4.0, churn_downtime_s=2.0, seed=3)
        dyn = ClientDynamics(cfg, num_clients=1)
        windows = dyn.availability_windows(0, until=60.0)
        assert windows, "expected at least one up-window"
        for start, end in windows:
            assert end > start
            mid = (start + end) / 2
            assert dyn.available_at(0, mid)


class TestRoundConditions:
    def test_full_participation_without_dynamics_features(self):
        dyn = ClientDynamics(DynamicsConfig(), num_clients=6)
        cond = dyn.begin_round(0, 0.0)
        assert cond.participants == tuple(range(6))
        assert cond.slowdowns == {}

    def test_partial_participation_samples_subset(self):
        dyn = ClientDynamics(DynamicsConfig(participation=0.5, seed=2), num_clients=10)
        cond = dyn.begin_round(0, 0.0)
        assert len(cond.participants) == 5
        assert set(cond.participants) <= set(range(10))
        assert list(cond.participants) == sorted(cond.participants)

    def test_participation_respects_min_participants(self):
        dyn = ClientDynamics(
            DynamicsConfig(participation=0.01, min_participants=2), num_clients=8
        )
        cond = dyn.begin_round(0, 0.0)
        assert len(cond.participants) == 2

    def test_stragglers_have_configured_slowdown(self):
        dyn = ClientDynamics(
            DynamicsConfig(straggler_rate=1.0, straggler_slowdown=3.5), num_clients=4
        )
        cond = dyn.begin_round(0, 0.0)
        assert set(cond.slowdowns) == set(range(4))
        assert all(v == 3.5 for v in cond.slowdowns.values())


class TestUnitRoundConditions:
    """Per-unit resolution used by barrier-free aggregation pipelines."""

    def test_identity_without_disturbances(self):
        dyn = ClientDynamics(DynamicsConfig(), num_clients=6)
        members, slowdowns = dyn.unit_round_conditions([1, 3, 5], 42.0)
        assert members == [1, 3, 5] and slowdowns == {}

    def test_members_filtered_by_churn_trace(self):
        cfg = DynamicsConfig(churn_uptime_s=5.0, churn_downtime_s=5.0, seed=2)
        dyn = ClientDynamics(cfg, num_clients=6)
        t = 100.0
        members, _ = dyn.unit_round_conditions(list(range(6)), t)
        assert members == [c for c in range(6) if dyn.available_at(c, t)]

    def test_participation_keeps_at_least_one_member(self):
        cfg = DynamicsConfig(participation=0.01, seed=0)
        dyn = ClientDynamics(cfg, num_clients=4)
        for _ in range(20):
            members, _ = dyn.unit_round_conditions([0, 1, 2, 3], 0.0)
            assert members  # a unit never stalls on sampling alone

    def test_stragglers_only_among_members(self):
        cfg = DynamicsConfig(straggler_rate=1.0, straggler_slowdown=3.0)
        dyn = ClientDynamics(cfg, num_clients=6)
        members, slowdowns = dyn.unit_round_conditions([2, 4], 0.0)
        assert set(slowdowns) == set(members) == {2, 4}
        assert all(v == 3.0 for v in slowdowns.values())

    def test_next_recovery_restricted_to_unit_members(self):
        cfg = DynamicsConfig(churn_uptime_s=1.0, churn_downtime_s=50.0, seed=3)
        dyn = ClientDynamics(cfg, num_clients=6)
        t = 200.0
        down = [c for c in range(6) if not dyn.available_at(c, t)]
        if len(down) >= 2:
            only_last = dyn.next_recovery_s(t, clients=[down[-1]])
            assert only_last is not None and only_last > t
            # restricting the scan can only delay (or match) the fleet-wide
            # earliest recovery
            assert only_last >= dyn.next_recovery_s(t)


class TestSchemesUnderDynamics:
    def _scenario(self, **dyn_kwargs):
        scenario = fast_scenario(with_wireless=True)
        scenario.dynamics = DynamicsConfig(**dyn_kwargs)
        return scenario

    def test_fl_partial_participation_traces_fewer_uploads(self):
        scenario = self._scenario(participation=0.5, seed=0)
        scheme = make_scheme("FL", scenario.build())
        scheme.run(1)
        uploads = scheme.recorder.filter(phases=["model_upload"])
        assert len(uploads) == 3  # 6 clients at 50%

    @pytest.mark.parametrize("name", ["FL", "SL", "SplitFed", "PSL", "GSFL"])
    def test_schemes_run_under_churn(self, name):
        scenario = self._scenario(
            churn_uptime_s=0.5, churn_downtime_s=0.5, participation=0.9, seed=4
        )
        scheme = make_scheme(name, scenario.build())
        history = scheme.run(3)
        assert len(history) == 3
        assert np.isfinite(history.total_latency_s)

    def test_gsfl_churn_changes_latency_and_participation(self):
        plain = make_scheme("GSFL", fast_scenario(with_wireless=True).build()).run(3)
        scenario = self._scenario(churn_uptime_s=0.4, churn_downtime_s=0.4, seed=9)
        churned_scheme = make_scheme("GSFL", scenario.build())
        churned = churned_scheme.run(3)
        assert churned.total_latency_s != pytest.approx(plain.total_latency_s)

    def test_straggler_latency_grows_with_slowdown(self):
        lat = []
        for slowdown in (1.0, 8.0):
            scenario = self._scenario(
                straggler_rate=1.0, straggler_slowdown=slowdown, seed=0
            )
            lat.append(
                make_scheme("GSFL", scenario.build()).run(1).total_latency_s
            )
        assert lat[1] > lat[0] * 1.5

    def test_all_down_window_advances_clock_instead_of_freezing(self):
        """When every client is down at a round start the driver waits
        for the first recovery instead of replaying the same all-down
        snapshot at a frozen clock forever."""
        # Mean up-window of 1 ms vs rounds of ~100 ms: after round 0
        # every client is down with overwhelming probability, so round 1
        # must wait out the first recovery instead of freezing at 0 cost.
        scenario = self._scenario(
            churn_uptime_s=0.001, churn_downtime_s=50.0, seed=3
        )
        scheme = make_scheme("FL", scenario.build())
        history = scheme.run(3)
        assert len(history) == 3
        assert history.total_latency_s > 1.0  # spans a waited-out window
        lats = [p.latency_s for p in history.points]
        assert all(b > a for a, b in zip(lats, lats[1:]))

    def test_next_recovery_reports_earliest_up_transition(self):
        cfg = DynamicsConfig(churn_uptime_s=1.0, churn_downtime_s=100.0, seed=3)
        dyn = ClientDynamics(cfg, num_clients=6)
        t = 500.0
        resume = dyn.next_recovery_s(t)
        if resume is not None:
            assert resume > t
            down_now = [c for c in range(6) if not dyn.available_at(c, t)]
            assert any(dyn.available_at(c, resume) for c in down_now)
        assert ClientDynamics(DynamicsConfig(), 3).next_recovery_s(0.0) is None

    def test_all_clients_down_skips_round_gracefully(self):
        """A round with zero participants must not crash; the model simply
        carries over and the round costs nothing."""
        from repro.experiments.dynamics import RoundConditions

        scenario = fast_scenario(with_wireless=True)
        built = scenario.build()
        scheme = make_scheme("FL", built)

        class Nobody:
            def begin_round(self, r, now):
                return RoundConditions(r, (), (), {})

        scheme.dynamics = Nobody()
        history = scheme.run(1)
        assert len(history) == 1
        assert history.total_latency_s == 0.0


class TestParticipationRounding:
    """The sample size rounds half away from zero: ``floor(p*n + 0.5)``.

    The old ``int(round(p * n))`` banker's-rounded half-cases to even
    (0.5 of 5 available -> 2), so the sampled fraction dipped or jumped
    depending on fleet-size parity.
    """

    @pytest.mark.parametrize(
        "participation,n,expected",
        [
            (0.5, 5, 3),    # the banker's-rounding case: round(2.5) == 2
            (0.5, 10, 5),
            (0.25, 10, 3),  # round(2.5) == 2 here too
            (0.5, 6, 3),
            (0.1, 5, 1),    # round(0.5) == 0, then clamped; now direct
            (0.75, 2, 2),
            (0.5, 1, 1),
        ],
    )
    def test_half_case_grid(self, participation, n, expected):
        dyn = ClientDynamics(
            DynamicsConfig(participation=participation, seed=0), num_clients=n
        )
        cond = dyn.begin_round(0, 0.0)
        assert len(cond.participants) == expected


class TestUnitMemberOrder:
    """Unit participant lists preserve the caller's member order on both
    sampling paths (the top-up path used to sort, the Bernoulli path
    didn't — downstream relay-chain iteration depended on which fired)."""

    MEMBERS = [5, 2, 0, 3]

    def _order_preserved(self, members, result):
        chosen = set(result)
        assert result == [c for c in members if c in chosen]

    def test_bernoulli_path_preserves_member_order(self):
        dyn = ClientDynamics(DynamicsConfig(participation=0.9, seed=1), 6)
        for _ in range(30):
            members, _ = dyn.unit_round_conditions(list(self.MEMBERS), 0.0)
            self._order_preserved(self.MEMBERS, members)

    def test_top_up_path_preserves_member_order(self):
        # participation 0.01 makes the Bernoulli pass come up empty almost
        # every draw, forcing the min-participants top-up.
        dyn = ClientDynamics(
            DynamicsConfig(participation=0.01, min_participants=2, seed=1), 6
        )
        for _ in range(30):
            members, _ = dyn.unit_round_conditions(list(self.MEMBERS), 0.0)
            assert len(members) >= 2
            self._order_preserved(self.MEMBERS, members)

    def test_resolution_deterministic_per_seed(self):
        def run():
            dyn = ClientDynamics(
                DynamicsConfig(participation=0.3, min_participants=2, seed=5), 6
            )
            return [
                dyn.unit_round_conditions(list(self.MEMBERS), float(i))[0]
                for i in range(10)
            ]

        assert run() == run()


class TestWindowBoundary:
    """``availability_windows`` agrees with ``available_at`` exactly at
    the clip boundary (half-open windows, bisect_right semantics)."""

    def _dynamics(self, tmp_path, toggles):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"type": "availability", "client": 0, "toggles": toggles})
            + "\n"
        )
        return ClientDynamics(
            DynamicsConfig(availability=f"trace:{path}"), num_clients=1
        )

    def test_recovery_toggle_exactly_at_until_is_kept(self, tmp_path):
        """A client back up exactly at ``until`` used to vanish from the
        report (the old clip dropped the toggle at the boundary)."""
        dyn = self._dynamics(tmp_path, [1.0, 2.0])
        assert dyn.available_at(0, 2.0)
        windows = dyn.availability_windows(0, until=2.0)
        assert windows == [(0.0, 1.0), (2.0, 2.0)]

    def test_failure_toggle_exactly_at_until(self, tmp_path):
        dyn = self._dynamics(tmp_path, [2.0])
        assert not dyn.available_at(0, 2.0)  # toggle AT t counts as flipped
        assert dyn.availability_windows(0, until=2.0) == [(0.0, 2.0)]

    def test_windows_cover_exactly_the_up_instants(self, tmp_path):
        dyn = self._dynamics(tmp_path, [0.5, 1.25, 2.0, 3.5])
        until = 3.0
        windows = dyn.availability_windows(0, until)
        for t in [0.0, 0.25, 0.5, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0]:
            in_window = any(
                start <= t < end or t == start == end for start, end in windows
            )
            assert in_window == dyn.available_at(0, t), f"disagree at t={t}"

    def test_export_toggles_keep_boundary_for_replay(self, tmp_path):
        dyn = self._dynamics(tmp_path, [1.0, 2.0, 3.0])
        assert dyn.availability_toggles(0, horizon=2.0) == [1.0, 2.0]


class TestRoundLog:
    def test_every_resolution_is_logged_with_its_clock(self):
        dyn = ClientDynamics(DynamicsConfig(), num_clients=3)
        dyn.begin_round(0, 0.0)
        dyn.begin_round(1, 1.5)
        dyn.begin_round(1, 2.25)  # re-resolution after an all-down wait
        assert [(rc.round_index, rc.now_s) for rc in dyn.round_log] == [
            (0, 0.0), (1, 1.5), (1, 2.25)
        ]

    def test_scheme_run_populates_round_log(self):
        scenario = fast_scenario(with_wireless=True)
        scenario.dynamics = DynamicsConfig(
            churn_uptime_s=0.5, churn_downtime_s=0.2, seed=2
        )
        scheme = make_scheme("GSFL", scenario.build())
        scheme.run(2)
        log = scheme.dynamics.round_log
        assert [rc.round_index for rc in log][:2] == [0, 1]
        assert all(rc.now_s >= 0.0 for rc in log)
