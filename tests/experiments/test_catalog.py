"""Scenario catalog: registry API, world presets, record -> replay."""

from __future__ import annotations

import json

import pytest

from repro.cli import _export_trace
from repro.experiments.catalog import (
    SCENARIO_REGISTRY,
    describe_scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.experiments.runner import make_scheme
from repro.experiments.scenario import fast_scenario, paper_scenario


class TestRegistryAPI:
    def test_catalog_ships_at_least_six_worlds_beyond_presets(self):
        worlds = [e for e in list_scenarios() if "preset" not in e.tags]
        assert len(worlds) >= 6
        names = {e.name for e in worlds}
        assert {"churn", "diurnal", "cell-outage", "mobility",
                "device-classes", "cross-traffic"} <= names

    def test_entries_carry_metadata(self):
        for entry in list_scenarios():
            assert entry.summary
            assert entry.name in SCENARIO_REGISTRY
            assert callable(entry.builder)

    def test_list_is_sorted(self):
        names = [e.name for e in list_scenarios()]
        assert names == sorted(names)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("fast", summary="dup")(lambda seed=0: None)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="unknown scenario") as excinfo:
            get_scenario("astrology")
        assert "churn" in str(excinfo.value)
        assert "replay:" in str(excinfo.value)

    def test_describe_every_world(self):
        for entry in list_scenarios():
            text = describe_scenario(entry.name)
            assert f"scenario : {entry.name}" in text
            assert "fleet" in text

    def test_describe_device_classes_lists_tiers(self):
        text = describe_scenario("device-classes")
        assert "phone" in text and "edge-box" in text

    def test_describe_cross_traffic_lists_link_load(self):
        text = describe_scenario("cross-traffic")
        assert "burst source" in text and "60%" in text


class TestPresetEquality:
    """``--scenario fast|paper`` must be the flag-built presets, exactly."""

    def test_fast_matches_flag_built(self):
        assert get_scenario("fast", seed=3) == fast_scenario(
            with_wireless=True, seed=3
        )

    def test_paper_matches_flag_built(self):
        assert get_scenario("paper", seed=1) == paper_scenario(
            with_wireless=True, seed=1
        )

    def test_registered_fast_history_is_bitwise_identical(self):
        """Same world -> same run: losses/accuracies match to the bit."""
        runs = []
        for scenario in (get_scenario("fast"), fast_scenario(with_wireless=True)):
            scheme = make_scheme("GSFL", scenario.build())
            history = scheme.run(1)
            runs.append((history.losses, history.accuracies, history.latencies))
        assert runs[0] == runs[1]

    def test_every_world_builds_and_validates(self):
        for entry in list_scenarios():
            scenario = entry.builder(0)
            assert scenario.num_clients >= scenario.num_groups
            if scenario.dynamics is not None:
                scenario.dynamics.validate()


class TestRecordReplay:
    def _record(self, tmp_path, rounds=2):
        path = str(tmp_path / "rec.jsonl")
        scenario = get_scenario("churn")
        scheme = make_scheme("GSFL", scenario.build())
        scheme.run(rounds)
        _export_trace(path, scheme, scenario_name="churn")
        return path, scheme

    def test_round_trip_reproduces_round_conditions(self, tmp_path):
        """The replay world re-drives availability exactly: every round
        resolves the same available set and participant list."""
        path, recorded = self._record(tmp_path)
        replayed = make_scheme("GSFL", get_scenario(f"replay:{path}").build())
        replayed.run(2)

        def log(scheme):
            return [
                (rc.round_index, rc.available, rc.participants)
                for rc in scheme.dynamics.round_log
            ]

        assert log(recorded) == log(replayed)

    def test_replay_scenario_carries_recorded_world_shape(self, tmp_path):
        path, recorded = self._record(tmp_path)
        scenario = get_scenario(f"replay:{path}")
        assert scenario.num_clients == 12 and scenario.num_groups == 4
        dyn = scenario.dynamics
        assert dyn.availability == f"trace:{path}"
        assert dyn.failure_model == "mid-activity"
        assert dyn.churn_uptime_s == 0.15

    def test_replay_of_unregistered_scenario_falls_back_to_fast(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        # repro: disable=TRC001 (deliberately partial meta: foreign/older traces fall back to the base world)
        path.write_text(json.dumps({
            "type": "meta", "scenario": "retired-world", "seed": 2,
            "num_clients": 6, "num_groups": 2,
            "dynamics": {"churn_uptime_s": 0.2, "churn_downtime_s": 0.1},
        }) + "\n")
        scenario = get_scenario(f"replay:{path}")
        assert scenario.num_clients == 6
        assert scenario.dynamics.availability == f"trace:{path}"
        assert scenario.dynamics.churn_uptime_s == 0.2

    def test_replay_rebuilds_fleet_on_size_mismatch(self, tmp_path):
        path = tmp_path / "big.jsonl"
        # repro: disable=TRC001 (deliberately partial meta: replay must rebuild the fleet from the shape fields alone)
        path.write_text(json.dumps({
            "type": "meta", "scenario": "fast", "seed": 0,
            "num_clients": 9, "num_groups": 3, "dynamics": None,
        }) + "\n")
        scenario = get_scenario(f"replay:{path}")
        assert scenario.num_clients == 9 and scenario.num_groups == 3

    def test_replay_without_meta_row_rejected(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        # repro: disable=TRC001 (bare row on purpose: a trace with no meta must be rejected)
        path.write_text(json.dumps({"type": "activity"}) + "\n")
        with pytest.raises(ValueError, match="no leading 'meta' row"):
            get_scenario(f"replay:{path}")

    def test_replay_missing_file_rejected(self):
        with pytest.raises(ValueError, match="cannot read"):
            get_scenario("replay:/nonexistent.jsonl")
