"""Unit tests for the pluggable availability processes."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.experiments.availability import (
    AVAILABILITY_KINDS,
    AvailabilitySpec,
    CellCorrelated,
    DiurnalRenewal,
    ExponentialRenewal,
    HandoffRenewal,
    TraceReplay,
    make_availability_process,
    parse_availability,
)
from repro.experiments.dynamics import ClientDynamics, DynamicsConfig


def first_toggles(process, client, n):
    """First ``n`` toggles of an infinite process's per-client stream."""
    t = 0.0
    while True:
        stream = process.toggles(client, t)
        if len(stream) >= n:
            return list(stream[:n])
        t = stream[-1]


class TestParseAvailability:
    def test_kinds_cover_every_spec_prefix(self):
        assert AVAILABILITY_KINDS == (
            "exponential", "diurnal", "cells", "handoff", "trace"
        )

    def test_exponential(self):
        assert parse_availability("exponential") == AvailabilitySpec("exponential")

    def test_handoff(self):
        assert parse_availability("handoff").kind == "handoff"

    def test_diurnal_defaults(self):
        spec = parse_availability("diurnal")
        assert spec.kind == "diurnal"
        assert spec.period_s == 2.0 and spec.amplitude == 0.8

    def test_diurnal_params(self):
        spec = parse_availability("diurnal:5.5:0.25")
        assert spec.period_s == 5.5 and spec.amplitude == 0.25

    def test_cells_defaults_and_params(self):
        assert parse_availability("cells").num_cells == 4
        assert parse_availability("cells:7").num_cells == 7

    def test_trace(self):
        assert parse_availability("trace:/tmp/t.jsonl").path == "/tmp/t.jsonl"

    def test_needs_windows(self):
        assert parse_availability("diurnal").needs_windows
        assert parse_availability("cells").needs_windows
        assert parse_availability("handoff").needs_windows
        assert not parse_availability("exponential").needs_windows
        assert not parse_availability("trace:x").needs_windows

    @pytest.mark.parametrize(
        "spec",
        ["", "weibull", "diurnal:1:2:3", "diurnal:x", "diurnal:0",
         "diurnal:2:1.0", "diurnal:2:-0.1", "cells:0", "cells:x",
         "cells:1:2", "trace:"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_availability(spec)

    @pytest.mark.parametrize("spec", ["diurnal", "cells:2", "handoff"])
    def test_config_requires_windows(self, spec):
        with pytest.raises(ValueError, match="requires churn windows"):
            DynamicsConfig(availability=spec)

    def test_config_rejects_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown availability"):
            DynamicsConfig(availability="weibull")


class TestExponentialRenewal:
    #: first six toggles of the pre-refactor inline loop (seed 7,
    #: up 10 s / down 5 s, 3 clients), rounded to 12 decimals — pins the
    #: factored-out process bitwise to the historical draw order.
    PINNED = {
        0: [1.332254212355, 4.975150094378, 6.684817498011,
            19.833342257205, 19.87544566155, 22.887783581675],
        1: [0.892473822154, 12.243203941087, 16.555511445478,
            22.904309828451, 28.135699063226, 43.997958983862],
        2: [10.502237826864, 11.262193059314, 16.322148524287,
            16.46208100283, 30.552458565622, 32.295935824514],
    }

    def test_bitwise_identical_to_historical_stream(self):
        dyn = ClientDynamics(
            DynamicsConfig(churn_uptime_s=10.0, churn_downtime_s=5.0, seed=7),
            num_clients=3,
        )
        for client, expected in self.PINNED.items():
            got = first_toggles(dyn._process, client, 6)
            assert [round(t, 12) for t in got] == expected

    def test_identity_process_is_none(self):
        seq = np.random.SeedSequence(0)
        assert make_availability_process("exponential", 3, seq, None, None) is None

    def test_query_order_does_not_change_streams(self):
        a = ExponentialRenewal(3, np.random.SeedSequence(1), 1.0, 0.5)
        b = ExponentialRenewal(3, np.random.SeedSequence(1), 1.0, 0.5)
        a.toggles(2, 10.0)  # touch clients in a different order
        for c in range(3):
            assert first_toggles(a, c, 8) == first_toggles(b, c, 8)


class TestDiurnalRenewal:
    def test_phase_multiplier_extremes(self):
        p = DiurnalRenewal(1, np.random.SeedSequence(0), 1.0, 0.5, 4.0, 0.8)
        assert p.phase_multiplier(1.0) == pytest.approx(1.8)   # peak
        assert p.phase_multiplier(3.0) == pytest.approx(0.2)   # trough
        assert p.phase_multiplier(0.0) == pytest.approx(1.0)

    def test_zero_amplitude_is_exponential(self):
        seq = np.random.SeedSequence(3)
        flat = DiurnalRenewal(2, seq, 1.0, 0.5, 2.0, 0.0)
        expo = ExponentialRenewal(2, np.random.SeedSequence(3), 1.0, 0.5)
        for c in range(2):
            assert first_toggles(flat, c, 10) == first_toggles(expo, c, 10)

    def test_deterministic_for_seed(self):
        mk = lambda: DiurnalRenewal(2, np.random.SeedSequence(9), 0.3, 0.1, 2.0, 0.8)
        assert first_toggles(mk(), 0, 12) == first_toggles(mk(), 0, 12)

    def test_modulation_shifts_window_means(self):
        # Pin the phase: up-windows drawn at peak should, on average,
        # be ~(1+amp)/(1-amp) times those drawn at the trough.
        rng = np.random.default_rng(0)
        p = DiurnalRenewal(1, np.random.SeedSequence(0), 1.0, 0.5, 4.0, 0.8)
        peak = [p._window_s(rng, True, 1.0) for _ in range(2000)]
        trough = [p._window_s(rng, True, 3.0) for _ in range(2000)]
        assert np.mean(peak) / np.mean(trough) == pytest.approx(9.0, rel=0.25)


class TestCellCorrelated:
    def test_cell_mapping_is_contiguous(self):
        p = CellCorrelated(12, np.random.SeedSequence(0), 1.0, 0.5, 4)
        assert p.cell_of == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]

    def test_cell_count_clamped_to_fleet(self):
        p = CellCorrelated(3, np.random.SeedSequence(0), 1.0, 0.5, 8)
        assert p.num_cells == 3

    def test_same_cell_shares_stream_cross_cell_differs(self):
        p = CellCorrelated(6, np.random.SeedSequence(5), 1.0, 0.5, 2)
        assert p.toggles(0, 5.0) is p.toggles(2, 5.0)  # cell 0
        assert p.toggles(3, 5.0) is p.toggles(5, 5.0)  # cell 1
        assert first_toggles(p, 0, 6) != first_toggles(p, 3, 6)

    def test_whole_cell_goes_dark_together(self):
        dyn = ClientDynamics(
            DynamicsConfig(
                churn_uptime_s=0.5, churn_downtime_s=0.2,
                availability="cells:2", seed=11,
            ),
            num_clients=6,
        )
        for t in np.linspace(0.0, 5.0, 50):
            states = [dyn.available_at(c, float(t)) for c in range(6)]
            assert len(set(states[:3])) == 1
            assert len(set(states[3:])) == 1


class TestHandoffRenewal:
    def test_down_gap_is_constant(self):
        p = HandoffRenewal(2, np.random.SeedSequence(4), 1.0, 0.25)
        for c in range(2):
            stream = first_toggles(p, c, 10)
            # entry 2k ends an up window, entry 2k+1 ends the following
            # down window: every (2k, 2k+1) gap is exactly the blackout
            gaps = [stream[i + 1] - stream[i] for i in range(0, 10, 2)]
            assert gaps == pytest.approx([0.25] * 5)

    def test_down_windows_consume_no_randomness(self):
        rng = np.random.default_rng(0)
        p = HandoffRenewal(1, np.random.SeedSequence(0), 1.0, 0.25)
        before = rng.bit_generator.state
        assert p._window_s(rng, False, 3.0) == 0.25
        assert rng.bit_generator.state == before


class TestTraceReplay:
    def _write(self, tmp_path, rows):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        return str(path)

    def test_streams_load_and_stay_finite(self, tmp_path):
        path = self._write(tmp_path, [
            # repro: disable=TRC001 (minimal fixture row; the replay parser must tolerate partial meta)
            {"type": "meta"},
            {"type": "availability", "client": 0, "toggles": [1.0, 2.0]},
            {"type": "availability", "client": 2, "toggles": [0.5]},
        ])
        p = TraceReplay(path, 3)
        assert p.finite
        assert p.toggles(0, 100.0) == [1.0, 2.0]
        assert p.toggles(1, 100.0) == []  # unrecorded client: always up
        assert p.toggles(2, 100.0) == [0.5]

    def test_replay_drives_available_at(self, tmp_path):
        path = self._write(tmp_path, [
            {"type": "availability", "client": 0, "toggles": [1.0, 2.0]},
        ])
        dyn = ClientDynamics(
            DynamicsConfig(availability=f"trace:{path}"), num_clients=1
        )
        assert dyn.config.has_churn
        assert dyn.available_at(0, 0.5)
        assert not dyn.available_at(0, 1.0)   # toggle AT t counts as flipped
        assert not dyn.available_at(0, 1.5)
        assert dyn.available_at(0, 2.0)
        assert dyn.available_at(0, 99.0)      # frozen in final state
        assert dyn.next_failure_s(0, 3.0) is None

    def test_trace_ending_down_never_recovers(self, tmp_path):
        path = self._write(tmp_path, [
            {"type": "availability", "client": 0, "toggles": [1.0]},
        ])
        dyn = ClientDynamics(
            DynamicsConfig(availability=f"trace:{path}"), num_clients=1
        )
        assert not dyn.available_at(0, 2.0)
        assert dyn.next_recovery_s(2.0) is None

    def test_client_out_of_range_rejected(self, tmp_path):
        path = self._write(tmp_path, [
            {"type": "availability", "client": 5, "toggles": [1.0]},
        ])
        with pytest.raises(ValueError, match="outside fleet"):
            TraceReplay(path, 3)

    def test_non_increasing_toggles_rejected(self, tmp_path):
        path = self._write(tmp_path, [
            {"type": "availability", "client": 0, "toggles": [2.0, 1.0]},
        ])
        with pytest.raises(ValueError, match="strictly increasing"):
            TraceReplay(path, 1)

    def test_non_positive_toggle_rejected(self, tmp_path):
        path = self._write(tmp_path, [
            {"type": "availability", "client": 0, "toggles": [0.0, 1.0]},
        ])
        with pytest.raises(ValueError, match="positive"):
            TraceReplay(path, 1)

    def test_missing_file_rejected(self):
        with pytest.raises(ValueError, match="cannot read"):
            TraceReplay("/nonexistent/trace.jsonl", 1)

    def test_non_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSONL"):
            TraceReplay(str(path), 1)
