"""Parameter-sweep and multi-seed aggregation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import make_executor
from repro.experiments.runner import make_scheme
from repro.experiments.scenario import fast_scenario
from repro.experiments.sweep import ParameterSweep, SweepAxis
from repro.metrics.history import TrainingHistory
from repro.metrics.multiseed import aggregate_metric, mean_curve, run_multiseed


def _scenario_factory():
    return fast_scenario(with_wireless=True)


class TestSweep:
    def test_axis_validation(self):
        with pytest.raises(ValueError):
            SweepAxis("x", [])
        with pytest.raises(ValueError):
            SweepAxis("x", [1], target="nowhere")

    def test_scenario_axis(self):
        sweep = ParameterSweep(_scenario_factory)
        rows = sweep.run("GSFL", num_rounds=1, axis=SweepAxis("num_groups", [1, 3]))
        assert [r.value for r in rows] == [1, 3]
        # more groups -> cheaper round
        assert rows[1].total_latency_s < rows[0].total_latency_s

    def test_scheme_config_axis(self):
        sweep = ParameterSweep(_scenario_factory)
        rows = sweep.run(
            "GSFL",
            num_rounds=1,
            axis=SweepAxis("quantize_bits", [None, 8], target="scheme_config"),
        )
        assert rows[1].total_latency_s < rows[0].total_latency_s

    def test_scheme_kwargs_axis(self):
        sweep = ParameterSweep(_scenario_factory)
        rows = sweep.run(
            "GSFL",
            num_rounds=1,
            axis=SweepAxis("failure_rate", [0.0, 1.0], target="scheme_kwargs"),
        )
        assert rows[1].total_latency_s == 0.0

    def test_unknown_scenario_attribute(self):
        sweep = ParameterSweep(_scenario_factory)
        with pytest.raises(AttributeError):
            sweep.run("GSFL", 1, SweepAxis("warp_factor", [9]))

    def test_mutators_apply(self):
        def drop_wireless(scenario):
            scenario.wireless = None
            return scenario

        sweep = ParameterSweep(_scenario_factory, mutators=[drop_wireless])
        rows = sweep.run("SL", num_rounds=1, axis=SweepAxis("num_groups", [2]))
        assert rows[0].total_latency_s == 0.0

    def test_table_renders(self):
        sweep = ParameterSweep(_scenario_factory)
        axis = SweepAxis("num_groups", [2])
        rows = sweep.run("GSFL", 1, axis)
        text = ParameterSweep.table(axis, rows)
        assert "num_groups" in text and "final_acc" in text

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_executor_fanout_matches_serial(self, kind):
        """Each sweep point builds its own independently seeded scenario,
        so fanning points out cannot change any result."""
        axis = SweepAxis("num_groups", [1, 3])
        serial_rows = ParameterSweep(_scenario_factory).run("GSFL", 1, axis)
        with make_executor(kind, 2) as ex:
            fanned_rows = ParameterSweep(_scenario_factory).run(
                "GSFL", 1, axis, executor=ex
            )
        for a, b in zip(serial_rows, fanned_rows):
            assert a.value == b.value
            assert a.final_accuracy == b.final_accuracy
            assert a.total_latency_s == b.total_latency_s


class TestAggregateMetric:
    def test_mean_std(self):
        summary = aggregate_metric("m", [1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.ci_low < 2.0 < summary.ci_high
        assert summary.num_seeds == 3

    def test_single_value_collapses_ci(self):
        summary = aggregate_metric("m", [5.0])
        assert summary.ci_low == summary.ci_high == 5.0

    def test_nan_filtered(self):
        summary = aggregate_metric("m", [1.0, float("nan"), 3.0])
        assert summary.num_seeds == 2

    def test_all_nan_raises(self):
        with pytest.raises(ValueError):
            aggregate_metric("m", [float("nan")])

    def test_str_renders(self):
        assert "95% CI" in str(aggregate_metric("m", [1.0, 2.0]))


class TestRunMultiseed:
    @staticmethod
    def _fake_experiment(seed: int) -> TrainingHistory:
        h = TrainingHistory(scheme="fake")
        rng = np.random.default_rng(seed)
        acc = 0.0
        for round_index in range(1, 5):
            acc = min(1.0, acc + 0.2 + 0.02 * rng.random())
            h.add(round_index, float(round_index), 1.0 - acc, acc)
        return h

    def test_summaries_present(self):
        out = run_multiseed(self._fake_experiment, seeds=[0, 1, 2], target_accuracy=0.5)
        assert set(out) >= {
            "final_accuracy",
            "best_accuracy",
            "total_latency_s",
            "rounds_to_target",
            "latency_to_target",
        }
        assert out["final_accuracy"].num_seeds == 3

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_multiseed(self._fake_experiment, seeds=[])

    def test_real_scheme_two_seeds(self):
        def experiment(seed: int) -> TrainingHistory:
            built = fast_scenario(with_wireless=False, seed=seed).build()
            return make_scheme("GSFL", built).run(2)

        out = run_multiseed(experiment, seeds=[0, 1])
        assert 0.0 <= out["final_accuracy"].mean <= 1.0

    def test_executor_fanout_matches_serial(self):
        def experiment(seed: int) -> TrainingHistory:
            built = fast_scenario(with_wireless=False, seed=seed).build()
            return make_scheme("GSFL", built).run(1)

        serial = run_multiseed(experiment, seeds=[0, 1])
        with make_executor("thread", 2) as ex:
            fanned = run_multiseed(experiment, seeds=[0, 1], executor=ex)
        assert serial["final_accuracy"].values == fanned["final_accuracy"].values


class TestMeanCurve:
    def test_pointwise_stats(self):
        hs = []
        for offset in (0.0, 0.2):
            h = TrainingHistory(scheme="x")
            for r in (1, 2):
                h.add(r, float(r), 0.0, 0.4 + offset)
            hs.append(h)
        rounds, mean, std = mean_curve(hs)
        np.testing.assert_array_equal(rounds, [1, 2])
        np.testing.assert_allclose(mean, [0.5, 0.5])
        np.testing.assert_allclose(std, [0.1, 0.1])

    def test_mismatched_schedules_rejected(self):
        a = TrainingHistory("a")
        a.add(1, 1.0, 0.0, 0.5)
        b = TrainingHistory("b")
        b.add(2, 1.0, 0.0, 0.5)
        with pytest.raises(ValueError):
            mean_curve([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_curve([])
