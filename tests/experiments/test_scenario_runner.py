"""Scenario construction and runner tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import SCHEME_REGISTRY, make_scheme, run_schemes
from repro.experiments.scenario import (
    ExperimentScenario,
    fast_scenario,
    paper_scenario,
)
from repro.models.registry import default_cut_layer


class TestScenario:
    def test_fast_scenario_builds(self, built_fast_scenario):
        built = built_fast_scenario
        assert len(built.client_datasets) == 6
        assert built.system is not None
        assert built.profile is not None
        assert built.input_shape == (3, 16, 16)

    def test_paper_scenario_shape(self):
        sc = paper_scenario(with_wireless=False)
        assert sc.num_clients == 30
        assert sc.num_groups == 6
        assert sc.dataset.num_classes == 43
        assert sc.model_name == "deepthin"

    def test_wireless_client_count_follows_scenario(self):
        sc = fast_scenario(num_clients=9, num_groups=3)
        assert sc.wireless.num_clients == 9

    def test_no_wireless_build(self):
        built = fast_scenario(with_wireless=False).build()
        assert built.system is None and built.profile is None

    def test_resolved_cut_layer_default(self):
        sc = fast_scenario()
        sc.cut_layer = None
        assert sc.resolved_cut_layer() == default_cut_layer("micro_cnn")
        sc.cut_layer = 2
        assert sc.resolved_cut_layer() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScenario(num_clients=4, num_groups=8)
        with pytest.raises(ValueError):
            ExperimentScenario(partition="sorted")
        with pytest.raises(ValueError):
            ExperimentScenario(grouping="astrology")

    def test_grouping_threads_to_gsfl(self):
        from repro.experiments.runner import make_scheme

        sc = fast_scenario()
        sc.grouping = "random"
        scheme = make_scheme("GSFL", sc.build())
        assert scheme.grouping == "random"

    def test_dirichlet_partition_mode(self):
        sc = fast_scenario(with_wireless=False)
        sc.partition = "dirichlet"
        sc.dirichlet_alpha = 0.3
        built = sc.build()
        assert sum(len(d) for d in built.client_datasets) == len(
            built.client_datasets[0].dataset
        )

    def test_make_model_deterministic(self):
        sc = fast_scenario()
        a, b = sc.make_model(), sc.make_model()
        sa, sb = a.state_dict(), b.state_dict()
        for k in sa:
            np.testing.assert_allclose(sa[k], sb[k])

    def test_mlp_scenario_builds(self):
        sc = fast_scenario(with_wireless=True)
        sc.model_name = "mlp"
        sc.cut_layer = 3
        built = sc.build()
        scheme = make_scheme("GSFL", built)
        history = scheme.run(1)
        assert len(history) == 1


class TestRunner:
    def test_registry_contents(self):
        assert set(SCHEME_REGISTRY) == {"CL", "FL", "SL", "SplitFed", "PSL", "GSFL"}

    def test_unknown_scheme(self, built_fast_scenario):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_scheme("DiLoCo", built_fast_scenario)

    def test_run_schemes_returns_all(self, built_fast_scenario):
        histories = run_schemes(built_fast_scenario, ["SL", "GSFL"], num_rounds=1)
        assert set(histories) == {"SL", "GSFL"}
        assert all(len(h) == 1 for h in histories.values())

    def test_per_scheme_overrides(self, built_fast_scenario):
        histories = run_schemes(
            built_fast_scenario,
            ["GSFL"],
            num_rounds=1,
            GSFL={"num_groups": 3},
        )
        assert len(histories["GSFL"]) == 1
