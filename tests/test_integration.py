"""End-to-end integration tests crossing all subsystems."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.core.aggregation import fedavg
from repro.experiments.runner import make_scheme
from repro.experiments.scenario import fast_scenario
from repro.metrics.evaluate import evaluate_model
from repro.wireless.channel import ChannelConfig, WirelessChannel


class TestTrainCheckpointReload:
    def test_gsfl_model_survives_checkpoint_roundtrip(self, tmp_path):
        """Train GSFL, checkpoint the aggregated model, reload into a fresh
        architecture, and verify identical test accuracy."""
        built = fast_scenario(with_wireless=False).build()
        scheme = make_scheme("GSFL", built)
        history = scheme.run(2)

        path = str(tmp_path / "gsfl.npz")
        nn.save_checkpoint(scheme.model, path)

        fresh = built.scenario.make_model()
        nn.load_checkpoint(fresh, path)
        _, acc_fresh = evaluate_model(fresh, built.test_dataset)
        assert acc_fresh == pytest.approx(history.final_accuracy)


class TestAggregationSemantics:
    def test_gsfl_round_ends_with_fedavg_of_group_states(self):
        """After one GSFL round the global model must equal the FedAvg of
        the per-group trained halves (weighted by group sample counts)."""
        built = fast_scenario(with_wireless=False).build()
        scheme = make_scheme("GSFL", built)

        # Intercept the per-group states by replaying the aggregation from
        # the scheme's own internals after one round.
        scheme.run(1)
        # Rebuild the expected global from the recorded global states: the
        # invariant tested here is self-consistency — reloading the stored
        # global state reproduces the evaluation model exactly.
        expected_client = scheme._global_client_state
        expected_server = scheme._global_server_state
        scheme.split.client.load_state_dict(expected_client)
        scheme.split.server.load_state_dict(expected_server)
        x = built.test_dataset.arrays()[0][:8]
        from repro.nn.tensor import Tensor, no_grad

        scheme.model.eval()
        with no_grad():
            a = scheme.model(Tensor(x)).data
            b = scheme.split.server.forward(scheme.split.client.forward(Tensor(x))).data
        np.testing.assert_allclose(a, b)

    def test_fedavg_weighting_respects_sample_counts(self):
        """Weighted FedAvg must tilt toward the heavier participant."""
        rng = np.random.default_rng(0)
        light = {"w": rng.normal(size=(4,))}
        heavy = {"w": rng.normal(size=(4,))}
        avg = fedavg([light, heavy], weights=[1.0, 9.0])
        # result is much closer to the heavy state
        d_heavy = np.linalg.norm(avg["w"] - heavy["w"])
        d_light = np.linalg.norm(avg["w"] - light["w"])
        assert d_heavy < d_light


class TestCrossSchemeConservation:
    def test_same_smashed_traffic_per_round(self):
        """SL and GSFL move identical smashed bytes per round — grouping
        changes *when*, not *how much*."""
        totals = {}
        for name in ("SL", "GSFL"):
            built = fast_scenario(with_wireless=True).build()
            scheme = make_scheme(name, built)
            scheme.run(1)
            totals[name] = scheme.recorder.total_bytes_by_phase()["uplink_smashed"]
        assert totals["SL"] == totals["GSFL"]

    def test_gsfl_relays_fewer_hops_than_sl(self):
        """GSFL relays within groups only: M fewer hops than SL's chain.

        Each relay is recorded per leg (uplink to the AP, downlink to the
        next client), so a relay contributes two trace rows.
        """
        counts = {}
        for name in ("SL", "GSFL"):
            built = fast_scenario(with_wireless=True).build()
            scheme = make_scheme(name, built)
            scheme.run(1)
            rows = scheme.recorder.filter(phases=["model_relay"])
            uplinks = [r for r in rows if r.detail == "uplink"]
            assert len(rows) == 2 * len(uplinks)
            counts[name] = len(uplinks)
        n = 6
        m = 2
        assert counts["SL"] == n - 1
        assert counts["GSFL"] == n - m


class TestChannelPhysicsProperties:
    @staticmethod
    def _channel(distances):
        return WirelessChannel(
            np.asarray(distances, dtype=float),
            config=ChannelConfig(shadowing_std_db=0.0, rayleigh_fading=False),
            rng=np.random.default_rng(0),
        )

    @given(
        st.lists(st.floats(5.0, 500.0), min_size=2, max_size=6),
        st.floats(1e5, 2e7),
    )
    @settings(max_examples=30, deadline=None)
    def test_rate_decreases_with_distance(self, distances, bandwidth):
        channel = self._channel(sorted(distances))
        rates = [channel.uplink_rate_bps(i, bandwidth) for i in range(len(distances))]
        assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))

    @given(st.floats(10.0, 300.0), st.floats(1e5, 1e7))
    @settings(max_examples=30, deadline=None)
    def test_rate_increases_with_bandwidth(self, distance, bandwidth):
        channel = self._channel([distance])
        assert channel.uplink_rate_bps(0, 2 * bandwidth) > channel.uplink_rate_bps(
            0, bandwidth
        )

    @given(st.floats(10.0, 300.0), st.floats(1e5, 1e7), st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_subchannel_superadditivity(self, distance, bandwidth, m):
        """The GSFL effect as a law: rate(B/m) > rate(B)/m always (fixed
        total power concentrated on less spectrum)."""
        channel = self._channel([distance])
        full = channel.uplink_rate_bps(0, bandwidth)
        part = channel.uplink_rate_bps(0, bandwidth / m)
        assert part > full / m
