"""Layer/module tests: registration, shapes, FLOPs, state dicts, modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestModuleRegistration:
    def test_parameters_discovered_recursively(self, small_cnn):
        names = [n for n, _ in small_cnn.named_parameters()]
        assert "0.weight" in names and "0.bias" in names
        assert "4.weight" in names and "4.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        layer = nn.Linear(10, 4, seed=0)
        assert layer.num_parameters() == 10 * 4 + 4

    def test_train_eval_propagates(self, small_cnn):
        small_cnn.eval()
        assert all(not m.training for m in small_cnn.modules())
        small_cnn.train()
        assert all(m.training for m in small_cnn.modules())

    def test_zero_grad_clears(self, small_cnn, image_batch):
        x, y = image_batch
        nn.CrossEntropyLoss()(small_cnn(Tensor(x)), y).backward()
        assert any(p.grad is not None for p in small_cnn.parameters())
        small_cnn.zero_grad()
        assert all(p.grad is None for p in small_cnn.parameters())


class TestStateDict:
    def test_roundtrip_preserves_outputs(self, small_cnn, image_batch):
        x, _ = image_batch
        before = small_cnn(Tensor(x)).data.copy()
        state = small_cnn.state_dict()
        for p in small_cnn.parameters():
            p.data = p.data + 1.0  # perturb
        small_cnn.load_state_dict(state)
        after = small_cnn(Tensor(x)).data
        np.testing.assert_allclose(before, after)

    def test_state_dict_copies_are_independent(self, small_cnn):
        state = small_cnn.state_dict()
        key = next(iter(state))
        state[key] += 100.0
        fresh = small_cnn.state_dict()
        assert not np.allclose(state[key], fresh[key])

    def test_missing_key_raises(self, small_cnn):
        state = small_cnn.state_dict()
        state.pop("0.weight")
        with pytest.raises(KeyError, match="0.weight"):
            small_cnn.load_state_dict(state)

    def test_shape_mismatch_raises(self, small_cnn):
        state = small_cnn.state_dict()
        state["0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape"):
            small_cnn.load_state_dict(state)

    def test_buffers_travel_in_state_dict(self):
        bn = nn.BatchNorm1d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state


class TestLinear:
    def test_forward_matches_manual(self):
        layer = nn.Linear(3, 2, seed=0)
        x = np.random.default_rng(0).normal(size=(5, 3))
        out = layer(Tensor(x)).data
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out, expected)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False, seed=0)
        assert layer.bias is None
        assert layer.num_parameters() == 6

    def test_output_shape_validates_features(self):
        layer = nn.Linear(3, 2, seed=0)
        with pytest.raises(ValueError):
            layer.output_shape((5,))
        assert layer.output_shape((3,)) == (2,)

    def test_flops(self):
        assert nn.Linear(10, 20, seed=0).flops((10,)) == 2 * 10 * 20

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 4)

    def test_deterministic_init_per_seed(self):
        a = nn.Linear(8, 8, seed=3)
        b = nn.Linear(8, 8, seed=3)
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestConvPoolLayers:
    def test_conv_output_shape(self):
        conv = nn.Conv2d(3, 8, 3, padding=1, seed=0)
        assert conv.output_shape((3, 16, 16)) == (8, 16, 16)

    def test_conv_flops_formula(self):
        conv = nn.Conv2d(2, 4, 3, seed=0)
        # output 6x6, macs = 2*3*3 per pixel per out-channel
        assert conv.flops((2, 8, 8)) == 2 * (2 * 9) * 4 * 6 * 6

    def test_pool_shapes(self):
        assert nn.MaxPool2d(2).output_shape((4, 8, 8)) == (4, 4, 4)
        assert nn.AvgPool2d(2).output_shape((4, 8, 8)) == (4, 4, 4)

    def test_conv_geometry_validation(self):
        with pytest.raises(ValueError):
            nn.Conv2d(1, 1, kernel_size=0)
        with pytest.raises(ValueError):
            nn.Conv2d(0, 1, 3)


class TestSequential:
    def test_slicing_shares_parameters(self, small_cnn):
        head = small_cnn[:2]
        assert head[0] is small_cnn[0]

    def test_len_iter_getitem(self, small_cnn):
        assert len(small_cnn) == 5
        assert isinstance(small_cnn[0], nn.Conv2d)
        assert len(list(iter(small_cnn))) == 5

    def test_append(self):
        seq = nn.Sequential(nn.Linear(4, 4, seed=0))
        seq.append(nn.ReLU())
        assert len(seq) == 2
        assert len(list(seq.parameters())) == 2  # weight+bias from linear

    def test_forward_chains(self):
        seq = nn.Sequential(nn.Linear(4, 3, seed=0), nn.ReLU(), nn.Linear(3, 2, seed=1))
        out = seq(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 2)


class TestDropoutLayer:
    def test_eval_mode_identity(self):
        layer = nn.Dropout(0.9, seed=0)
        layer.eval()
        x = np.ones((4, 4))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_train_mode_zeroes_some(self):
        layer = nn.Dropout(0.5, seed=0)
        out = layer(Tensor(np.ones((20, 20))))
        assert (out.data == 0).any()

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestProfile:
    def test_profile_tracks_shapes_and_totals(self, small_cnn):
        prof = nn.profile_model(small_cnn, (2, 8, 8))
        assert prof.num_layers == 5
        assert prof.layers[0].output_shape == (3, 8, 8)
        assert prof.layers[-1].output_shape == (5,)
        assert prof.total_params == small_cnn.num_parameters()
        assert prof.total_forward_flops > 0

    def test_split_queries_partition_totals(self, small_cnn):
        prof = nn.profile_model(small_cnn, (2, 8, 8))
        for cut in range(1, 5):
            assert (
                prof.client_forward_flops(cut) + prof.server_forward_flops(cut)
                == prof.total_forward_flops
            )
            assert prof.client_params(cut) + prof.server_params(cut) == prof.total_params

    def test_smashed_shape_and_bytes(self, small_cnn):
        prof = nn.profile_model(small_cnn, (2, 8, 8))
        assert prof.smashed_shape(1) == (3, 8, 8)
        assert prof.smashed_bytes(1, batch_size=2) == 3 * 8 * 8 * 2 * 4

    def test_invalid_cut_raises(self, small_cnn):
        prof = nn.profile_model(small_cnn, (2, 8, 8))
        with pytest.raises(ValueError):
            prof.smashed_shape(0)
        with pytest.raises(ValueError):
            prof.client_params(5)

    def test_summary_renders(self, small_cnn):
        prof = nn.profile_model(small_cnn, (2, 8, 8))
        text = prof.summary()
        assert "Conv2d" in text and "total params" in text
