"""Batch norm, loss functions, optimizers and LR schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from tests.conftest import numeric_gradient


class TestBatchNorm:
    def test_normalizes_batch_statistics(self):
        rng = np.random.default_rng(0)
        bn = nn.BatchNorm1d(4)
        x = rng.normal(loc=5.0, scale=3.0, size=(64, 4))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), np.ones(4), atol=1e-2)

    def test_2d_normalizes_per_channel(self):
        rng = np.random.default_rng(1)
        bn = nn.BatchNorm2d(3)
        x = rng.normal(loc=-2.0, scale=0.5, size=(8, 3, 5, 5))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-7)

    def test_running_stats_update_and_eval_uses_them(self):
        rng = np.random.default_rng(2)
        bn = nn.BatchNorm1d(2, momentum=0.5)
        x = rng.normal(loc=10.0, size=(128, 2))
        for _ in range(20):
            bn(Tensor(x))
        assert np.all(bn.running_mean > 5.0)
        bn.eval()
        out = bn(Tensor(x)).data
        # eval output should be near-normalized using running stats
        assert abs(out.mean()) < 0.5

    def test_gradients_flow_through_statistics(self):
        rng = np.random.default_rng(3)
        x_data = rng.normal(size=(6, 3))
        bn = nn.BatchNorm1d(3)

        x = Tensor(x_data.copy(), requires_grad=True)
        (bn(x) ** 3).sum().backward()
        analytic = x.grad.copy()

        d = x_data.copy()

        def f():
            fresh = nn.BatchNorm1d(3)
            fresh.gamma.data = bn.gamma.data.copy()
            fresh.beta.data = bn.beta.data.copy()
            return float((fresh(Tensor(d)) ** 3).sum().item())

        np.testing.assert_allclose(analytic, numeric_gradient(f, d), atol=1e-5)

    def test_gamma_beta_receive_gradients(self):
        bn = nn.BatchNorm1d(4)
        x = Tensor(np.random.default_rng(0).normal(size=(8, 4)))
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None
        np.testing.assert_allclose(bn.beta.grad, np.full(4, 8.0))

    def test_channel_mismatch_raises(self):
        bn = nn.BatchNorm1d(4)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((2, 5))))

    def test_state_dict_roundtrips_running_stats(self):
        bn = nn.BatchNorm1d(2)
        bn(Tensor(np.random.default_rng(0).normal(size=(16, 2)) + 7))
        state = bn.state_dict()
        fresh = nn.BatchNorm1d(2)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh.running_mean, bn.running_mean)
        np.testing.assert_allclose(fresh.running_var, bn.running_var)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(0)
        with pytest.raises(ValueError):
            nn.BatchNorm1d(3, momentum=0.0)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.0]])
        targets = np.array([0, 1])
        loss = nn.CrossEntropyLoss()(Tensor(logits), targets).item()
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.log(probs[[0, 1], targets]).mean()
        assert abs(loss - expected) < 1e-10

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self):
        logits_data = np.array([[1.0, 2.0, 3.0]])
        logits = Tensor(logits_data, requires_grad=True)
        nn.CrossEntropyLoss()(logits, np.array([2])).backward()
        probs = np.exp(logits_data) / np.exp(logits_data).sum()
        expected = probs.copy()
        expected[0, 2] -= 1
        np.testing.assert_allclose(logits.grad, expected, atol=1e-10)

    def test_cross_entropy_sum_reduction(self):
        logits = Tensor(np.zeros((4, 3)))
        loss_mean = nn.CrossEntropyLoss("mean")(logits, np.zeros(4, dtype=int)).item()
        loss_sum = nn.CrossEntropyLoss("sum")(logits, np.zeros(4, dtype=int)).item()
        assert abs(loss_sum - 4 * loss_mean) < 1e-10

    def test_cross_entropy_numerical_stability(self):
        logits = Tensor(np.array([[1000.0, 0.0], [-1000.0, 0.0]]))
        loss = nn.CrossEntropyLoss()(logits, np.array([0, 1])).item()
        assert np.isfinite(loss)

    def test_cross_entropy_validates_labels(self):
        logits = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="range"):
            nn.CrossEntropyLoss()(logits, np.array([0, 3]))

    def test_cross_entropy_validates_shapes(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss()(Tensor(np.zeros((2, 3))), np.zeros((2, 3)))

    def test_nll_matches_cross_entropy(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        y = np.array([0, 1, 2, 3])
        ce = nn.CrossEntropyLoss()(logits, y).item()
        nll = nn.NLLLoss()(logits.log_softmax(axis=1), y).item()
        assert abs(ce - nll) < 1e-10

    def test_mse(self):
        preds = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = nn.MSELoss()(preds, np.array([0.0, 0.0]))
        assert abs(loss.item() - 2.5) < 1e-12
        loss.backward()
        np.testing.assert_allclose(preds.grad, [1.0, 2.0])

    def test_accuracy_from_logits(self):
        logits = np.array([[1, 0], [0, 1], [1, 0]], dtype=float)
        assert nn.accuracy_from_logits(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss("max")


class TestOptimizers:
    def _quadratic_setup(self):
        p = nn.Parameter(np.array([5.0, -3.0]))
        return p

    def test_sgd_step_direction(self):
        p = self._quadratic_setup()
        opt = nn.SGD([p], lr=0.1)
        p.grad = np.array([1.0, -1.0])
        opt.step()
        np.testing.assert_allclose(p.data, [4.9, -2.9])

    def test_sgd_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = nn.Parameter(np.array([10.0]))
            opt = nn.SGD([p], lr=0.005, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                p.grad = 2 * p.data  # d/dp p^2
                opt.step()
            losses[momentum] = abs(float(p.data[0]))
        assert losses[0.9] < losses[0.0]

    def test_sgd_weight_decay_shrinks(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert float(p.data[0]) == pytest.approx(1.0 - 0.1 * 0.5)

    def test_sgd_skips_gradless_params(self):
        p = nn.Parameter(np.array([1.0]))
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_adam_converges_on_quadratic(self):
        p = nn.Parameter(np.array([5.0]))
        opt = nn.Adam([p], lr=0.3)
        for _ in range(100):
            opt.zero_grad()
            p.grad = 2 * p.data
            opt.step()
        assert abs(float(p.data[0])) < 0.05

    def test_state_export_import_sgd(self):
        """Importing exported momentum state replays identical updates."""
        p = nn.Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        state = opt.state_export()

        # A twin starting from the post-step value with imported velocity
        # must track the original exactly on the next step.
        p2 = nn.Parameter(p.data.copy())
        opt2 = nn.SGD([p2], lr=0.1, momentum=0.9)
        opt2.state_import(state)
        p.grad = np.array([0.5])
        p2.grad = np.array([0.5])
        opt.step()
        opt2.step()
        np.testing.assert_allclose(p.data, p2.data)

    def test_state_import_length_mismatch(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1)
        with pytest.raises(ValueError):
            opt.state_import([{}, {}])

    def test_optimizer_validation(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)
        with pytest.raises(ValueError):
            nn.SGD([nn.Parameter(np.ones(1))], lr=-1)
        with pytest.raises(ValueError):
            nn.SGD([nn.Parameter(np.ones(1))], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            nn.SGD([nn.Parameter(np.ones(1))], lr=0.1, nesterov=True)


class TestSchedules:
    def _opt(self, lr=1.0):
        return nn.SGD([nn.Parameter(np.ones(1))], lr=lr)

    def test_step_lr(self):
        opt = self._opt()
        sched = nn.StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_annealing_endpoints(self):
        opt = self._opt()
        sched = nn.CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        opt = self._opt()
        sched = nn.CosineAnnealingLR(opt, t_max=8)
        prev = opt.lr
        for _ in range(8):
            sched.step()
            assert opt.lr <= prev + 1e-12
            prev = opt.lr

    def test_constant_lr(self):
        opt = self._opt(0.3)
        nn.ConstantLR(opt).step()
        assert opt.lr == 0.3
