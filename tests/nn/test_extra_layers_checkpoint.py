"""Extended layer zoo and checkpoint/grad-clip utility tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from tests.conftest import numeric_gradient


class TestLeakyRelu:
    def test_values(self):
        layer = nn.LeakyReLU(0.1)
        out = layer(Tensor(np.array([-2.0, 3.0])))
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_gradient(self):
        layer = nn.LeakyReLU(0.1)
        x_data = np.array([[-1.5, 0.5], [2.0, -0.1]])
        x = Tensor(x_data.copy(), requires_grad=True)
        layer(x).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.1, 1.0], [1.0, 0.1]])

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.LeakyReLU(-0.5)


class TestGelu:
    def test_known_values(self):
        layer = nn.GELU()
        out = layer(Tensor(np.array([0.0, 100.0, -100.0])))
        np.testing.assert_allclose(out.data, [0.0, 100.0, 0.0], atol=1e-6)

    def test_gradient_matches_numeric(self):
        layer = nn.GELU()
        x_data = np.random.default_rng(0).normal(size=(6,))
        x = Tensor(x_data.copy(), requires_grad=True)
        layer(x).sum().backward()
        d = x_data.copy()

        def f():
            return float(layer(Tensor(d)).sum().item())

        np.testing.assert_allclose(x.grad, numeric_gradient(f, d), atol=1e-5)


class TestSoftmaxLayer:
    def test_rows_sum_to_one(self):
        layer = nn.Softmax()
        out = layer(Tensor(np.random.default_rng(0).normal(size=(5, 7))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5), atol=1e-12)


class TestLayerNorm:
    def test_normalizes_features(self):
        ln = nn.LayerNorm(8)
        x = np.random.default_rng(0).normal(loc=4, scale=3, size=(10, 8))
        out = ln(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=1), np.zeros(10), atol=1e-10)

    def test_no_buffers(self):
        """LayerNorm must carry no running state (split-relay friendly)."""
        ln = nn.LayerNorm(4)
        assert list(ln.named_buffers()) == []

    def test_gradients_flow(self):
        ln = nn.LayerNorm(4)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)), requires_grad=True)
        (ln(x) ** 2).sum().backward()
        assert x.grad is not None
        assert ln.gamma.grad is not None

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            nn.LayerNorm(4)(Tensor(np.zeros((2, 5))))
        with pytest.raises(ValueError):
            nn.LayerNorm(0)


class TestGlobalAvgPool:
    def test_values(self):
        pool = nn.GlobalAvgPool2d()
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        assert pool(Tensor(x)).data[0, 0] == pytest.approx(7.5)

    def test_shape_inference(self):
        pool = nn.GlobalAvgPool2d()
        assert pool.output_shape((8, 5, 5)) == (8,)

    def test_requires_nchw(self):
        with pytest.raises(ValueError):
            nn.GlobalAvgPool2d()(Tensor(np.zeros((3, 4))))

    def test_profiles_in_sequential(self):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, seed=0),
            nn.GELU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(4, 2, seed=1),
        )
        prof = nn.profile_model(model, (3, 8, 8))
        assert prof.layers[-1].output_shape == (2,)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path, small_cnn):
        path = str(tmp_path / "model.npz")
        nn.save_checkpoint(small_cnn, path)
        clone = nn.Sequential(
            nn.Conv2d(2, 3, 3, padding=1, seed=99),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(3 * 4 * 4, 5, seed=98),
        )
        nn.load_checkpoint(clone, path)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 2, 8, 8)))
        np.testing.assert_allclose(clone(x).data, small_cnn(x).data)

    def test_rejects_foreign_npz(self, tmp_path, small_cnn):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, a=np.ones(3))
        with pytest.raises(ValueError, match="checkpoint"):
            nn.load_checkpoint(small_cnn, path)

    def test_shape_mismatch_raises(self, tmp_path, small_cnn):
        path = str(tmp_path / "model.npz")
        nn.save_checkpoint(small_cnn, path)
        other = nn.Sequential(nn.Linear(4, 2, seed=0))
        with pytest.raises((KeyError, ValueError)):
            nn.load_checkpoint(other, path)


class TestGradClip:
    def _params_with_grads(self):
        a = nn.Parameter(np.zeros(3))
        b = nn.Parameter(np.zeros(4))
        a.grad = np.full(3, 3.0)
        b.grad = np.full(4, 4.0)
        return a, b

    def test_norm_computation(self):
        a, b = self._params_with_grads()
        expected = np.sqrt(9 * 3 + 16 * 4)
        assert nn.grad_norm([a, b]) == pytest.approx(expected)

    def test_clip_scales_down(self):
        a, b = self._params_with_grads()
        pre = nn.clip_grad_norm([a, b], max_norm=1.0)
        assert pre == pytest.approx(np.sqrt(91))
        assert nn.grad_norm([a, b]) == pytest.approx(1.0, rel=1e-6)

    def test_no_clip_below_threshold(self):
        a, b = self._params_with_grads()
        nn.clip_grad_norm([a, b], max_norm=100.0)
        np.testing.assert_allclose(a.grad, np.full(3, 3.0))

    def test_ignores_gradless(self):
        p = nn.Parameter(np.zeros(2))
        assert nn.clip_grad_norm([p], 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.clip_grad_norm([], 0.0)
