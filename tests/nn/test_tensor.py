"""Autograd engine tests: op-by-op gradients vs finite differences,
broadcasting adjoints, graph mechanics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, concatenate, no_grad, stack, unbroadcast
from tests.conftest import numeric_gradient


def check_unary(op, x_data, atol=1e-6):
    x = Tensor(x_data.copy(), requires_grad=True)
    out = op(x)
    out.sum().backward()
    analytic = x.grad.copy()

    data = x_data.copy()

    def f():
        return float(op(Tensor(data)).sum().item())

    numeric = numeric_gradient(f, data)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestElementwiseGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(42)

    def test_relu(self):
        check_unary(lambda t: t.relu(), self.rng.normal(size=(3, 4)) + 0.05)

    def test_sigmoid(self):
        check_unary(lambda t: t.sigmoid(), self.rng.normal(size=(3, 4)))

    def test_tanh(self):
        check_unary(lambda t: t.tanh(), self.rng.normal(size=(3, 4)))

    def test_exp(self):
        check_unary(lambda t: t.exp(), self.rng.normal(size=(3, 4)))

    def test_log(self):
        check_unary(lambda t: t.log(), self.rng.random((3, 4)) + 0.5)

    def test_pow(self):
        check_unary(lambda t: t**3, self.rng.normal(size=(3, 4)))

    def test_sqrt(self):
        check_unary(lambda t: t.sqrt(), self.rng.random((3, 4)) + 0.5)

    def test_neg(self):
        check_unary(lambda t: -t, self.rng.normal(size=(3, 4)))

    def test_log_softmax(self):
        check_unary(lambda t: t.log_softmax(axis=1), self.rng.normal(size=(3, 5)))

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(self.rng.normal(size=(4, 7)))
        s = x.softmax(axis=1)
        np.testing.assert_allclose(s.data.sum(axis=1), np.ones(4), atol=1e-12)


class TestBinaryGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def _check_binary(self, op, a_shape, b_shape):
        a_data = self.rng.normal(size=a_shape)
        b_data = self.rng.normal(size=b_shape) + 2.0  # keep divisors away from 0
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        op(a, b).sum().backward()

        da, db = a_data.copy(), b_data.copy()

        def fa():
            return float(op(Tensor(da), Tensor(db)).sum().item())

        np.testing.assert_allclose(a.grad, numeric_gradient(fa, da), atol=1e-5)
        np.testing.assert_allclose(b.grad, numeric_gradient(fa, db), atol=1e-5)

    def test_add_same_shape(self):
        self._check_binary(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast_row(self):
        self._check_binary(lambda a, b: a + b, (3, 4), (4,))

    def test_add_broadcast_col(self):
        self._check_binary(lambda a, b: a + b, (3, 4), (3, 1))

    def test_mul_broadcast(self):
        self._check_binary(lambda a, b: a * b, (2, 3, 4), (4,))

    def test_sub(self):
        self._check_binary(lambda a, b: a - b, (3, 4), (3, 4))

    def test_div(self):
        self._check_binary(lambda a, b: a / b, (3, 4), (4,))

    def test_matmul_2d(self):
        self._check_binary(lambda a, b: a @ b, (3, 4), (4, 5))

    def test_matmul_vector(self):
        self._check_binary(lambda a, b: a @ b, (3, 4), (4,))

    def test_rsub_rdiv_radd_rmul_scalars(self):
        x = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        out = (1.0 - x) + (8.0 / x) + (3.0 * x) + (2.0 + x)
        out.sum().backward()
        # d/dx [1-x + 8/x + 3x + 2+x] = -1 - 8/x^2 + 3 + 1
        expected = -1 - 8 / np.array([2.0, 4.0]) ** 2 + 3 + 1
        np.testing.assert_allclose(x.grad, expected)


class TestReductionsAndShapes:
    def setup_method(self):
        self.rng = np.random.default_rng(3)

    def test_sum_axis_keepdims(self):
        for axis, keep in [(None, False), (0, False), (1, True), ((0, 2), False)]:
            x_data = self.rng.normal(size=(2, 3, 4))
            x = Tensor(x_data.copy(), requires_grad=True)
            x.sum(axis=axis, keepdims=keep).sum().backward()
            np.testing.assert_allclose(x.grad, np.ones_like(x_data))

    def test_mean_gradient_scaling(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 5), 1 / 20))

    def test_mean_axis(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        x.mean(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 5), 1 / 4))

    def test_max_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 1, 0], [1, 0, 0]])

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])

    def test_reshape_roundtrip(self):
        x = Tensor(self.rng.normal(size=(2, 6)), requires_grad=True)
        x.reshape(3, 4).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 6)))

    def test_transpose_gradient(self):
        x_data = self.rng.normal(size=(2, 3, 4))
        x = Tensor(x_data, requires_grad=True)
        (x.transpose(2, 0, 1) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(x_data.shape, 2.0))

    def test_getitem_scatter_adds(self):
        x = Tensor(np.zeros(5), requires_grad=True)
        idx = np.array([0, 0, 3])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2, 0, 0, 1, 0])

    def test_stack_and_concatenate(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        a.zero_grad(), b.zero_grad()
        (concatenate([a, b], axis=0) * 3.0).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(3, 3.0))


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (x * 2).backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 3.0
        y.backward(np.full((2, 2), 2.0))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 6.0))

    def test_gradient_shape_mismatch_raises(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="shape"):
            (x * 1.0).backward(np.ones(3))

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 4.0))

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * 2
        z = y + y  # two paths through y
        z.backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x.detach() * 5).sum().backward()
        assert x.grad is None

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._parents == ()

    def test_requires_grad_rejects_int_dtype(self):
        with pytest.raises(TypeError, match="floating"):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_item_requires_single_element(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)).item()

    def test_clone_is_graph_connected(self):
        x = Tensor(np.ones(3), requires_grad=True)
        x.clone().sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(2))


class TestUnbroadcast:
    @given(
        rows=st.integers(1, 4),
        cols=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, rows, cols):
        # broadcasting (cols,) -> (rows, cols); adjoint sums over rows
        grad = np.ones((rows, cols))
        reduced = unbroadcast(grad, (cols,))
        np.testing.assert_allclose(reduced, np.full(cols, rows))

    def test_unbroadcast_keepdim_axis(self):
        grad = np.ones((3, 4))
        np.testing.assert_allclose(unbroadcast(grad, (3, 1)), np.full((3, 1), 4))

    def test_unbroadcast_identity(self):
        grad = np.ones((3, 4))
        np.testing.assert_allclose(unbroadcast(grad, (3, 4)), grad)


class TestPropertyBasedGradients:
    @given(st.lists(st.floats(-3, 3), min_size=2, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_sum_of_squares_gradient_is_2x(self, values):
        x = Tensor(np.array(values), requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * np.array(values), atol=1e-10)

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shape_and_grad_shapes(self, n, m):
        rng = np.random.default_rng(n * 7 + m)
        a = Tensor(rng.normal(size=(n, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, m)), requires_grad=True)
        out = a @ b
        assert out.shape == (n, m)
        out.sum().backward()
        assert a.grad.shape == (n, 3)
        assert b.grad.shape == (3, m)
